//! Workspace facade for the Data Polygamy reproduction (SIGMOD 2016).
//!
//! This crate exists to own the workspace-level integration tests under
//! `tests/` and the runnable walkthroughs under `examples/`; it re-exports
//! every member crate so downstream code can depend on one package:
//!
//! * [`core`] — the framework: pipeline, index, relationship operator,
//!   significance testing, and the PQL textual query language;
//! * [`stdata`] — datasets, resolutions, spatial partitions, scalar
//!   fields;
//! * [`topology`] — merge trees, persistence, level sets, feature sets;
//! * [`stats`] — descriptive statistics, 2-means, restricted Monte Carlo
//!   permutations, baselines;
//! * [`mapreduce`] — the in-process map-reduce substrate;
//! * [`datagen`] — synthetic urban corpora with planted ground-truth
//!   couplings;
//! * [`store`] — the persistent on-disk index store and its concurrent
//!   serving sessions;
//! * [`serve`] — the network serving layer: wire protocol, daemon,
//!   batch coalescing, blocking client.
//!
//! The `docs/` directory holds the prose specifications: the
//! [architecture overview](https://github.com/paper-repro/data-polygamy/blob/main/docs/architecture.md),
//! the [PQL language reference](https://github.com/paper-repro/data-polygamy/blob/main/docs/pql.md),
//! the [on-disk store format](https://github.com/paper-repro/data-polygamy/blob/main/docs/store-format.md)
//! and the [network wire protocol](https://github.com/paper-repro/data-polygamy/blob/main/docs/serving.md).

#![forbid(unsafe_code)]

pub use polygamy_core as core;
pub use polygamy_datagen as datagen;
pub use polygamy_mapreduce as mapreduce;
pub use polygamy_serve as serve;
pub use polygamy_stats as stats;
pub use polygamy_stdata as stdata;
pub use polygamy_store as store;
pub use polygamy_topology as topology;

/// Everything a typical caller needs: the framework facade plus the data
/// substrate types its API surfaces.
pub mod prelude {
    pub use polygamy_core::prelude::*;
}

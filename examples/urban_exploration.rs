//! Hypothesis generation over the full urban collection (paper Section 1):
//! index all nine data sets, then ask "find all data sets related to D"
//! for every D and rank data sets by how polygamous they are.
//!
//! ```text
//! cargo run --release --example urban_exploration [-- --quick]
//! ```

use polygamy_core::prelude::*;
use polygamy_datagen::{urban_collection, UrbanConfig};
use std::collections::BTreeMap;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let collection = urban_collection(UrbanConfig {
        n_years: 1,
        scale: if quick { 0.03 } else { 0.1 },
        extra_weather_attrs: 0,
        ..UrbanConfig::default()
    });
    let mut dp = DataPolygamy::new(collection.geometry().clone(), Config::default());
    for d in collection.datasets.iter() {
        dp.add_dataset(d.clone());
    }
    let report = dp.build_index();
    println!(
        "indexed {} data sets / {} functions in {:.1}s",
        report.per_dataset.len(),
        dp.index().expect("built").functions.len(),
        report.total_secs
    );

    // Query everything against everything; keep confident relationships.
    let clause = Clause::default()
        .permutations(if quick { 100 } else { 300 })
        .min_score(0.5);
    let rels = dp
        .query(&RelationshipQuery::all().with_clause(clause))
        .expect("query succeeds");
    println!("significant relationships with |τ| >= 0.5: {}", rels.len());

    // Rank data sets by distinct partners (the paper's "most polygamous
    // data set" observation — weather wins).
    let mut partners: BTreeMap<&str, std::collections::BTreeSet<&str>> = BTreeMap::new();
    for r in &rels {
        partners
            .entry(r.left.dataset.as_str())
            .or_default()
            .insert(r.right.dataset.as_str());
        partners
            .entry(r.right.dataset.as_str())
            .or_default()
            .insert(r.left.dataset.as_str());
    }
    let mut ranked: Vec<(&str, usize)> = partners.iter().map(|(d, s)| (*d, s.len())).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("\nmost polygamous data sets (distinct partners):");
    for (dataset, n) in &ranked {
        println!("  {dataset:<16} {n}");
    }

    // Show the strongest relationship per data-set pair.
    println!("\nstrongest relationship per pair:");
    let mut best: BTreeMap<(String, String), &Relationship> = BTreeMap::new();
    for r in &rels {
        let key = (r.left.dataset.clone(), r.right.dataset.clone());
        let current = best.get(&key);
        if current.is_none_or(|c| r.score().abs() > c.score().abs()) {
            best.insert(key, r);
        }
    }
    for r in best.values() {
        println!("  {r}");
    }
}

use polygamy_core::Relationship;

//! Persistent store walkthrough: index once, save to disk, serve queries
//! from a reopened session — the raw data never travels to query time.
//!
//! ```text
//! cargo run --release --example persistent_store
//! ```

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_store::{LoadFilter, Store, StoreSession};

fn make_dataset(name: &str, level: f64, spikes: &[i64]) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("persistent-store demo data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..2_000i64 {
        let rhythm = ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
        let spike = if spikes.contains(&h) { 25.0 } else { 0.0 };
        b.push(
            GeoPoint::new(0.5, 0.5),
            h * 3_600,
            &[level + rhythm + spike],
        )
        .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn main() {
    let path = std::env::temp_dir().join("polygamy-example.plst");
    let spikes = [150i64, 700, 1200, 1800];

    // 1. Index once (the expensive part) and persist the result.
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::default(),
    );
    dp.add_dataset(make_dataset("sensors-a", 10.0, &spikes));
    dp.add_dataset(make_dataset("sensors-b", -3.0, &spikes));
    dp.build_index();
    let store =
        Store::save(&path, dp.geometry(), dp.index().expect("index built")).expect("store writes");
    println!(
        "saved {} segments, {} bytes -> {}",
        store.manifest().segments.len(),
        store.file_bytes().expect("metadata"),
        path.display()
    );

    // 2. Incremental maintenance: a third data set joins the corpus without
    //    re-indexing the first two.
    Store::upsert_dataset(
        &path,
        &make_dataset("sensors-c", 4.0, &spikes),
        &Config::default(),
    )
    .expect("upsert succeeds");

    // 3. Any later process opens a serving session straight from the file —
    //    no raw data, no rebuild. Sessions are shared across reader threads.
    let session = StoreSession::open(&path).expect("store opens");
    let query =
        RelationshipQuery::all().with_clause(Clause::default().min_score(0.5).permutations(200));
    std::thread::scope(|s| {
        for worker in 0..2 {
            let session = &session;
            let query = query.clone();
            s.spawn(move || {
                let rels = session.query(&query).expect("query evaluates");
                println!(
                    "[reader {worker}] {} significant relationship(s)",
                    rels.len()
                );
            });
        }
    });
    for rel in session.query(&query).expect("query evaluates") {
        println!("  {rel}");
    }
    println!(
        "cache holds {} per-pair result(s) shared by all readers",
        session.cache_len()
    );

    // 4. Selective loading: a session over just one pair touches only that
    //    pair's segments on disk.
    let narrow = StoreSession::open_with(
        &path,
        Config::default(),
        &LoadFilter::all().datasets(&["sensors-a", "sensors-c"]),
    )
    .expect("partial load");
    println!(
        "selective session materialized {} of {} function segments",
        narrow.index().expect("eager session").functions.len(),
        session.index().expect("eager session").functions.len()
    );

    let _ = std::fs::remove_file(&path);
}

//! Quickstart: index two tiny data sets and query for relationships.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds two hourly city-resolution data sets whose `signal` attributes
//! spike at the same instants, runs the full Data Polygamy pipeline and
//! prints the statistically significant relationships.

use polygamy_core::prelude::*;

fn make_dataset(name: &str, level: f64, spikes: &[i64]) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("quickstart demo data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..3_000i64 {
        // A daily rhythm plus sharp spikes at the shared instants.
        let rhythm = ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
        let spike = if spikes.contains(&h) { 25.0 } else { 0.0 };
        b.push(
            GeoPoint::new(0.5, 0.5),
            h * 3_600,
            &[level + rhythm + spike],
        )
        .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn main() {
    // 1. A city geometry — quickstart works at city scale only.
    let geometry = CityGeometry::city_only(0.0, 0.0, 1.0, 1.0);

    // 2. Register data sets. The two `signal` attributes share spike hours,
    //    so their salient features coincide.
    let spikes = [170i64, 800, 1500, 2200, 2750];
    let mut dp = DataPolygamy::new(geometry, Config::default());
    dp.add_dataset(make_dataset("sensors-a", 10.0, &spikes));
    dp.add_dataset(make_dataset("sensors-b", -3.0, &spikes));

    // 3. Build the index: scalar functions -> merge trees -> thresholds ->
    //    precomputed features.
    let report = dp.build_index();
    println!(
        "indexed {} data sets in {:.2}s ({} scalar functions)",
        report.per_dataset.len(),
        report.total_secs,
        dp.index().expect("built").functions.len()
    );

    // 4. Query: find all relationships, keeping the significant ones.
    let query = RelationshipQuery::all().with_clause(Clause::default().permutations(300));
    let rels = dp.query(&query).expect("query succeeds");
    println!("\nsignificant relationships:");
    for r in &rels {
        println!("  {r}");
    }
    assert!(
        rels.iter().any(|r| r.score() > 0.8),
        "the planted relationship should surface with a strong positive score"
    );
    println!("\nThe spikes planted in both series were discovered as a");
    println!("positively related pair of salient features.");
}

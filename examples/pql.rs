//! PQL walkthrough: the textual Polygamy Query Language end to end —
//! parse a query, run it, print it back canonically, compile a batch
//! file, and see a caret diagnostic for a typo.
//!
//! ```text
//! cargo run --release --example pql
//! ```
//!
//! The full language reference is in `docs/pql.md`.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;

fn make_dataset(name: &str, level: f64, spikes: &[i64]) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("pql demo data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..1_200i64 {
        let rhythm = ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
        let spike = if spikes.contains(&h) { 20.0 } else { 0.0 };
        b.push(
            GeoPoint::new(0.5, 0.5),
            h * 3_600,
            &[level + rhythm + spike],
        )
        .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn main() {
    // Index a tiny three-data-set corpus.
    let spikes = [100i64, 400, 700, 1000];
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::default(),
    );
    dp.add_dataset(make_dataset("taxi", 10.0, &spikes));
    dp.add_dataset(make_dataset("weather", -2.0, &spikes));
    dp.add_dataset(make_dataset("noise", 5.0, &[77, 913]));
    dp.build_index();

    // 1. One textual query, exactly the paper's Section 5.3 form:
    //    "find relationships between D1 and D2 satisfying clause".
    let src = "between taxi and * where score >= 0.5 and permutations = 300";
    let query = parse_query(src).expect("valid PQL");
    println!("query : {src}");
    // The canonical printer is the inverse of the parser.
    println!("canon : {}", to_pql(&query));
    for rel in dp.query(&query).expect("query evaluates") {
        println!("  {rel}");
    }

    // 2. A batch file: one query per line, `#` comments; the whole batch
    //    runs on one shared worker pool via query_many.
    let batch_src = "\
         # nightly relationship sweep\n\
         between taxi and weather where permutations = 300\n\
         between noise and * where class = extreme and permutations = 300\n";
    let batch = parse_batch(batch_src).expect("valid batch");
    let results = dp.query_many(&batch).expect("batch evaluates");
    for (q, rels) in batch.iter().zip(&results) {
        println!("{} relationship(s) for `{}`", rels.len(), to_pql(q));
    }

    // 3. Errors carry byte spans and render as caret diagnostics.
    let typo = "between taxi and * where scor >= 0.5";
    let err = parse_query(typo).expect_err("typo rejected");
    println!("\n{}", err.render(typo));
}

//! Hypothesis testing (paper Sections 1 + 6.3): "you can't find a taxi in
//! the rain". Tests the target-earner hypothesis by querying for
//! relationships between the taxi and weather data sets and reading the
//! signs, reproducing the paper's argument against Farber's OLS analysis.
//!
//! ```text
//! cargo run --release --example hypothesis_testing [-- --quick]
//! ```

use polygamy_core::prelude::*;
use polygamy_datagen::{urban_collection, UrbanConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let collection = urban_collection(UrbanConfig {
        n_years: 1,
        scale: if quick { 0.04 } else { 0.15 },
        extra_weather_attrs: 0,
        ..UrbanConfig::default()
    });
    let mut dp = DataPolygamy::new(collection.geometry().clone(), Config::default());
    for d in collection.datasets.iter() {
        dp.add_dataset(d.clone());
    }
    dp.build_index();

    println!("Hypothesis: taxis are scarce when it rains because drivers");
    println!("reach a daily income target faster (higher demand) and go home.\n");

    let clause = Clause::default()
        .permutations(if quick { 100 } else { 500 })
        .include_insignificant();
    let rels = dp
        .query(&RelationshipQuery::between(&["taxi"], &["weather"]).with_clause(clause))
        .expect("query succeeds");

    let show = |lfn: &str, rfn: &str, question: &str| {
        println!("{question}");
        let mut any = false;
        for r in rels.iter().filter(|r| {
            let l = r.left.to_string();
            let rr = r.right.to_string();
            (l == lfn && rr == rfn) || (l == rfn && rr == lfn)
        }) {
            if r.significant || r.score().abs() >= 0.5 {
                println!("  {r}");
                any = true;
            }
        }
        if !any {
            println!("  (no strong relationship at any resolution)");
        }
        println!();
    };

    show(
        "taxi.density",
        "weather.avg(precipitation)",
        "Q1: do trips drop when it rains? (paper: τ=-0.62, ρ=0.75)",
    );
    show(
        "taxi.avg(fare)",
        "weather.avg(precipitation)",
        "Q2: do fares rise when it rains? (paper: τ=0.73, ρ=0.70)",
    );
    show(
        "taxi.unique",
        "weather.avg(precipitation)",
        "Q3: do fewer distinct taxis work in the rain? (paper: τ=-0.81, day)",
    );

    println!("Reading: a negative trips~rain relationship together with a");
    println!("positive fare~rain relationship is consistent with the");
    println!("target-earner hypothesis. The paper notes Farber's OLS found");
    println!("no correlation because it ignored rainfall amounts and pooled");
    println!("all time periods — exactly the global-view failure the");
    println!("salient-feature approach avoids.");
}

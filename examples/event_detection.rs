//! Event detection with extreme features (paper Sections 3.3 + 6.3): the
//! box-plot outlier thresholds isolate hurricane hours in the wind-speed
//! function, and those extreme features coincide with collapses in taxi
//! activity — the Figure 1 story, computed rather than eyeballed.
//!
//! ```text
//! cargo run --release --example event_detection
//! ```

use polygamy_core::pipeline::field_features;
use polygamy_datagen::{urban_collection, EventKind, UrbanConfig};
use polygamy_stdata::temporal::date_of;
use polygamy_stdata::{aggregate, AggregateKind, FunctionKind, TemporalResolution};

fn main() {
    let collection = urban_collection(UrbanConfig {
        n_years: 2,
        scale: 0.05,
        extra_weather_attrs: 0,
        ..UrbanConfig::default()
    });
    let weather = collection.dataset("weather").expect("generated");
    let wind_attr = weather.attribute_index("wind-speed").expect("attribute");
    let field = aggregate(
        weather,
        &collection.geometry().city,
        TemporalResolution::Hour,
        FunctionKind::Attribute {
            attr: wind_attr,
            agg: AggregateKind::Mean,
        },
        None,
    )
    .expect("wind field");

    let (features, thresholds, _) = field_features(&[vec![]], &field);
    println!(
        "wind-speed function: {} hours, {} seasonal intervals",
        field.n_steps,
        thresholds.interval_ids.len()
    );
    println!(
        "salient positive features: {}  extreme positive features: {}",
        features.salient.pos.count_ones(),
        features.extreme.pos.count_ones()
    );

    // Group extreme-feature hours into contiguous events.
    let mut events: Vec<(usize, usize)> = Vec::new();
    for v in features.extreme.pos.iter_ones() {
        match events.last_mut() {
            Some((_, end)) if v <= *end + 6 => *end = v,
            _ => events.push((v, v)),
        }
    }
    println!("\ndetected extreme wind events:");
    for (start, end) in &events {
        println!(
            "  {} .. {}  ({} hours)",
            date_of(field.step_start(*start)),
            date_of(field.step_start(*end)),
            end - start + 1
        );
    }

    // Compare against the planted ground truth.
    println!("\nplanted hurricanes:");
    let mut matched = 0;
    for ev in collection.events.of_kind(EventKind::Hurricane) {
        let hit = events.iter().any(|&(s, e)| {
            let t0 = field.step_start(s);
            let t1 = field.step_start(e);
            t1 >= ev.start && t0 < ev.end
        });
        if hit {
            matched += 1;
        }
        println!(
            "  {} ({} .. {}): {}",
            ev.name,
            date_of(ev.start),
            date_of(ev.end),
            if hit { "DETECTED" } else { "missed" }
        );
    }
    assert!(matched > 0, "at least one hurricane must be detected");
    println!(
        "\n{matched}/{} hurricanes recovered purely from box-plot outliers of",
        collection.events.of_kind(EventKind::Hurricane).count()
    );
    println!("the salient-minima/maxima distribution — no manual thresholds.");
}

//! Workspace smoke test: the quickstart example's path — build a city
//! geometry, index two synthetic data sets whose signals spike at shared
//! instants, query for relationships — must complete end-to-end and
//! surface the planted coupling. This is the fast canary the CI gate
//! leans on: if it breaks, every figure harness built on the same path is
//! broken too.

use polygamy_core::prelude::*;

fn spiky_dataset(name: &str, level: f64, spikes: &[i64], n_hours: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("smoke-test data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..n_hours {
        let rhythm = ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
        let spike = if spikes.contains(&h) { 25.0 } else { 0.0 };
        b.push(
            GeoPoint::new(0.5, 0.5),
            h * 3_600,
            &[level + rhythm + spike],
        )
        .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

#[test]
fn quickstart_path_end_to_end() {
    // 1. Geometry: city scale only, as in the quickstart.
    let geometry = CityGeometry::city_only(0.0, 0.0, 1.0, 1.0);

    // 2. Two data sets with coincident spikes (a smaller clock than the
    //    example keeps the smoke test fast).
    let spikes = [70i64, 300, 610, 850, 990];
    let mut dp = DataPolygamy::new(geometry, Config::fast_test());
    dp.add_dataset(spiky_dataset("sensors-a", 10.0, &spikes, 1_100));
    dp.add_dataset(spiky_dataset("sensors-b", -3.0, &spikes, 1_100));

    // 3. Index.
    let report = dp.build_index();
    assert_eq!(report.per_dataset.len(), 2);
    for stat in &report.per_dataset {
        assert!(stat.n_functions > 0, "{} indexed nothing", stat.name);
    }
    let index = dp.index().expect("index built");
    assert!(!index.functions.is_empty());

    // 4. Query one relationship set.
    let query = RelationshipQuery::all().with_clause(Clause::default().permutations(120));
    let rels = dp.query(&query).expect("query succeeds");
    assert!(
        rels.iter().any(|r| r.score() > 0.8),
        "planted coupling should surface with a strong positive score; got {:?}",
        rels.iter().map(|r| r.score()).collect::<Vec<_>>()
    );

    // 5. The index round-trips through JSON with the catalog intact.
    let json = index.to_json().expect("serializes");
    let back = polygamy_core::PolygamyIndex::from_json(&json).expect("deserializes");
    assert_eq!(back.datasets.len(), index.datasets.len());
    assert_eq!(back.functions.len(), index.functions.len());
}

//! Determinism matrix for the flat query executor.
//!
//! The PR's core guarantee: query results are **byte-identical** for any
//! worker count — `Cluster::local(1)`, `local(2)`, …, `Cluster::host()` —
//! on both the in-memory framework and a persistent `StoreSession`, for
//! both `query` and `query_many`, in both **eager and lazy** read modes
//! (the lazy session faults segments in per query footprint; pinned
//! entries keep directory order, so expansion — and therefore output — is
//! unchanged), and — since the store learned to shard — for **any shard
//! count**: a store split over 1, 2 or 5 shard files answers with the
//! exact bytes of the monolith it was migrated from, because the
//! scatter-gather coordinator reassembles per-shard results in canonical
//! task order before ranking. Tasks carry their own FNV-derived Monte
//! Carlo seeds and results are assembled in canonical task order, so
//! scheduling can never leak into significance verdicts. Byte-identity is
//! checked on the serialized JSON, not just `PartialEq`, so even the bit
//! patterns of scores and p-values must agree.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_mapreduce::Cluster;
use polygamy_store::{shard_store, LoadFilter, SourceBackend, Store, StoreSession};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "polygamy-determinism-test-{}-{tag}.plst",
        std::process::id()
    ))
}

/// Removes the file when dropped, so failures don't litter the temp dir.
struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn config_with(cluster: Cluster) -> Config {
    Config {
        cluster,
        ..Config::fast_test()
    }
}

/// The worker-count matrix every result must be invariant over.
fn worker_matrix() -> Vec<Cluster> {
    vec![Cluster::local(1), Cluster::local(2), Cluster::host()]
}

/// The read-mode axis: every store-session result must also be invariant
/// over eager vs lazy materialization (and the lazy I/O backends).
fn session_matrix(path: &std::path::Path, cluster: Cluster) -> Vec<(&'static str, StoreSession)> {
    vec![
        (
            "eager",
            StoreSession::open_with(path, config_with(cluster), &LoadFilter::all()).unwrap(),
        ),
        (
            "lazy",
            StoreSession::open_lazy_with(
                path,
                config_with(cluster),
                &LoadFilter::all(),
                SourceBackend::PositionedRead,
            )
            .unwrap(),
        ),
        (
            "lazy-mmap",
            StoreSession::open_lazy_with(
                path,
                config_with(cluster),
                &LoadFilter::all(),
                SourceBackend::Mmap,
            )
            .unwrap(),
        ),
    ]
}

fn spiky_dataset(name: &str, level: f64, bump_at: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: String::new(),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..400i64 {
        let v = if h == bump_at || h == bump_at + 61 {
            40.0
        } else {
            level + (h % 24) as f64 * 0.05
        };
        b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v])
            .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn build_framework(datasets: &[Dataset], cluster: Cluster) -> DataPolygamy {
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        config_with(cluster),
    );
    for d in datasets {
        dp.add_dataset(d.clone());
    }
    dp.build_index();
    dp
}

fn test_queries() -> Vec<RelationshipQuery> {
    let clause = Clause::default().permutations(40).include_insignificant();
    vec![
        RelationshipQuery::all().with_clause(clause.clone()),
        RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(clause.clone()),
        RelationshipQuery::of("gamma").with_clause(clause),
    ]
}

fn json(rels: &[Relationship]) -> String {
    serde_json::to_string(rels).expect("relationships serialize")
}

#[test]
fn framework_results_identical_across_worker_counts() {
    let datasets = vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 222),
    ];
    let queries = test_queries();
    let reference: Vec<String> = {
        let dp = build_framework(&datasets, Cluster::local(1));
        queries
            .iter()
            .map(|q| json(&dp.query(q).unwrap()))
            .collect()
    };
    assert!(
        reference.iter().any(|j| j != "[]"),
        "matrix must be non-trivial"
    );
    for cluster in worker_matrix() {
        // query: one at a time, fresh framework (cold caches).
        let dp = build_framework(&datasets, cluster);
        for (q, expect) in queries.iter().zip(&reference) {
            assert_eq!(&json(&dp.query(q).unwrap()), expect, "query @ {cluster:?}");
        }
        // query_many: whole batch on one pool, fresh framework again.
        let dp = build_framework(&datasets, cluster);
        let batched = dp.query_many(&queries).unwrap();
        for (rels, expect) in batched.iter().zip(&reference) {
            assert_eq!(&json(rels), expect, "query_many @ {cluster:?}");
        }
    }
}

#[test]
fn store_session_results_identical_across_worker_counts() {
    let path = tmp_path("matrix");
    let _cleanup = Cleanup(path.clone());
    let datasets = vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 222),
    ];
    let dp = build_framework(&datasets, Cluster::local(1));
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();

    let queries = test_queries();
    let reference: Vec<String> = queries
        .iter()
        .map(|q| json(&dp.query(q).unwrap()))
        .collect();
    for cluster in worker_matrix() {
        for (mode, session) in session_matrix(&path, cluster) {
            for (q, expect) in queries.iter().zip(&reference) {
                assert_eq!(
                    &json(&session.query(q).unwrap()),
                    expect,
                    "{mode} query @ {cluster:?}"
                );
            }
        }
        // Fresh sessions for the batched path (cold caches again).
        for (mode, session) in session_matrix(&path, cluster) {
            let batched = session.query_many(&queries).unwrap();
            for (rels, expect) in batched.iter().zip(&reference) {
                assert_eq!(&json(rels), expect, "{mode} query_many @ {cluster:?}");
            }
        }
    }
}

/// The shard axis of the matrix: workers {1, 2, host} × shards {1, 2, 5}
/// × {eager, lazy, lazy-mmap} × {query, query_many}, every cell
/// byte-identical to the monolithic single-worker baseline. The 1-shard
/// store pins the degenerate case (sharded ≡ monolith), and the 5-shard
/// layout (more shards than some worker counts) exercises gather across
/// uneven worker/shard splits.
#[test]
fn sharded_sessions_identical_to_monolith_for_any_shard_count() {
    let path = tmp_path("shard-matrix");
    let _cleanup = Cleanup(path.clone());
    let datasets = vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 222),
    ];
    let dp = build_framework(&datasets, Cluster::local(1));
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();

    let queries = test_queries();
    let reference: Vec<String> = queries
        .iter()
        .map(|q| json(&dp.query(q).unwrap()))
        .collect();
    assert!(reference.iter().any(|j| j != "[]"));

    let mut cleanups = Vec::new();
    for n_shards in [1usize, 2, 5] {
        let catalog_path = tmp_path(&format!("shard-matrix-{n_shards}"));
        cleanups.push(Cleanup(catalog_path.clone()));
        let catalog = shard_store(&path, &catalog_path, n_shards).unwrap();
        for i in 0..n_shards {
            cleanups.push(Cleanup(catalog.shard_path(&catalog_path, i)));
        }
        for cluster in worker_matrix() {
            // The same session_matrix helper opens sharded stores — the
            // session auto-detects the catalog magic.
            for (mode, session) in session_matrix(&catalog_path, cluster) {
                assert_eq!(session.n_shards(), n_shards, "{mode}");
                for (q, expect) in queries.iter().zip(&reference) {
                    assert_eq!(
                        &json(&session.query(q).unwrap()),
                        expect,
                        "{mode} query @ {cluster:?} × {n_shards} shards"
                    );
                }
            }
            // Fresh sessions for the batched path (cold caches again).
            for (mode, session) in session_matrix(&catalog_path, cluster) {
                let batched = session.query_many(&queries).unwrap();
                for (rels, expect) in batched.iter().zip(&reference) {
                    assert_eq!(
                        &json(rels),
                        expect,
                        "{mode} query_many @ {cluster:?} × {n_shards} shards"
                    );
                }
            }
        }
    }
}

/// The tracing axis of the matrix: running the *same* queries inside a
/// `trace::record` scope must not change a byte of the result JSON, on
/// any worker count, eager or lazy, `query` or PQL. Tracing observes the
/// executor; it must never steer it (`docs/observability.md`).
#[test]
fn traced_results_identical_to_untraced() {
    use polygamy_obs::trace;
    use polygamy_store::{execute_pql_query, execute_pql_query_traced};

    let path = tmp_path("traced");
    let _cleanup = Cleanup(path.clone());
    let datasets = vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 222),
    ];
    let dp = build_framework(&datasets, Cluster::local(1));
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();

    let queries = test_queries();
    let reference: Vec<String> = queries
        .iter()
        .map(|q| json(&dp.query(q).unwrap()))
        .collect();
    assert!(reference.iter().any(|j| j != "[]"));

    for cluster in worker_matrix() {
        for (mode, session) in session_matrix(&path, cluster) {
            for (q, expect) in queries.iter().zip(&reference) {
                let (rels, t) = trace::record(|| session.query(q).unwrap());
                assert_eq!(&json(&rels), expect, "traced {mode} query @ {cluster:?}");
                // The trace itself must have observed the run.
                assert!(
                    t.span_nanos("evaluate") > 0,
                    "traced {mode} run recorded no evaluate span @ {cluster:?}"
                );
            }
        }
    }

    // The PQL layer: the traced executor entry point returns the same
    // canonical JSON as the untraced one, trace attached out-of-band.
    let session =
        StoreSession::open_with(&path, config_with(Cluster::local(2)), &LoadFilter::all()).unwrap();
    let pql = "between alpha and beta where permutations = 40 and include insignificant";
    let plain = execute_pql_query(&session, pql).unwrap();
    let traced = execute_pql_query_traced(&session, pql).unwrap();
    assert!(traced.trace.is_some(), "traced outcome carries its trace");
    assert_eq!(traced.to_json(), plain.to_json(), "trace changed the bytes");
    assert_eq!(traced.render_text(), plain.render_text());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small corpora: for arbitrary data set collections, query and
    /// query_many results are identical at 1, 2 and host workers, in
    /// memory and through a store session.
    #[test]
    fn random_corpora_are_worker_count_invariant(
        bumps in prop::collection::vec(10i64..350, 2..5)
    ) {
        let datasets: Vec<Dataset> = bumps
            .iter()
            .enumerate()
            .map(|(i, &bump)| spiky_dataset(&format!("d{i}"), (bump % 4) as f64 - 1.5, bump))
            .collect();
        let clause = Clause::default().permutations(30).include_insignificant();
        let query = RelationshipQuery::all().with_clause(clause);

        let reference = {
            let dp = build_framework(&datasets, Cluster::local(1));
            json(&dp.query(&query).unwrap())
        };
        for cluster in worker_matrix() {
            let dp = build_framework(&datasets, cluster);
            prop_assert_eq!(&json(&dp.query(&query).unwrap()), &reference);
            let batched = dp.query_many(std::slice::from_ref(&query)).unwrap();
            prop_assert_eq!(&json(&batched[0]), &reference);
        }

        // And through the persistent store.
        let path = tmp_path(&format!("prop-{}", bumps.len()));
        let _cleanup = Cleanup(path.clone());
        let dp = build_framework(&datasets, Cluster::local(1));
        Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
        for cluster in worker_matrix() {
            for (_mode, session) in session_matrix(&path, cluster) {
                prop_assert_eq!(&json(&session.query(&query).unwrap()), &reference);
            }
        }

        // And sharded: the same random corpus split over 3 shard files
        // still answers with the reference bytes in every mode.
        let catalog_path = tmp_path(&format!("prop-shard-{}", bumps.len()));
        let catalog = shard_store(&path, &catalog_path, 3).unwrap();
        let mut cleanups = vec![Cleanup(catalog_path.clone())];
        for i in 0..3 {
            cleanups.push(Cleanup(catalog.shard_path(&catalog_path, i)));
        }
        for cluster in worker_matrix() {
            for (_mode, session) in session_matrix(&catalog_path, cluster) {
                prop_assert_eq!(&json(&session.query(&query).unwrap()), &reference);
            }
        }
    }
}

//! PQL integration: the textual frontend is a lossless skin over the
//! programmatic query API.
//!
//! Three contracts, end to end:
//!
//! * **Round-trip** — for arbitrary `RelationshipQuery` values,
//!   `parse(print(q)) == q` and printing is idempotent (proptest);
//! * **Equivalence** — a PQL query and its builder-constructed twin
//!   produce *byte-identical* JSON results through `query_many`, for every
//!   clause predicate the language has;
//! * **Batch** — a `.pql` batch file compiles into the same flat
//!   `query_many` path, again byte-identical, with whole-file error spans.

use polygamy_core::pql::{parse_batch, parse_query, to_pql, PqlErrorKind};
use polygamy_core::prelude::*;
use polygamy_core::significance::PermutationScheme;
use polygamy_core::DataPolygamy;
use polygamy_mapreduce::Cluster;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Round-trip: parse ∘ print = id over arbitrary queries.

/// Name pool mixing bare words, quote-needing names (spaces, reserved
/// words, non-ASCII, embedded quotes/backslashes) and hyphenated names.
const NAMES: [&str; 9] = [
    "taxi",
    "weather",
    "gas-prices",
    "with space",
    "and",
    "naïve",
    "q\"uote",
    "back\\slash",
    "line\nbreak\ttab",
];

const SPATIALS: [SpatialResolution; 4] = [
    SpatialResolution::Gps,
    SpatialResolution::Zip,
    SpatialResolution::Neighborhood,
    SpatialResolution::City,
];
const TEMPORALS: [TemporalResolution; 4] = [
    TemporalResolution::Hour,
    TemporalResolution::Day,
    TemporalResolution::Week,
    TemporalResolution::Month,
];

/// Generates arbitrary `RelationshipQuery` values, biased so every field
/// is sometimes at its default (exercising predicate omission) and
/// sometimes not.
struct ArbQuery;

impl proptest::strategy::Strategy for ArbQuery {
    type Value = RelationshipQuery;

    fn generate(&self, rng: &mut SmallRng) -> RelationshipQuery {
        fn collection(rng: &mut SmallRng) -> Option<Vec<String>> {
            match rng.gen_range(0..5u32) {
                0 => None,
                1 => Some(Vec::new()),
                n => Some(
                    (0..n)
                        .map(|_| NAMES[rng.gen_range(0..NAMES.len())].to_string())
                        .collect(),
                ),
            }
        }
        let mut clause = Clause::default();
        if rng.gen_bool(0.5) {
            clause.min_score = rng.gen_range(-2.0..2.0f64);
        }
        if rng.gen_bool(0.5) {
            clause.min_strength = rng.gen_range(0.0..1.0f64);
        }
        clause.class = match rng.gen_range(0..3u32) {
            0 => None,
            1 => Some(FeatureClass::Salient),
            _ => Some(FeatureClass::Extreme),
        };
        if rng.gen_bool(0.5) {
            clause.alpha = rng.gen_range(0.001..0.2f64);
        }
        if rng.gen_bool(0.5) {
            clause.permutations = rng.gen_range(0..10_000usize);
        }
        clause.significant_only = rng.gen_bool(0.5);
        if rng.gen_bool(0.5) {
            let n = rng.gen_range(0..4usize);
            clause.resolutions = Some(
                (0..n)
                    .map(|_| {
                        Resolution::new(
                            SPATIALS[rng.gen_range(0..4usize)],
                            TEMPORALS[rng.gen_range(0..4usize)],
                        )
                    })
                    .collect(),
            );
        }
        // Thresholds data sets must be distinct: PQL rejects a repeated
        // `thresholds` entry for the same name (DuplicateThresholds).
        let mut pool: Vec<&str> = NAMES.to_vec();
        for _ in 0..rng.gen_range(0..3u32) {
            let dataset = pool.remove(rng.gen_range(0..pool.len())).to_string();
            clause
                .thresholds
                .push(polygamy_core::query::DatasetThresholds {
                    dataset,
                    theta_pos: rng.gen_range(-10.0..10.0f64),
                    theta_neg: rng.gen_range(-10.0..10.0f64),
                });
        }
        clause.scheme = match rng.gen_range(0..3u32) {
            0 => None,
            1 => Some(PermutationScheme::Paper),
            _ => Some(PermutationScheme::SpatioTemporal),
        };
        RelationshipQuery {
            left: collection(rng),
            right: collection(rng),
            clause,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(print(q)) == q for arbitrary queries, and the canonical text
    /// is a fixed point of print ∘ parse.
    #[test]
    fn pql_round_trips(query in ArbQuery) {
        let printed = to_pql(&query);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("canonical PQL must parse:\n{}", e.render(&printed)));
        prop_assert_eq!(&reparsed, &query);
        prop_assert_eq!(to_pql(&reparsed), printed);
    }
}

// ---------------------------------------------------------------------------
// Equivalence: PQL queries and builder queries give byte-identical JSON
// results through query_many.

fn spiky_dataset(name: &str, level: f64, bump_at: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: String::new(),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..400i64 {
        let v = if h == bump_at || h == bump_at + 61 {
            40.0
        } else {
            level + (h % 24) as f64 * 0.05
        };
        b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v])
            .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn build_framework() -> DataPolygamy {
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config {
            cluster: Cluster::local(2),
            ..Config::fast_test()
        },
    );
    for d in [
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 222),
    ] {
        dp.add_dataset(d);
    }
    dp.build_index();
    dp
}

fn json(rels: &[Relationship]) -> String {
    serde_json::to_string(rels).expect("relationships serialize")
}

/// Every clause predicate, written once in PQL and once with the builder.
/// Both the parsed structs and the `query_many` result bytes must agree.
#[test]
fn pql_matches_builder_byte_for_byte() {
    let base = Clause::default().permutations(40).include_insignificant();
    let cases: Vec<(&str, RelationshipQuery)> = vec![
        (
            "between alpha and beta where permutations = 40 and include insignificant",
            RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(base.clone()),
        ),
        (
            "between alpha, beta and * where score >= 0.5 and permutations = 40 \
             and include insignificant",
            RelationshipQuery {
                left: Some(vec!["alpha".into(), "beta".into()]),
                right: None,
                clause: base.clone().min_score(0.5),
            },
        ),
        (
            "between gamma and * where strength >= 0.1 and class = salient and \
             permutations = 40 and include insignificant",
            RelationshipQuery::of("gamma")
                .with_clause(base.clone().min_strength(0.1).class(FeatureClass::Salient)),
        ),
        (
            "between * and * where alpha = 0.2 and permutations = 40",
            RelationshipQuery::all().with_clause(Clause::default().alpha(0.2).permutations(40)),
        ),
        (
            "between alpha and beta where resolution = city-hour and permutations = 40 \
             and include insignificant",
            RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                base.clone().at_resolution(Resolution::new(
                    SpatialResolution::City,
                    TemporalResolution::Hour,
                )),
            ),
        ),
        (
            "between alpha and beta where thresholds alpha (5, -5) and permutations = 40 \
             and include insignificant",
            RelationshipQuery::between(&["alpha"], &["beta"])
                .with_clause(base.clone().with_thresholds("alpha", 5.0, -5.0)),
        ),
        (
            "between alpha and beta where scheme = spatiotemporal and permutations = 40 \
             and include insignificant",
            RelationshipQuery::between(&["alpha"], &["beta"])
                .with_clause(base.with_scheme(PermutationScheme::SpatioTemporal)),
        ),
    ];

    let parsed: Vec<RelationshipQuery> = cases
        .iter()
        .map(|(src, _)| {
            parse_query(src).unwrap_or_else(|e| panic!("valid PQL:\n{}", e.render(src)))
        })
        .collect();
    for ((src, built), p) in cases.iter().zip(&parsed) {
        assert_eq!(p, built, "PQL `{src}` compiles to the builder query");
    }

    let dp = build_framework();
    let built: Vec<RelationshipQuery> = cases.into_iter().map(|(_, q)| q).collect();
    let from_builder = dp.query_many(&built).expect("builder batch evaluates");
    let from_pql = dp.query_many(&parsed).expect("PQL batch evaluates");
    assert!(
        from_builder.iter().any(|r| !r.is_empty()),
        "equivalence must be non-trivial"
    );
    for (i, (b, p)) in from_builder.iter().zip(&from_pql).enumerate() {
        assert_eq!(json(b), json(p), "query {i} results byte-identical");
    }
}

/// A batch file compiles through `query_many` to the same bytes as its
/// queries parsed and run one by one.
#[test]
fn batch_file_matches_individual_queries() {
    let batch_src = "\
# regression sweep over the toy corpus\n\
between alpha and beta where permutations = 40 and include insignificant\n\
\n\
between gamma and * where class = extreme and permutations = 40 and include insignificant\n\
between * and * where score >= 0.5 and permutations = 40 and include insignificant\n";
    let batch =
        parse_batch(batch_src).unwrap_or_else(|e| panic!("valid batch:\n{}", e.render(batch_src)));
    assert_eq!(batch.len(), 3);

    let dp = build_framework();
    let batched = dp.query_many(&batch).expect("batch evaluates");
    for (q, rels) in batch.iter().zip(&batched) {
        let single = dp.query(q).expect("single query evaluates");
        assert_eq!(
            json(&single),
            json(rels),
            "batch result for `{}`",
            to_pql(q)
        );
    }
}

// ---------------------------------------------------------------------------
// Error spans at the integration surface.

#[test]
fn batch_errors_carry_whole_file_spans() {
    let src = "between alpha and beta\nbetween gamma and * where score > 0.5\n";
    let err = parse_batch(src).expect_err("bare `>` is rejected");
    assert_eq!(err.kind, PqlErrorKind::LoneGt);
    assert_eq!(&src[err.span.start..err.span.end], ">");
    let rendered = err.render(src);
    assert!(rendered.contains("line 2"), "{rendered}");
    assert!(rendered.contains("PQL comparisons use `>=`"), "{rendered}");
}

#[test]
fn unknown_dataset_is_a_query_error_not_a_parse_error() {
    let dp = build_framework();
    let q = parse_query("between nosuch and *").expect("parses fine");
    assert!(
        dp.query(&q).is_err(),
        "unknown data set surfaces at query time"
    );
}

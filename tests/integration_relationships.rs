//! End-to-end relationship discovery over the NYC-Urban analogue.
//!
//! These tests exercise the full pipeline — generation → scalar functions →
//! merge trees → thresholds → features → relationship operator →
//! significance — and check that the planted couplings of
//! `polygamy-datagen` are recovered with the right signs, mirroring the
//! paper's Section 6.3 findings.
//!
//! Note: query results are canonicalised (the data set indexed first
//! appears on the left), so matching is orientation-agnostic; τ is
//! symmetric under swapping sides.

use polygamy_core::prelude::*;
use polygamy_core::Relationship;
use polygamy_datagen::{urban_collection, UrbanConfig};
use std::sync::OnceLock;

/// One shared small collection + built index for all tests in this file
/// (indexing is the expensive part).
fn framework() -> &'static DataPolygamy {
    static DP: OnceLock<DataPolygamy> = OnceLock::new();
    DP.get_or_init(|| {
        let collection = urban_collection(UrbanConfig {
            n_years: 1,
            scale: 0.05,
            extra_weather_attrs: 0,
            ..UrbanConfig::default()
        });
        let mut dp = DataPolygamy::new(
            collection.geometry().clone(),
            polygamy_core::framework::Config::default(),
        );
        for d in collection.datasets.iter() {
            dp.add_dataset(d.clone());
        }
        dp.build_index();
        dp
    })
}

fn base_clause() -> Clause {
    Clause::default().permutations(150)
}

/// Finds relationships between two named functions in either orientation.
fn matching<'a>(
    rels: &'a [Relationship],
    a: &str,
    b: &str,
) -> impl Iterator<Item = &'a Relationship> {
    let (a, b) = (a.to_string(), b.to_string());
    rels.iter().filter(move |r| {
        let l = r.left.to_string();
        let rr = r.right.to_string();
        (l == a && rr == b) || (l == b && rr == a)
    })
}

fn render(rels: &[Relationship]) -> String {
    rels.iter()
        .take(40)
        .map(|r| format!("  {r}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn rain_suppresses_taxi_activity() {
    let dp = framework();
    // Statistical power at coarse resolutions is limited on one simulated
    // year, so the paper's τ=-0.62/-0.81 findings are checked as: a
    // strongly negative candidate exists between taxi activity and
    // precipitation at some resolution.
    let rels = dp
        .query(
            &RelationshipQuery::between(&["taxi"], &["weather"])
                .with_clause(base_clause().include_insignificant()),
        )
        .unwrap();
    let found = matching(&rels, "taxi.density", "weather.avg(precipitation)")
        .chain(matching(&rels, "taxi.unique", "weather.avg(precipitation)"))
        .any(|r| r.score() <= -0.5);
    assert!(
        found,
        "expected strongly negative taxi-activity ~ precipitation; got:\n{}",
        render(&rels)
    );
}

#[test]
fn rain_raises_fares_significantly() {
    let dp = framework();
    // Paper: avg fare ~ precipitation, τ = 0.73, ρ = 0.7 (hour, city).
    let rels = dp
        .query(&RelationshipQuery::between(&["taxi"], &["weather"]).with_clause(base_clause()))
        .unwrap();
    let found = matching(&rels, "taxi.avg(fare)", "weather.avg(precipitation)")
        .any(|r| r.score() > 0.3 && r.significant);
    assert!(
        found,
        "expected significant positive fare ~ precipitation; got:\n{}",
        render(&rels)
    );
}

#[test]
fn hurricane_wind_extreme_features_relate_to_taxi_drop() {
    let dp = framework();
    // Paper Section 6.3: extreme features of wind speed relate negatively
    // to the number of trips (τ = −1, low ρ — holidays also dent trips).
    let rels = dp
        .query(
            &RelationshipQuery::between(&["taxi"], &["weather"]).with_clause(
                base_clause()
                    .class(FeatureClass::Extreme)
                    .include_insignificant(),
            ),
        )
        .unwrap();
    let found =
        matching(&rels, "taxi.density", "weather.avg(wind-speed)").any(|r| r.score() <= -0.9);
    assert!(
        found,
        "expected extreme-class wind ~ density with τ ≈ −1; got:\n{}",
        render(&rels)
    );
}

#[test]
fn rain_worsens_collision_severity() {
    let dp = framework();
    // Paper: rainfall ~ motorists killed τ=0.90, injured pedestrians
    // τ=0.75; frequency (density) shows no significant relationship.
    let rels = dp
        .query(
            &RelationshipQuery::between(&["collisions"], &["weather"]).with_clause(base_clause()),
        )
        .unwrap();
    let severity = matching(
        &rels,
        "collisions.avg(motorists-injured)",
        "weather.avg(precipitation)",
    )
    .any(|r| r.score() > 0.5 && r.significant);
    assert!(
        severity,
        "expected significant positive injured ~ precipitation; got:\n{}",
        render(&rels)
    );
}

#[test]
fn snow_stretches_bike_trips() {
    let dp = framework();
    // Paper: avg snow precipitation ~ avg bike trip duration, τ = 0.61.
    let rels = dp
        .query(&RelationshipQuery::between(&["citibike"], &["weather"]).with_clause(base_clause()))
        .unwrap();
    let found = matching(
        &rels,
        "citibike.avg(duration-min)",
        "weather.avg(snow-fall)",
    )
    .any(|r| r.score() > 0.5 && r.significant);
    assert!(
        found,
        "expected significant positive bike duration ~ snow-fall; got:\n{}",
        render(&rels)
    );
}

#[test]
fn snow_depth_idles_bike_stations() {
    let dp = framework();
    // Paper: snow precipitation ~ active Citi Bike stations, τ = −0.88 at
    // (day, city) — our analogue is the unique station count.
    let rels = dp
        .query(&RelationshipQuery::between(&["citibike"], &["weather"]).with_clause(base_clause()))
        .unwrap();
    let found = matching(&rels, "citibike.unique", "weather.avg(snow-depth)")
        .any(|r| r.score() < -0.5 && r.significant);
    assert!(
        found,
        "expected significant negative unique stations ~ snow depth; got:\n{}",
        render(&rels)
    );
}

#[test]
fn taxi_volume_slows_traffic() {
    let dp = framework();
    // Paper: number of taxi trips ~ average traffic speed, τ = −0.90 at
    // (hour, city).
    let rels = dp
        .query(
            &RelationshipQuery::between(&["taxi"], &["traffic-speed"]).with_clause(base_clause()),
        )
        .unwrap();
    let found = matching(&rels, "taxi.density", "traffic-speed.avg(speed-kmh)")
        .any(|r| r.score() < -0.3 && r.significant);
    assert!(
        found,
        "expected significant negative taxi ~ speed; got:\n{}",
        render(&rels)
    );
}

#[test]
fn collisions_relate_to_311_with_high_score() {
    let dp = framework();
    // Paper: collisions ~ 311 complaints τ = 0.99 at (hour, neighborhood).
    // Sparse count functions make the permutation null tight, so we check
    // the score shape; significance on 1 simulated year is not guaranteed.
    let rels = dp
        .query(
            &RelationshipQuery::between(&["collisions"], &["complaints-311"])
                .with_clause(base_clause().include_insignificant()),
        )
        .unwrap();
    let found =
        matching(&rels, "collisions.density", "complaints-311.density").any(|r| r.score() > 0.8);
    assert!(
        found,
        "expected collisions ~ 311 with τ > 0.8; got:\n{}",
        render(&rels)
    );
}

#[test]
fn significance_prunes_candidates() {
    let dp = framework();
    let all = dp
        .query(
            &RelationshipQuery::between(&["taxi"], &["twitter"])
                .with_clause(base_clause().include_insignificant()),
        )
        .unwrap();
    let kept = dp
        .query(&RelationshipQuery::between(&["taxi"], &["twitter"]).with_clause(base_clause()))
        .unwrap();
    assert!(
        kept.len() < all.len(),
        "significance must prune candidates: {} of {} kept",
        kept.len(),
        all.len()
    );
}

#[test]
fn weather_is_polygamous() {
    let dp = framework();
    let rels = dp
        .query(&RelationshipQuery::of("weather").with_clause(base_clause().min_score(0.3)))
        .unwrap();
    let partners: std::collections::BTreeSet<&str> = rels
        .iter()
        .map(|r| {
            if r.left.dataset == "weather" {
                r.right.dataset.as_str()
            } else {
                r.left.dataset.as_str()
            }
        })
        .collect();
    assert!(
        partners.len() >= 3,
        "weather should relate to several data sets, got {partners:?}"
    );
}

#[test]
fn results_sorted_and_typed() {
    let dp = framework();
    let rels = dp
        .query(
            &RelationshipQuery::between(&["taxi"], &["weather"])
                .with_clause(base_clause().include_insignificant()),
        )
        .unwrap();
    assert!(!rels.is_empty());
    for w in rels.windows(2) {
        assert!(w[0].score().abs() >= w[1].score().abs() - 1e-12);
    }
    for r in &rels {
        assert!((-1.0..=1.0).contains(&r.score()));
        assert!(
            (0.0..=1.0).contains(&r.strength()),
            "strength out of range: {r}"
        );
        assert!((0.0..=1.0).contains(&r.p_value));
    }
}

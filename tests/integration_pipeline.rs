//! Cross-crate pipeline integration: correctness (paper Section 6.2),
//! robustness scaffolding, index round-trips and space accounting.

use polygamy_core::pipeline::{density_job, field_features};
use polygamy_core::prelude::*;
use polygamy_core::relationship::evaluate_features;
use polygamy_datagen::{add_iqr_noise, urban_collection, UrbanConfig};
use polygamy_stdata::aggregate;

fn small_collection() -> polygamy_datagen::UrbanCollection {
    urban_collection(UrbanConfig {
        n_years: 2,
        scale: 0.03,
        extra_weather_attrs: 0,
        ..UrbanConfig::default()
    })
}

/// Paper Section 6.2 (Correctness): the 2011 and 2012 taxi density
/// functions, modelled as separate data sets starting at the same relative
/// time, must be strongly and significantly positively related.
#[test]
fn correctness_year_over_year_taxi_density() {
    let c = small_collection();
    let taxi = c.dataset("taxi").unwrap();
    let years = taxi.split_by_year();
    assert_eq!(years.len(), 2);
    // Align both years on the same clock by shifting 2012 back by a year
    // (365 days; the paper aligns "starting at the same day and time").
    let (y1, d1) = &years[0];
    let (_y2, d2) = &years[1];
    let shift = polygamy_stdata::CivilDate::new(y1 + 1, 1, 1).timestamp()
        - polygamy_stdata::CivilDate::new(*y1, 1, 1).timestamp();
    let mut shifted = polygamy_stdata::DatasetBuilder::new(polygamy_stdata::DatasetMeta {
        name: "taxi-next-shifted".into(),
        ..d2.meta.clone()
    });
    for a in &d2.attributes {
        shifted = shifted.attribute(a.clone());
    }
    let mut b = shifted;
    for i in 0..d2.len() {
        let vals: Vec<f64> = (0..d2.attribute_count())
            .map(|a| d2.value_at(i, a).encode())
            .collect();
        b.push(d2.locations()[i], d2.times()[i] - shift, &vals)
            .unwrap();
    }
    let d2_shifted = b.build().unwrap();

    let mut dp = DataPolygamy::new(
        c.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    dp.add_dataset(d1.clone());
    dp.add_dataset(d2_shifted);
    dp.build_index();
    let rels = dp
        .query(
            &RelationshipQuery::all()
                .with_clause(Clause::default().permutations(150).include_insignificant()),
        )
        .unwrap();
    // The paper's two claims, asserted separately: the year-over-year
    // densities score τ ≈ 1, and the relationship is found statistically
    // significant. (Dense features at the coarser resolutions survive any
    // restricted permutation, so *their* τ=1.0 verdicts sit on the α
    // knife edge and legitimately land either way; conjoining both claims
    // on a single entry made this test hostage to the seed values, which
    // the old DefaultHasher derivation happened to satisfy on this
    // toolchain only.)
    let densities: Vec<_> = rels
        .iter()
        .filter(|r| r.left.function == "density" && r.right.function == "density")
        .collect();
    let strongest = densities.first().expect("no density~density relationship");
    assert!(
        strongest.score() > 0.95,
        "year-over-year τ = {} (paper: 0.99–1.0)",
        strongest.score()
    );
    assert!(
        densities.iter().any(|r| r.significant && r.score() > 0.5),
        "no significant density~density relationship found"
    );
}

/// Robustness (paper Section 6.2, Figure 12): relationship between a field
/// and its noisy copy stays strongly positive under IQR-bounded noise.
#[test]
fn robustness_noise_keeps_self_relationship() {
    let c = small_collection();
    let taxi = c.dataset("taxi").unwrap();
    let field = aggregate(
        taxi,
        &c.geometry().city,
        TemporalResolution::Hour,
        FunctionKind::Density,
        None,
    )
    .unwrap();
    let adjacency = vec![vec![]];
    let (clean, _, _) = field_features(&adjacency, &field);
    for frac in [0.02, 0.05, 0.10] {
        let noisy_field = add_iqr_noise(&field, frac, 99);
        let (noisy, _, _) = field_features(&adjacency, &noisy_field);
        let m = evaluate_features(&clean.salient, &noisy.salient);
        assert!(
            m.score > 0.8,
            "noise {frac}: τ = {} (paper stays 1.0 up to 2% and > 0.9 at 10%)",
            m.score
        );
        assert!(
            m.strength > 0.5,
            "noise {frac}: ρ = {} degraded too much",
            m.strength
        );
    }
}

/// The record-level map-reduce density job agrees with the columnar
/// aggregation on real generated data at every resolution.
#[test]
fn mapreduce_density_matches_columnar_on_urban_data() {
    let c = small_collection();
    let taxi = c.dataset("taxi").unwrap();
    let cluster = polygamy_mapreduce::Cluster::local(4);
    for (partition, temporal) in [
        (&c.geometry().city, TemporalResolution::Day),
        (
            c.geometry().neighborhood.as_ref().unwrap(),
            TemporalResolution::Week,
        ),
    ] {
        let (field, _) = density_job(cluster, taxi, partition, temporal).unwrap();
        let reference = aggregate(taxi, partition, temporal, FunctionKind::Density, None).unwrap();
        assert_eq!(field, reference);
    }
}

/// Index space overhead (paper Section 5.4): scalar functions + features
/// must be far smaller than the raw data.
#[test]
fn space_overhead_is_modest() {
    let c = small_collection();
    let mut dp = DataPolygamy::new(
        c.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    dp.add_dataset(c.dataset("taxi").unwrap().clone());
    dp.build_index();
    let stats = dp.index().unwrap().stats();
    assert!(stats.raw_bytes > 0);
    // Feature bit vectors cost ~4 bits/vertex vs 64 bits/vertex for the
    // scalar fields — an order of magnitude less. (Raw-data comparisons
    // only make sense at realistic record volumes: the paper's 108 GB of
    // taxi data vs 8 MB of features; at synthetic test scales the domain
    // size dominates the record count, so we assert the scale-invariant
    // ratio instead. The space-overhead experiment harness reports the
    // raw-vs-index comparison at full scale.)
    assert!(
        stats.feature_bytes * 8 <= stats.field_bytes,
        "features {} should be far smaller than fields {}",
        stats.feature_bytes,
        stats.field_bytes
    );
    assert!(stats.n_functions > 0);
    assert!(stats.tree_nodes > 0);
}

/// The index catalog survives a JSON round-trip with features intact.
#[test]
fn index_json_roundtrip_preserves_features() {
    let c = small_collection();
    let mut dp = DataPolygamy::new(
        c.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    dp.add_dataset(c.dataset("gas-prices").unwrap().clone());
    dp.build_index();
    let index = dp.index().unwrap();
    let json = index.to_json().unwrap();
    let back = polygamy_core::PolygamyIndex::from_json(&json).unwrap();
    assert_eq!(index.functions.len(), back.functions.len());
    for (a, b) in index.functions.iter().zip(&back.functions) {
        assert_eq!(a.features.salient.pos, b.features.salient.pos);
        assert_eq!(a.features.extreme.neg, b.features.extreme.neg);
    }
}

/// Indexing report covers every data set with nonzero function counts.
#[test]
fn build_report_accounts_for_all_datasets() {
    let c = small_collection();
    let mut dp = DataPolygamy::new(
        c.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    for d in &c.datasets {
        dp.add_dataset(d.clone());
    }
    let report = dp.build_index();
    assert_eq!(report.per_dataset.len(), 9);
    for stat in &report.per_dataset {
        assert!(stat.n_functions > 0, "{} indexed nothing", stat.name);
    }
    let total: usize = report.per_dataset.iter().map(|s| s.n_functions).sum();
    assert_eq!(total, dp.index().unwrap().functions.len());
}

//! Property-based tests over the core invariants, spanning crates.
//!
//! These pin down the algebraic properties the framework's correctness
//! rests on: level sets from the merge-tree index match brute force on
//! arbitrary functions, persistence pairing is conservative, relationship
//! measures live in their documented ranges and are symmetric, restricted
//! permutations are bijections, and temporal bucketing round-trips.

use polygamy_stats::permutation::{graph_toroidal_shift, is_permutation, temporal_rotation};
use polygamy_stdata::{CivilDate, TemporalResolution};
use polygamy_topology::{
    sub_level_set, super_level_set, BitVec, DomainGraph, FeatureSet, MergeTree,
};
use proptest::prelude::*;

fn arb_function(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => -100.0..100.0f64,
            1 => Just(f64::NAN),
        ],
        2..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Super-level sets extracted through the merge tree equal the
    /// pointwise definition for arbitrary (partially defined) functions.
    #[test]
    fn super_level_set_matches_definition(f in arb_function(120), theta in -120.0..120.0f64) {
        let g = DomainGraph::time_series(f.len());
        let tree = MergeTree::join(&g, &f);
        let got = super_level_set(&g, &f, &tree, theta);
        for (v, &fv) in f.iter().enumerate() {
            prop_assert_eq!(got.get(v), !fv.is_nan() && fv >= theta);
        }
    }

    /// Same for sub-level sets on a 2-D grid domain.
    #[test]
    fn sub_level_set_matches_definition_grid(
        values in prop::collection::vec(-50.0..50.0f64, 24),
        theta in -60.0..60.0f64,
    ) {
        let g = DomainGraph::grid(4, 3, 2);
        let tree = MergeTree::split(&g, &values);
        let got = sub_level_set(&g, &values, &tree, theta);
        for (v, &fv) in values.iter().enumerate() {
            prop_assert_eq!(got.get(v), fv <= theta);
        }
    }

    /// Persistence pairing: one pair per leaf; persistence non-negative and
    /// bounded by the function range; births are extrema values.
    #[test]
    fn persistence_pairs_well_formed(f in arb_function(100)) {
        let g = DomainGraph::time_series(f.len());
        let defined: Vec<f64> = f.iter().copied().filter(|x| !x.is_nan()).collect();
        let tree = MergeTree::join(&g, &f);
        prop_assert_eq!(tree.pairs.len(), tree.leaves.len());
        if defined.is_empty() {
            prop_assert!(tree.pairs.is_empty());
        } else {
            let range = defined.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - defined.iter().cloned().fold(f64::INFINITY, f64::min);
            for p in &tree.pairs {
                prop_assert!(p.persistence() >= 0.0);
                prop_assert!(p.persistence() <= range + 1e-9);
                prop_assert_eq!(p.birth, f[p.extremum as usize]);
            }
        }
    }

    /// Relationship measures: τ ∈ [−1, 1], ρ ∈ [0, 1], and swapping the
    /// sides preserves the score (τ is symmetric; ρ swaps precision and
    /// recall, leaving F1 unchanged).
    #[test]
    fn relationship_measures_ranges_and_symmetry(
        pos1 in prop::collection::btree_set(0usize..200, 0..40),
        neg1 in prop::collection::btree_set(0usize..200, 0..40),
        pos2 in prop::collection::btree_set(0usize..200, 0..40),
        neg2 in prop::collection::btree_set(0usize..200, 0..40),
    ) {
        let build = |pos: &std::collections::BTreeSet<usize>,
                     neg: &std::collections::BTreeSet<usize>| {
            let mut p = BitVec::zeros(200);
            let mut n = BitVec::zeros(200);
            // Keep pos/neg disjoint, as the threshold construction does.
            for &i in pos { p.set(i); }
            for &i in neg {
                if !p.get(i) { n.set(i); }
            }
            FeatureSet { pos: p, neg: n }
        };
        let a = build(&pos1, &neg1);
        let b = build(&pos2, &neg2);
        let ab = polygamy_core::evaluate_features(&a, &b);
        let ba = polygamy_core::evaluate_features(&b, &a);
        prop_assert!((-1.0..=1.0).contains(&ab.score));
        prop_assert!((0.0..=1.0).contains(&ab.strength));
        prop_assert!((ab.score - ba.score).abs() < 1e-12);
        prop_assert!((ab.strength - ba.strength).abs() < 1e-12);
        prop_assert_eq!(ab.n_pos, ba.n_pos);
        prop_assert_eq!(ab.n_neg, ba.n_neg);
    }

    /// Restricted permutations are bijections on any grid.
    #[test]
    fn toroidal_shifts_are_bijections(
        nx in 1usize..6,
        ny in 1usize..6,
        seed in 0u64..1000,
        shift in 0usize..50,
    ) {
        let mut adj = vec![Vec::new(); nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx { adj[i].push((i + 1) as u32); adj[i + 1].push(i as u32); }
                if y + 1 < ny { adj[i].push((i + nx) as u32); adj[i + nx].push(i as u32); }
            }
        }
        for a in &mut adj { a.sort_unstable(); }
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let spatial = graph_toroidal_shift(&adj, &mut rng);
        prop_assert!(is_permutation(&spatial));
        let temporal = temporal_rotation(nx * ny, 20, shift);
        prop_assert!(is_permutation(&temporal));
    }

    /// Temporal bucketing: bucket_start(bucket_of(ts)) <= ts and buckets
    /// are monotone in ts, for every resolution including calendar months.
    #[test]
    fn temporal_buckets_consistent(
        days in -3000i64..3000,
        secs in 0i64..86_400,
    ) {
        let ts = days * 86_400 + secs;
        for res in TemporalResolution::ALL {
            let b = res.bucket_of(ts);
            prop_assert!(res.bucket_start(b) <= ts);
            prop_assert!(res.bucket_of(res.bucket_start(b)) == b);
            prop_assert!(res.bucket_of(ts + 1) >= b);
        }
    }

    /// Civil calendar round-trip on arbitrary day numbers.
    #[test]
    fn civil_date_roundtrip(z in -1_000_000i64..1_000_000) {
        let d = CivilDate::from_days(z);
        prop_assert_eq!(d.days_from_civil(), z);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    /// BitVec slice + permute identities.
    #[test]
    fn bitvec_slice_counts(
        bits in prop::collection::btree_set(0usize..300, 0..60),
        start in 0usize..150,
        len in 0usize..150,
    ) {
        let mut bv = BitVec::zeros(300);
        for &b in &bits { bv.set(b); }
        let end = (start + len).min(300);
        let s = bv.slice(start, end);
        let expected = bits.iter().filter(|&&b| b >= start && b < end).count();
        prop_assert_eq!(s.count_ones(), expected);
        for (i, &b) in bits.iter().enumerate() {
            let _ = i;
            if b >= start && b < end {
                prop_assert!(s.get(b - start));
            }
        }
    }
}

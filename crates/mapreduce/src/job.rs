//! The map → shuffle → reduce job runner.
//!
//! Faithful to the Hadoop semantics the paper's implementation relies on
//! (Appendix C): mappers emit `(key, value)` pairs; the shuffle hash-
//! partitions keys across reduce tasks; each reduce task sees its keys in
//! sorted order with all values grouped; optional combiners pre-aggregate
//! map-side. Everything is deterministic for a fixed input, regardless of
//! worker count — a property the tests pin down.

use crate::cluster::Cluster;
use crate::pool::run_indexed_tasks;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// One reduce partition's input, handed off to exactly one reduce task.
type ReduceSlot<K, V> = Mutex<Option<Vec<(K, V)>>>;

/// Tuning knobs for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Number of reduce partitions (default: worker count).
    pub reduce_tasks: Option<usize>,
    /// Map tasks per worker (default 4) — smaller tasks smooth stragglers.
    pub map_tasks_per_worker: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            reduce_tasks: None,
            map_tasks_per_worker: 4,
        }
    }
}

/// Phase timings and record counts of one executed job.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Number of map tasks.
    pub map_tasks: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Input records consumed by mappers.
    pub records_mapped: usize,
    /// Intermediate pairs after combining.
    pub pairs_shuffled: usize,
    /// Distinct keys reduced.
    pub keys_reduced: usize,
    /// Map phase wall seconds.
    pub map_secs: f64,
    /// Shuffle+sort wall seconds.
    pub shuffle_secs: f64,
    /// Reduce phase wall seconds.
    pub reduce_secs: f64,
}

impl JobMetrics {
    /// Total wall seconds across phases.
    pub fn total_secs(&self) -> f64 {
        self.map_secs + self.shuffle_secs + self.reduce_secs
    }
}

/// 64-bit FNV-1a as a `std::hash::Hasher`, for shuffle partitioning.
///
/// The partition a key lands in never reaches the output (reduce results
/// are re-sorted globally), but pinning the hash keeps task boundaries —
/// and therefore per-task metrics and scheduling traces — identical
/// across toolchains, where `std`'s `DefaultHasher` is documented to
/// drift between releases.
struct FnvPartitioner(u64);

impl FnvPartitioner {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }
}

impl Hasher for FnvPartitioner {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = FnvPartitioner::new();
    key.hash(&mut h);
    h.finish()
}

/// Runs a full map-reduce job on `cluster`.
///
/// * `inputs` — input splits (one mapper call per element);
/// * `map` — emits `(key, value)` pairs via the provided emitter;
/// * `combine` — optional associative map-side pre-aggregation;
/// * `reduce` — folds all values of one key into one output.
///
/// Returns `(key, output)` pairs sorted by key, plus metrics.
pub fn run_job<I, K, V, O, M, C, R>(
    cluster: Cluster,
    config: JobConfig,
    inputs: Vec<I>,
    map: M,
    combine: Option<C>,
    reduce: R,
) -> (Vec<(K, O)>, JobMetrics)
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    let workers = cluster.workers();
    let n_reduce = config.reduce_tasks.unwrap_or(workers).max(1);
    let mut metrics = JobMetrics {
        reduce_tasks: n_reduce,
        records_mapped: inputs.len(),
        ..JobMetrics::default()
    };

    // ---- Map phase: split inputs into tasks, emit partitioned pairs.
    let map_start = Instant::now();
    let n_map_tasks = (workers * config.map_tasks_per_worker)
        .min(inputs.len())
        .max(1);
    metrics.map_tasks = n_map_tasks;
    // Distribute inputs round-robin-free: contiguous chunks, remainder
    // spread over the first tasks.
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n_map_tasks);
    {
        let total = inputs.len();
        let base = total / n_map_tasks;
        let extra = total % n_map_tasks;
        let mut it = inputs.into_iter();
        for t in 0..n_map_tasks {
            let take = base + usize::from(t < extra);
            chunks.push(it.by_ref().take(take).collect());
        }
    }
    let chunk_slots: Vec<Mutex<Option<Vec<I>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();

    let map_outputs: Vec<Vec<Vec<(K, V)>>> = run_indexed_tasks(workers, n_map_tasks, |t| {
        let chunk = chunk_slots[t].lock().take().expect("chunk taken once");
        let mut partitions: Vec<Vec<(K, V)>> = (0..n_reduce).map(|_| Vec::new()).collect();
        {
            let mut emit = |k: K, v: V| {
                let p = (hash_of(&k) % n_reduce as u64) as usize;
                partitions[p].push((k, v));
            };
            for input in chunk {
                map(input, &mut emit);
            }
        }
        if let Some(combine) = &combine {
            for part in &mut partitions {
                *part = combine_partition(std::mem::take(part), combine);
            }
        }
        partitions
    });
    metrics.map_secs = map_start.elapsed().as_secs_f64();

    // ---- Shuffle: gather each partition across map tasks, sort, group.
    let shuffle_start = Instant::now();
    let mut reduce_inputs: Vec<Vec<(K, V)>> = (0..n_reduce).map(|_| Vec::new()).collect();
    for task_out in map_outputs {
        for (p, pairs) in task_out.into_iter().enumerate() {
            reduce_inputs[p].extend(pairs);
        }
    }
    metrics.pairs_shuffled = reduce_inputs.iter().map(Vec::len).sum();
    let reduce_slots: Vec<ReduceSlot<K, V>> = reduce_inputs
        .into_iter()
        .map(|c| Mutex::new(Some(c)))
        .collect();
    metrics.shuffle_secs = shuffle_start.elapsed().as_secs_f64();

    // ---- Reduce phase.
    let reduce_start = Instant::now();
    let per_partition: Vec<Vec<(K, O)>> = run_indexed_tasks(workers, n_reduce, |p| {
        let mut pairs = reduce_slots[p].lock().take().expect("partition taken once");
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        let mut it = pairs.into_iter().peekable();
        while let Some((key, first)) = it.next() {
            let mut values = vec![first];
            while it.peek().is_some_and(|(k, _)| *k == key) {
                values.push(it.next().expect("peeked").1);
            }
            let o = reduce(&key, values);
            out.push((key, o));
        }
        out
    });
    let mut results: Vec<(K, O)> = per_partition.into_iter().flatten().collect();
    results.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.keys_reduced = results.len();
    metrics.reduce_secs = reduce_start.elapsed().as_secs_f64();
    (results, metrics)
}

/// Convenience wrapper without a combiner.
pub fn run_job_simple<I, K, V, O, M, R>(
    cluster: Cluster,
    inputs: Vec<I>,
    map: M,
    reduce: R,
) -> (Vec<(K, O)>, JobMetrics)
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    run_job(
        cluster,
        JobConfig::default(),
        inputs,
        map,
        None::<fn(&K, Vec<V>) -> V>,
        reduce,
    )
}

/// Parallel map with no shuffle — the shape of the feature-identification
/// job, where every scalar function is processed independently.
pub fn par_map<I, O, F>(cluster: Cluster, inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    run_indexed_tasks(cluster.workers(), slots.len(), |i| {
        let input = slots[i].lock().take().expect("input taken once");
        f(input)
    })
}

fn combine_partition<K, V, C>(mut pairs: Vec<(K, V)>, combine: &C) -> Vec<(K, V)>
where
    K: Ord + Clone,
    C: Fn(&K, Vec<V>) -> V,
{
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::with_capacity(pairs.len());
    let mut it = pairs.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        let mut values = vec![first];
        while it.peek().is_some_and(|(k, _)| *k == key) {
            values.push(it.next().expect("peeked").1);
        }
        if values.len() == 1 {
            out.push((key, values.pop().expect("one value")));
        } else {
            let v = combine(&key, values);
            out.push((key, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical word count over synthetic text.
    fn word_count(cluster: Cluster) -> Vec<(String, usize)> {
        let docs: Vec<String> = (0..50)
            .map(|i| {
                let words = ["taxi", "rain", "wind", "bike", "snow"];
                (0..20)
                    .map(|j| words[(i + j * 3) % words.len()])
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let (out, _) = run_job_simple(
            cluster,
            docs,
            |doc: String, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            |_k, vs| vs.into_iter().sum::<usize>(),
        );
        out
    }

    #[test]
    fn word_count_totals() {
        let out = word_count(Cluster::local(4));
        let total: usize = out.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 50 * 20);
        assert_eq!(out.len(), 5);
        // Sorted by key.
        let keys: Vec<&str> = out.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["bike", "rain", "snow", "taxi", "wind"]);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let single = word_count(Cluster::local(1));
        for workers in [2, 3, 8] {
            assert_eq!(word_count(Cluster::local(workers)), single);
        }
    }

    #[test]
    fn combiner_matches_no_combiner() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let map = |x: u64, emit: &mut dyn FnMut(u64, u64)| emit(x % 17, x);
        let reduce = |_k: &u64, vs: Vec<u64>| vs.into_iter().sum::<u64>();
        let (plain, m1) = run_job_simple(Cluster::local(4), inputs.clone(), map, reduce);
        let (combined, m2) = run_job(
            Cluster::local(4),
            JobConfig::default(),
            inputs,
            map,
            Some(|_k: &u64, vs: Vec<u64>| vs.into_iter().sum::<u64>()),
            reduce,
        );
        assert_eq!(plain, combined);
        // Combiner collapses each task's pairs to <= 17 per partition set.
        assert!(m2.pairs_shuffled < m1.pairs_shuffled);
    }

    #[test]
    fn metrics_populated() {
        let (out, m) = run_job_simple(
            Cluster::local(2),
            vec![1u32, 2, 3, 4],
            |x: u32, emit| emit(x % 2, x),
            |_k, vs: Vec<u32>| vs.len(),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(m.records_mapped, 4);
        assert_eq!(m.pairs_shuffled, 4);
        assert_eq!(m.keys_reduced, 2);
        assert!(m.map_tasks >= 1);
    }

    #[test]
    fn empty_input() {
        let (out, m) = run_job_simple(
            Cluster::local(4),
            Vec::<u32>::new(),
            |x: u32, emit| emit(x, x),
            |_k, vs: Vec<u32>| vs.len(),
        );
        assert!(out.is_empty());
        assert_eq!(m.records_mapped, 0);
    }

    #[test]
    fn par_map_order() {
        let out = par_map(Cluster::local(8), (0..100).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sees_sorted_keys_grouped() {
        // Keys must arrive grouped: reduce output equals input multiset.
        let inputs: Vec<u32> = (0..1000).rev().collect();
        let (out, _) = run_job_simple(
            Cluster::local(3),
            inputs,
            |x: u32, emit| emit(x / 10, x),
            |_k, vs: Vec<u32>| {
                let mut vs = vs;
                vs.sort_unstable();
                vs
            },
        );
        assert_eq!(out.len(), 100);
        for (k, vs) in out {
            assert_eq!(vs.len(), 10);
            assert!(vs.iter().all(|v| v / 10 == k));
        }
    }
}

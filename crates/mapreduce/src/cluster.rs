//! Simulated cluster sizing.
//!
//! The paper's scalability experiment (Figure 10) sweeps AWS cluster sizes
//! and reports per-component speedup. We model a cluster as `nodes ×
//! cores_per_node` workers sharing one machine: what the sweep then
//! measures is the same quantity the paper's does — how well each
//! embarrassingly parallel job scales with available task slots, including
//! the straggler effects that flatten the curve.

use serde::{Deserialize, Serialize};

/// An execution environment with a bounded number of parallel task slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Cores (task slots) per node.
    pub cores_per_node: usize,
}

impl Cluster {
    /// A cluster of `nodes` nodes with `cores_per_node` slots each.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        Self {
            nodes: nodes.max(1),
            cores_per_node: cores_per_node.max(1),
        }
    }

    /// A single-node "cluster" with `workers` slots.
    pub fn local(workers: usize) -> Self {
        Self::new(1, workers)
    }

    /// Uses every core the host offers, unless the `POLYGAMY_WORKERS`
    /// environment variable forces a specific count (CI runs the suite
    /// under forced worker counts to prove results are worker-independent).
    pub fn host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(
            1,
            Self::forced_workers(std::env::var("POLYGAMY_WORKERS").ok()).unwrap_or(cores),
        )
    }

    /// Parses a `POLYGAMY_WORKERS` override; unset, empty or unparsable
    /// values mean "no override".
    fn forced_workers(var: Option<String>) -> Option<usize> {
        var.as_deref()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    }

    /// Total parallel task slots.
    pub fn workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts() {
        assert_eq!(Cluster::new(4, 8).workers(), 32);
        assert_eq!(Cluster::local(3).workers(), 3);
        assert!(Cluster::host().workers() >= 1);
    }

    #[test]
    fn zero_clamped() {
        assert_eq!(Cluster::new(0, 0).workers(), 1);
    }

    #[test]
    fn forced_worker_parsing() {
        // Parsed without mutating the process environment (other tests run
        // concurrently and must not see a forced count).
        assert_eq!(Cluster::forced_workers(Some("4".into())), Some(4));
        assert_eq!(Cluster::forced_workers(Some(" 2 ".into())), Some(2));
        assert_eq!(Cluster::forced_workers(Some("0".into())), None);
        assert_eq!(Cluster::forced_workers(Some("lots".into())), None);
        assert_eq!(Cluster::forced_workers(None), None);
    }
}

//! Scoped worker pool over `std::thread::scope`.
//!
//! Tasks are indexed work items pulled off a shared atomic counter by a
//! fixed number of worker threads — the same self-scheduling model Hadoop
//! task trackers use within a node, and the mechanism by which
//! [`crate::cluster::Cluster`] bounds parallelism.
//!
//! [`run_chunked_tasks`] is the general form: workers claim contiguous
//! *chunks* of task indices, which amortises counter and channel traffic
//! when a caller schedules thousands of small tasks on one pool (the flat
//! query executor's shape). Results are always assembled in task order, so
//! output is independent of worker count and chunk size.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(i)` for every `i in 0..n_tasks` on `workers` threads and returns
/// the results in task order.
///
/// `workers == 1` runs inline on the calling thread (no spawn overhead),
/// which keeps single-node measurements honest.
pub fn run_indexed_tasks<R, F>(workers: usize, n_tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_chunked_tasks(workers, n_tasks, 1, f)
}

/// Runs `f(i)` for every `i in 0..n_tasks` on `workers` threads, with each
/// worker claiming `chunk_size` consecutive indices at a time, and returns
/// the results in task order.
///
/// Chunking only changes how indices are claimed, never what is computed or
/// how results are ordered: for any `workers`, `chunk_size` combination the
/// returned vector is identical to the sequential `(0..n_tasks).map(f)`.
pub fn run_chunked_tasks<R, F>(workers: usize, n_tasks: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    let chunk = chunk_size.max(1);
    if workers == 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
    // Hand each worker a disjoint view of the result slots through a
    // channel of (start index, chunk results) messages; the receiver owns
    // `slots`.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<R>)>();
    let n_chunks = n_tasks.div_ceil(chunk);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n_chunks) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n_tasks {
                    break;
                }
                let end = (start + chunk).min(n_tasks);
                let rs: Vec<R> = (start..end).map(f).collect();
                if tx.send((start, rs)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((start, rs)) = rx.recv() {
            for (off, r) in rs.into_iter().enumerate() {
                slots[start + off] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let out = run_indexed_tasks(4, 100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn single_worker_inline() {
        let out = run_indexed_tasks(1, 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<usize> = run_indexed_tasks(8, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = run_indexed_tasks(7, 1_000, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 1_000);
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed_tasks(64, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn chunked_matches_sequential_for_any_shape() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for workers in [1, 2, 5, 16] {
            for chunk in [1, 2, 7, 64, 300] {
                let out = run_chunked_tasks(workers, 257, chunk, |i| i * 3 + 1);
                assert_eq!(out, expect, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunked_runs_every_task_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = run_chunked_tasks(6, 1_000, 13, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 1_000);
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn chunk_size_zero_clamped() {
        let out = run_chunked_tasks(4, 10, 0, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}

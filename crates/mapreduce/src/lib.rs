//! # polygamy-mapreduce — parallel execution substrate
//!
//! The paper runs Data Polygamy as three Hadoop map-reduce jobs over a
//! 20-node cluster (Section 5.4, Appendix C). This crate reproduces the
//! programming model in-process so the framework's jobs — scalar-function
//! computation, feature identification, relationship computation — run
//! unchanged on one machine while preserving the semantics that matter:
//!
//! * **map → shuffle → reduce**: mappers emit `(key, value)` pairs that are
//!   hash-partitioned, sorted and grouped per key before reduction;
//! * **combiners**: optional map-side pre-aggregation;
//! * **cluster sizing**: a [`Cluster`] caps worker parallelism to model a
//!   given node × core configuration, which is how the Figure 10 speedup
//!   experiment sweeps "cluster sizes";
//! * **metrics**: per-phase wall times and record counts for the
//!   performance experiments.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod job;
pub mod pool;

pub use cluster::Cluster;
pub use job::{par_map, run_job, run_job_simple, JobConfig, JobMetrics};
pub use pool::{run_chunked_tasks, run_indexed_tasks};

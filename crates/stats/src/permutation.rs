//! Restricted Monte Carlo permutation tests (paper Section 4).
//!
//! Urban data carries spatial and temporal dependencies; naive permutations
//! destroy them and inflate significance. The paper's remedy is *restricted*
//! randomisation:
//!
//! * purely temporal (1-D) functions are wrapped onto a circle and rotated —
//!   [`temporal_rotation`];
//! * spatial functions are re-mapped by a *toroidal shift generalised to
//!   arbitrary graphs*: a random seed pair `m(u) = v` is extended in
//!   breadth-first order, assigning neighbours of `u` to neighbours of `v`
//!   "where applicable", so graph distances are mostly preserved —
//!   [`graph_toroidal_shift`];
//! * space and time compose via [`spatiotemporal_shift`].
//!
//! All shifts are returned as explicit vertex permutations `perm[v] = image`
//! over the domain graph, which the relationship evaluator applies to one
//! function's feature bit vector before re-scoring.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which tail of the permutation distribution defines the p-value.
///
/// The paper's Eq. 4 is `Lower` (`I(τ_k ≤ τ*)`); the framework defaults to
/// `TwoSided` because the relationship operator must flag both strongly
/// positive and strongly negative scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tail {
    /// `p = #(x_k <= x*) / m` — extreme means unusually small.
    Lower,
    /// `p = #(x_k >= x*) / m` — extreme means unusually large.
    Upper,
    /// `p = 2 * min(lower, upper)`, capped at 1.
    TwoSided,
}

/// Monte Carlo p-value of `observed` against the permutation distribution
/// `permuted`. Uses the paper's estimator (Eq. 4) with no continuity
/// correction; an empty permutation set yields `p = 1` (never significant).
pub fn p_value(observed: f64, permuted: &[f64], tail: Tail) -> f64 {
    if permuted.is_empty() {
        return 1.0;
    }
    let m = permuted.len() as f64;
    let lower = permuted.iter().filter(|&&x| x <= observed).count() as f64 / m;
    let upper = permuted.iter().filter(|&&x| x >= observed).count() as f64 / m;
    match tail {
        Tail::Lower => lower,
        Tail::Upper => upper,
        Tail::TwoSided => (2.0 * lower.min(upper)).min(1.0),
    }
}

/// Configuration for a Monte Carlo significance test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Number of permutations `|m|` (the paper uses 1,000).
    pub permutations: usize,
    /// Significance level α (the paper uses 0.05).
    pub alpha: f64,
    /// Which tail defines the p-value.
    pub tail: Tail,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        Self {
            permutations: 1_000,
            alpha: 0.05,
            tail: Tail::TwoSided,
        }
    }
}

impl MonteCarlo {
    /// Computes the p-value under this configuration.
    pub fn p_value(&self, observed: f64, permuted: &[f64]) -> f64 {
        p_value(observed, permuted, self.tail)
    }

    /// True when `p <= alpha` (paper Definition 14).
    pub fn is_significant(&self, p: f64) -> bool {
        p <= self.alpha
    }
}

/// Permutation that rotates the time axis by `shift` steps while leaving
/// space fixed: vertex `(x, z)` maps to `(x, (z + shift) mod n_steps)`.
///
/// This is the 1-D toroidal wrap of Section 4 ("Restricted Monte Carlo
/// Tests for Temporal Correlation") extended to any number of regions.
pub fn temporal_rotation(n_regions: usize, n_steps: usize, shift: usize) -> Vec<u32> {
    let mut perm = vec![0u32; n_regions * n_steps];
    for z in 0..n_steps {
        let zz = (z + shift) % n_steps.max(1);
        for x in 0..n_regions {
            perm[z * n_regions + x] = (zz * n_regions + x) as u32;
        }
    }
    perm
}

/// BFS-based toroidal shift over an arbitrary region adjacency graph
/// (Section 4, "Restricted Monte Carlo Tests for Spatial Correlation").
///
/// Starts from a random mapping `m(u0) = v0` and extends it breadth-first:
/// unassigned neighbours of `u` receive unused neighbours of `m(u)` where
/// possible. Vertices that cannot be matched this way (graph irregularity)
/// are paired with the remaining unused images at random. The result is a
/// bijection on `0..n` that preserves adjacency for most pairs.
pub fn graph_toroidal_shift<R: Rng + ?Sized>(adjacency: &[Vec<u32>], rng: &mut R) -> Vec<u32> {
    let n = adjacency.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    let mut image: Vec<Option<u32>> = vec![None; n];
    let mut used = vec![false; n];
    let mut queue = VecDeque::new();

    // Seed every connected component (BFS restart) so disconnected graphs
    // are fully covered.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &start in &order {
        if image[start as usize].is_some() {
            continue;
        }
        // Random unused image for the component seed.
        let v0 = loop {
            let cand = rng.gen_range(0..n);
            if !used[cand] {
                break cand as u32;
            }
        };
        image[start as usize] = Some(v0);
        used[v0 as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let v = image[u as usize].expect("assigned before enqueue");
            // Unused neighbours of the image, consumed in order.
            let targets: Vec<u32> = adjacency[v as usize]
                .iter()
                .copied()
                .filter(|&b| !used[b as usize])
                .collect();
            let mut targets = targets.into_iter();
            for &a in &adjacency[u as usize] {
                if image[a as usize].is_some() {
                    continue;
                }
                if let Some(b) = targets.next() {
                    image[a as usize] = Some(b);
                    used[b as usize] = true;
                    queue.push_back(a);
                }
                // "Where applicable": if the image has no free neighbours
                // left, `a` stays unassigned and is fixed up below.
            }
        }
    }

    // Randomly pair leftovers with leftover images.
    let unassigned: Vec<usize> = (0..n).filter(|&i| image[i].is_none()).collect();
    let mut free: Vec<u32> = (0..n as u32).filter(|&i| !used[i as usize]).collect();
    free.shuffle(rng);
    debug_assert_eq!(unassigned.len(), free.len());
    for (i, b) in unassigned.into_iter().zip(free) {
        image[i] = Some(b);
    }
    image
        .into_iter()
        .map(|v| v.expect("all assigned"))
        .collect()
}

/// Composes a spatial region permutation with a temporal rotation into a
/// vertex permutation over the full space × time domain.
pub fn spatiotemporal_shift(spatial_perm: &[u32], n_steps: usize, time_shift: usize) -> Vec<u32> {
    let n_regions = spatial_perm.len();
    let mut perm = vec![0u32; n_regions * n_steps];
    for z in 0..n_steps {
        let zz = (z + time_shift) % n_steps.max(1);
        for x in 0..n_regions {
            perm[z * n_regions + x] = (zz * n_regions) as u32 + spatial_perm[x];
        }
    }
    perm
}

/// Checks that `perm` is a bijection (test/diagnostic helper).
pub fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let Some(slot) = seen.get_mut(p as usize) else {
            return false;
        };
        if *slot {
            return false;
        }
        *slot = true;
    }
    true
}

/// Fraction of edges whose endpoints remain adjacent after applying `perm`
/// (diagnostic for how well a toroidal shift respects the graph structure).
pub fn adjacency_preservation(adjacency: &[Vec<u32>], perm: &[u32]) -> f64 {
    let mut total = 0usize;
    let mut kept = 0usize;
    for (u, nbrs) in adjacency.iter().enumerate() {
        for &w in nbrs {
            if (w as usize) < u {
                continue;
            }
            total += 1;
            let (pu, pw) = (perm[u], perm[w as usize]);
            if adjacency[pu as usize].binary_search(&pw).is_ok() {
                kept += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        kept as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn p_value_tails() {
        let permuted: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        // observed far below all permutations
        assert_eq!(p_value(-1.0, &permuted, Tail::Lower), 0.0);
        assert_eq!(p_value(-1.0, &permuted, Tail::Upper), 1.0);
        assert_eq!(p_value(-1.0, &permuted, Tail::TwoSided), 0.0);
        // observed in the middle
        let p = p_value(0.5, &permuted, Tail::TwoSided);
        assert!(p > 0.9, "middle observation should not be significant: {p}");
        // empty permutations: never significant
        assert_eq!(p_value(0.0, &[], Tail::Lower), 1.0);
    }

    #[test]
    fn monte_carlo_config() {
        let mc = MonteCarlo::default();
        assert_eq!(mc.permutations, 1_000);
        assert!(mc.is_significant(0.05));
        assert!(!mc.is_significant(0.051));
    }

    #[test]
    fn temporal_rotation_is_permutation() {
        let perm = temporal_rotation(3, 5, 2);
        assert!(is_permutation(&perm));
        // (x=1, z=0) -> (x=1, z=2)
        assert_eq!(perm[1], (2 * 3 + 1) as u32);
        // wraps: z=4 -> z=1
        assert_eq!(perm[4 * 3], 3);
    }

    #[test]
    fn temporal_rotation_zero_shift_is_identity() {
        let perm = temporal_rotation(2, 4, 0);
        assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }

    fn grid_adjacency(nx: usize, ny: usize) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    adj[i].push((i + 1) as u32);
                    adj[i + 1].push(i as u32);
                }
                if y + 1 < ny {
                    adj[i].push((i + nx) as u32);
                    adj[i + nx].push(i as u32);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        adj
    }

    #[test]
    fn graph_shift_is_bijection() {
        let adj = grid_adjacency(6, 6);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let perm = graph_toroidal_shift(&adj, &mut rng);
            assert!(is_permutation(&perm));
        }
    }

    #[test]
    fn graph_shift_preserves_most_adjacency() {
        let adj = grid_adjacency(8, 8);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut total = 0.0;
        for _ in 0..50 {
            let perm = graph_toroidal_shift(&adj, &mut rng);
            total += adjacency_preservation(&adj, &perm);
        }
        let avg = total / 50.0;
        // A uniformly random permutation keeps ~ |E| * (avg_deg/n) ≈ 6% of
        // edges on an 8x8 grid; the BFS shift should keep far more.
        assert!(avg > 0.5, "average adjacency preservation too low: {avg}");
    }

    #[test]
    fn graph_shift_handles_disconnected_graphs() {
        // Two disjoint triangles.
        let mut adj = vec![Vec::new(); 6];
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let perm = graph_toroidal_shift(&adj, &mut rng);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn graph_shift_trivial_sizes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(graph_toroidal_shift(&[], &mut rng).is_empty());
        assert_eq!(graph_toroidal_shift(&[vec![]], &mut rng), vec![0]);
    }

    #[test]
    fn spatiotemporal_composition() {
        // 2 regions swapped, 3 steps rotated by 1.
        let perm = spatiotemporal_shift(&[1, 0], 3, 1);
        assert!(is_permutation(&perm));
        // (x=0, z=0) -> (x=1, z=1) = index 3
        assert_eq!(perm[0], 3);
        // (x=1, z=2) -> (x=0, z=0) = index 0
        assert_eq!(perm[2 * 2 + 1], 0);
    }

    #[test]
    fn naive_vs_restricted_on_autocorrelated_data() {
        // Two independent smooth (autocorrelated) series: a naive
        // element-wise permutation test finds spurious significance much
        // more often than the restricted rotation test. We verify the
        // restricted test's permutation distribution has heavier tails
        // (higher variance) than the naive one, which is the mechanism.
        let n = 200;
        let mut rng = SmallRng::seed_from_u64(11);
        let smooth = |rng: &mut SmallRng| -> Vec<f64> {
            let mut v = vec![0.0f64; n];
            for i in 1..n {
                v[i] = 0.97 * v[i - 1] + rng.gen_range(-1.0..1.0);
            }
            v
        };
        let a = smooth(&mut rng);
        let b = smooth(&mut rng);
        let corr = |x: &[f64], y: &[f64]| -> f64 {
            let mx = crate::descriptive::mean(x);
            let my = crate::descriptive::mean(y);
            let mut num = 0.0;
            let mut dx = 0.0;
            let mut dy = 0.0;
            for i in 0..x.len() {
                num += (x[i] - mx) * (y[i] - my);
                dx += (x[i] - mx).powi(2);
                dy += (y[i] - my).powi(2);
            }
            num / (dx.sqrt() * dy.sqrt())
        };
        let mut restricted = Vec::new();
        for s in 1..n {
            let rotated: Vec<f64> = (0..n).map(|i| a[(i + s) % n]).collect();
            restricted.push(corr(&rotated, &b));
        }
        let mut naive = Vec::new();
        let mut shuffled = a.clone();
        for _ in 0..199 {
            shuffled.shuffle(&mut rng);
            naive.push(corr(&shuffled, &b));
        }
        let var_restricted = crate::descriptive::variance(&restricted);
        let var_naive = crate::descriptive::variance(&naive);
        assert!(
            var_restricted > 2.0 * var_naive,
            "restricted null should be wider: {var_restricted} vs {var_naive}"
        );
    }
}

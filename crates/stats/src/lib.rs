//! # polygamy-stats — statistics substrate
//!
//! Three pieces serve the Data Polygamy framework (SIGMOD 2016):
//!
//! * [`descriptive`] — means, quantiles, IQR, z-normalisation: the numeric
//!   plumbing behind box-plot outlier thresholds (paper Section 3.3) and the
//!   baseline normalisations (Appendix D);
//! * [`kmeans`] — exact 1-D 2-means used to split persistence values into
//!   low/high clusters when computing feature thresholds (Section 3.3);
//! * [`permutation`] — *restricted* Monte Carlo permutation tests
//!   (Section 4): toroidal time rotations for 1-D functions and BFS-based
//!   graph toroidal shifts for irregular spatial domains, with p-values for
//!   lower/upper/two-sided alternatives;
//! * [`baselines`] — Pearson correlation, normalised mutual information and
//!   normalised dynamic time warping, the comparison techniques of
//!   Section 6.4 / Appendix D.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod descriptive;
pub mod kmeans;
pub mod permutation;

pub use baselines::{
    dtw_distance, dtw_score, mi_score, mi_score_binned, pcc_score, BaselineScores,
};
pub use descriptive::{iqr, mean, quantile, stddev, variance, z_normalize, Summary};
pub use kmeans::{two_means_1d, TwoMeans};
pub use permutation::{
    graph_toroidal_shift, p_value, spatiotemporal_shift, temporal_rotation, MonteCarlo, Tail,
};

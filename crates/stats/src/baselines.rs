//! Standard correlation baselines (paper Section 6.4 and Appendix D).
//!
//! Three established techniques the paper compares against:
//!
//! * **PCC** — Pearson's correlation coefficient, `cov(X,Y)/(σX σY)`;
//! * **MI** — mutual information normalised by `sqrt(H(X) H(Y))`;
//! * **DTW** — dynamic time warping with the paper's proposed normalisation
//!   `βDTW = 1 − DTW(X,Y) / (DTW(X,0) + DTW(0,Y))` over z-normalised series.
//!
//! All scores operate on paired series; indices where either value is
//! missing (NaN) are dropped first, mirroring how the paper's comparison
//! aggregates city-resolution time series.

use crate::descriptive::{mean, z_normalize};
use serde::{Deserialize, Serialize};

/// Drops pairs where either side is non-finite.
fn paired(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    debug_assert_eq!(x.len(), y.len(), "paired series must align");
    let mut xs = Vec::with_capacity(x.len());
    let mut ys = Vec::with_capacity(y.len());
    for (&a, &b) in x.iter().zip(y) {
        if a.is_finite() && b.is_finite() {
            xs.push(a);
            ys.push(b);
        }
    }
    (xs, ys)
}

/// Pearson's correlation coefficient in `[-1, 1]`; NaN when fewer than two
/// paired observations exist or either side is constant.
pub fn pcc_score(x: &[f64], y: &[f64]) -> f64 {
    let (xs, ys) = paired(x, y);
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(&xs);
    let my = mean(&ys);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (&a, &b) in xs.iter().zip(&ys) {
        num += (a - mx) * (b - my);
        dx += (a - mx) * (a - mx);
        dy += (b - my) * (b - my);
    }
    if dx == 0.0 || dy == 0.0 {
        return f64::NAN;
    }
    num / (dx.sqrt() * dy.sqrt())
}

/// Normalised mutual information in `[0, 1]` using `bins`-way equal-width
/// histograms: `I(X,Y) / sqrt(H(X) H(Y))`. NaN when undefined.
pub fn mi_score_binned(x: &[f64], y: &[f64], bins: usize) -> f64 {
    let (xs, ys) = paired(x, y);
    let n = xs.len();
    if n < 2 || bins < 2 {
        return f64::NAN;
    }
    let bin_index = |v: f64, min: f64, max: f64| -> usize {
        if max <= min {
            return 0;
        }
        (((v - min) / (max - min) * bins as f64) as usize).min(bins - 1)
    };
    let (xmin, xmax) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let (ymin, ymax) = ys
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let mut joint = vec![0u64; bins * bins];
    let mut px = vec![0u64; bins];
    let mut py = vec![0u64; bins];
    for (&a, &b) in xs.iter().zip(&ys) {
        let i = bin_index(a, xmin, xmax);
        let j = bin_index(b, ymin, ymax);
        joint[i * bins + j] += 1;
        px[i] += 1;
        py[j] += 1;
    }
    let nf = n as f64;
    let entropy = |counts: &[u64]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let hx = entropy(&px);
    let hy = entropy(&py);
    if hx <= 0.0 || hy <= 0.0 {
        return f64::NAN;
    }
    let mut mi = 0.0;
    for i in 0..bins {
        for j in 0..bins {
            let c = joint[i * bins + j];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / nf;
            let pi = px[i] as f64 / nf;
            let pj = py[j] as f64 / nf;
            mi += pxy * (pxy / (pi * pj)).ln();
        }
    }
    (mi / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// [`mi_score_binned`] with the Sturges-style default bin count
/// `ceil(log2(n)) + 1`.
pub fn mi_score(x: &[f64], y: &[f64]) -> f64 {
    let n = x
        .iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .count();
    if n < 2 {
        return f64::NAN;
    }
    let bins = ((n as f64).log2().ceil() as usize + 1).max(2);
    mi_score_binned(x, y, bins)
}

/// Raw dynamic time warping distance between two series with squared point
/// cost and an optional Sakoe–Chiba band of half-width `band` (None = full).
pub fn dtw_distance(x: &[f64], y: &[f64], band: Option<usize>) -> f64 {
    let (n, m) = (x.len(), y.len());
    if n == 0 || m == 0 {
        return f64::NAN;
    }
    // Band must cover the diagonal offset.
    let w = band.unwrap_or(n.max(m)).max(n.abs_diff(m));
    // Two-row DP.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let cost = (x[i - 1] - y[j - 1]).powi(2);
            let best = prev[j - 1].min(prev[j]).min(cur[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m].sqrt()
}

/// Normalised DTW score in `[0, 1]` (Appendix D):
/// `βDTW = 1 − DTW(X,Y) / (DTW(X,0) + DTW(0,Y))` over z-normalised series.
pub fn dtw_score(x: &[f64], y: &[f64]) -> f64 {
    let (mut xs, mut ys) = paired(x, y);
    if xs.len() < 2 {
        return f64::NAN;
    }
    z_normalize(&mut xs);
    z_normalize(&mut ys);
    let zeros_x = vec![0.0; xs.len()];
    let zeros_y = vec![0.0; ys.len()];
    let dxy = dtw_distance(&xs, &ys, None);
    let d0 = dtw_distance(&xs, &zeros_x, None) + dtw_distance(&zeros_y, &ys, None);
    if d0 <= 0.0 {
        return f64::NAN;
    }
    (1.0 - dxy / d0).clamp(0.0, 1.0)
}

/// All three baseline scores for one pair of series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineScores {
    /// Pearson correlation coefficient.
    pub pcc: f64,
    /// Normalised mutual information.
    pub mi: f64,
    /// Normalised DTW similarity.
    pub dtw: f64,
}

impl BaselineScores {
    /// Computes all three scores.
    pub fn of(x: &[f64], y: &[f64]) -> Self {
        Self {
            pcc: pcc_score(x, y),
            mi: mi_score(x, y),
            dtw: dtw_score(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcc_perfect_correlation() {
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pcc_score(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pcc_score(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pcc_constant_is_nan() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert!(pcc_score(&x, &y).is_nan());
    }

    #[test]
    fn pcc_skips_nan_pairs() {
        let x = [1.0, f64::NAN, 3.0, 4.0];
        let y = [2.0, 5.0, 6.0, 8.0];
        let filtered_x = [1.0, 3.0, 4.0];
        let filtered_y = [2.0, 6.0, 8.0];
        assert_eq!(pcc_score(&x, &y), pcc_score(&filtered_x, &filtered_y));
    }

    #[test]
    fn mi_detects_nonlinear_dependence() {
        // y = x^2 has near-zero PCC on symmetric x but high MI.
        let x: Vec<f64> = (-100..=100).map(|i| f64::from(i) / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let pcc = pcc_score(&x, &y).abs();
        let mi = mi_score(&x, &y);
        assert!(pcc < 0.1, "pcc should be near zero: {pcc}");
        assert!(mi > 0.5, "mi should be high: {mi}");
    }

    #[test]
    fn mi_independent_is_low() {
        // Deterministic pseudo-random independent-ish streams.
        let x: Vec<f64> = (0..500)
            .map(|i| ((i * 2_654_435_761u64) % 1000) as f64)
            .collect();
        let y: Vec<f64> = (0..500)
            .map(|i| ((i * 2_246_822_519u64 + 7) % 1000) as f64)
            .collect();
        let mi = mi_score(&x, &y);
        assert!(mi < 0.35, "independent streams should score low: {mi}");
    }

    #[test]
    fn dtw_distance_identical_is_zero() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&x, &x, None), 0.0);
    }

    #[test]
    fn dtw_alignment_beats_euclidean() {
        // A shifted copy aligns almost perfectly under DTW.
        let x: Vec<f64> = (0..60).map(|i| (f64::from(i) / 6.0).sin()).collect();
        let y: Vec<f64> = (0..60).map(|i| (f64::from(i + 3) / 6.0).sin()).collect();
        let euclid: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let dtw = dtw_distance(&x, &y, None);
        assert!(dtw < euclid / 2.0, "dtw {dtw} vs euclid {euclid}");
    }

    #[test]
    fn dtw_band_matches_full_for_wide_band() {
        let x: Vec<f64> = (0..40).map(|i| (f64::from(i) / 5.0).cos()).collect();
        let y: Vec<f64> = (0..40).map(|i| (f64::from(i) / 4.0).cos()).collect();
        let full = dtw_distance(&x, &y, None);
        let banded = dtw_distance(&x, &y, Some(40));
        assert!((full - banded).abs() < 1e-12);
    }

    #[test]
    fn dtw_score_range_and_similarity() {
        let x: Vec<f64> = (0..100).map(|i| (f64::from(i) / 10.0).sin()).collect();
        let same = dtw_score(&x, &x);
        assert!(same > 0.99, "identical series should score ~1: {same}");
        let anti: Vec<f64> = x.iter().map(|v| -v).collect();
        let s = dtw_score(&x, &anti);
        assert!((0.0..=1.0).contains(&s));
        assert!(s < same);
    }

    #[test]
    fn baseline_scores_struct() {
        let x: Vec<f64> = (0..64).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 3.0).collect();
        let b = BaselineScores::of(&x, &y);
        assert!(b.pcc > 0.99);
        assert!(b.mi > 0.5);
        assert!(b.dtw > 0.9);
    }
}

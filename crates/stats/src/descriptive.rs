//! Descriptive statistics over `f64` slices.
//!
//! NaN values are treated as missing and skipped by every function here;
//! a slice with no finite values yields `NaN` results rather than panicking,
//! so callers can propagate undefined summaries the way scalar fields do.

use serde::{Deserialize, Serialize};

/// Arithmetic mean over finite values.
pub fn mean(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            acc += x;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        acc / n as f64
    }
}

/// Population variance over finite values.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.is_nan() {
        return f64::NAN;
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            let d = x - m;
            acc += d * d;
            n += 1;
        }
    }
    acc / n as f64
}

/// Population standard deviation over finite values.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile with linear interpolation between order statistics
/// (`q` in `[0, 1]`). NaN values are skipped.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Inter-quartile range `Q3 - Q1`.
pub fn iqr(xs: &[f64]) -> f64 {
    quantile(xs, 0.75) - quantile(xs, 0.25)
}

/// Z-normalises a series in place; NaN entries are left untouched.
/// A constant series becomes all zeros.
pub fn z_normalize(xs: &mut [f64]) {
    let m = mean(xs);
    let s = stddev(xs);
    if m.is_nan() {
        return;
    }
    for x in xs.iter_mut() {
        if x.is_finite() {
            *x = if s > 0.0 { (*x - m) / s } else { 0.0 };
        }
    }
}

/// Five-number-style summary used by the box-plot threshold computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Count of finite values.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Inter-quartile range.
    pub iqr: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice (NaN-skipping).
    pub fn of(xs: &[f64]) -> Self {
        let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Self {
                n: 0,
                mean: f64::NAN,
                q1: f64::NAN,
                median: f64::NAN,
                q3: f64::NAN,
                iqr: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        v.sort_unstable_by(|a, b| a.total_cmp(b));
        let q = |q: f64| -> f64 {
            let pos = q * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                let frac = pos - lo as f64;
                v[lo] * (1.0 - frac) + v[hi] * frac
            }
        };
        let (q1, q3) = (q(0.25), q(0.75));
        Self {
            n: v.len(),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            q1,
            median: q(0.5),
            q3,
            iqr: q3 - q1,
            min: v[0],
            max: *v.last().expect("non-empty"),
        }
    }

    /// The standard box-plot lower outlier fence `Q1 - 1.5 * IQR`
    /// (the paper's extreme-feature threshold for minima).
    pub fn lower_fence(&self) -> f64 {
        self.q1 - 1.5 * self.iqr
    }

    /// The standard box-plot upper outlier fence `Q3 + 1.5 * IQR`
    /// (the paper's extreme-feature threshold for maxima).
    pub fn upper_fence(&self) -> f64 {
        self.q3 + 1.5 * self.iqr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_skips_nan() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(mean(&[f64::NAN]).is_nan());
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!((iqr(&xs) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_basic() {
        let mut xs = [1.0, 2.0, 3.0];
        z_normalize(&mut xs);
        assert!((xs[1]).abs() < 1e-12);
        assert!((xs[0] + xs[2]).abs() < 1e-12);
        let mut flat = [5.0, 5.0, 5.0];
        z_normalize(&mut flat);
        assert_eq!(flat, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn summary_fences() {
        let xs: Vec<f64> = (1..=11).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 11);
        assert_eq!(s.median, 6.0);
        assert_eq!(s.q1, 3.5);
        assert_eq!(s.q3, 8.5);
        assert_eq!(s.iqr, 5.0);
        assert_eq!(s.lower_fence(), 3.5 - 7.5);
        assert_eq!(s.upper_fence(), 8.5 + 7.5);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[f64::NAN]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }
}

//! Exact 1-D 2-means clustering.
//!
//! The paper (Section 3.3) splits persistence values into a low- and a
//! high-persistence cluster with k-means, `k = 2`. In one dimension the
//! optimal 2-means partition is a single split point over the sorted values,
//! so instead of Lloyd's iterations we evaluate every split with prefix sums
//! and return the global optimum — deterministic and O(n log n).

use serde::{Deserialize, Serialize};

/// Result of an exact 1-D 2-means clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoMeans {
    /// Largest value assigned to the low cluster.
    pub low_max: f64,
    /// Smallest value assigned to the high cluster.
    pub high_min: f64,
    /// Mean of the low cluster.
    pub low_mean: f64,
    /// Mean of the high cluster.
    pub high_mean: f64,
    /// Number of values in the low cluster.
    pub low_count: usize,
    /// Number of values in the high cluster.
    pub high_count: usize,
}

impl TwoMeans {
    /// True if a value belongs to the high cluster.
    pub fn is_high(&self, v: f64) -> bool {
        v >= self.high_min
    }
}

/// Clusters `values` into two groups minimising the within-cluster sum of
/// squares. Returns `None` when fewer than two finite values exist or all
/// values are identical (no meaningful split).
pub fn two_means_1d(values: &[f64]) -> Option<TwoMeans> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.len() < 2 {
        return None;
    }
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if v[0] == v[n - 1] {
        return None;
    }
    // Prefix sums for O(1) cluster cost: cost(range) = sum(x^2) - sum(x)^2/k.
    let mut prefix = vec![0.0f64; n + 1];
    let mut prefix2 = vec![0.0f64; n + 1];
    for (i, &x) in v.iter().enumerate() {
        prefix[i + 1] = prefix[i] + x;
        prefix2[i + 1] = prefix2[i] + x * x;
    }
    let cost = |lo: usize, hi: usize| -> f64 {
        // Cost of cluster covering sorted indices [lo, hi).
        let k = (hi - lo) as f64;
        let s = prefix[hi] - prefix[lo];
        let s2 = prefix2[hi] - prefix2[lo];
        s2 - s * s / k
    };
    let mut best_split = 1;
    let mut best_cost = f64::INFINITY;
    for split in 1..n {
        let c = cost(0, split) + cost(split, n);
        if c < best_cost {
            best_cost = c;
            best_split = split;
        }
    }
    Some(TwoMeans {
        low_max: v[best_split - 1],
        high_min: v[best_split],
        low_mean: (prefix[best_split]) / best_split as f64,
        high_mean: (prefix[n] - prefix[best_split]) / (n - best_split) as f64,
        low_count: best_split,
        high_count: n - best_split,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_obvious_clusters() {
        let values = [0.1, 0.2, 0.15, 10.0, 11.0, 9.5];
        let tm = two_means_1d(&values).unwrap();
        assert_eq!(tm.low_count, 3);
        assert_eq!(tm.high_count, 3);
        assert!(tm.low_max < 1.0);
        assert!(tm.high_min > 5.0);
        assert!(tm.is_high(9.5));
        assert!(!tm.is_high(0.2));
    }

    #[test]
    fn single_outlier() {
        let values = [1.0, 1.1, 0.9, 1.05, 100.0];
        let tm = two_means_1d(&values).unwrap();
        assert_eq!(tm.high_count, 1);
        assert_eq!(tm.high_min, 100.0);
    }

    #[test]
    fn degenerate_cases() {
        assert!(two_means_1d(&[]).is_none());
        assert!(two_means_1d(&[1.0]).is_none());
        assert!(two_means_1d(&[2.0, 2.0, 2.0]).is_none());
        assert!(two_means_1d(&[f64::NAN, 1.0]).is_none());
    }

    #[test]
    fn two_points() {
        let tm = two_means_1d(&[1.0, 5.0]).unwrap();
        assert_eq!(tm.low_max, 1.0);
        assert_eq!(tm.high_min, 5.0);
        assert_eq!(tm.low_mean, 1.0);
        assert_eq!(tm.high_mean, 5.0);
    }

    #[test]
    fn optimality_against_brute_force() {
        // Exhaustively compare against brute-force split search on small
        // random-ish inputs.
        let cases: Vec<Vec<f64>> = vec![
            vec![3.0, 1.0, 4.0, 1.5, 9.2, 2.6, 5.3],
            vec![0.0, 0.5, 1.0, 1.5, 2.0, 8.0],
            vec![-5.0, -4.0, 3.0, 3.5, 4.0],
        ];
        for case in cases {
            let tm = two_means_1d(&case).unwrap();
            let mut sorted = case.clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let wcss = |lo: &[f64], hi: &[f64]| -> f64 {
                let m1 = lo.iter().sum::<f64>() / lo.len() as f64;
                let m2 = hi.iter().sum::<f64>() / hi.len() as f64;
                lo.iter().map(|x| (x - m1).powi(2)).sum::<f64>()
                    + hi.iter().map(|x| (x - m2).powi(2)).sum::<f64>()
            };
            let best = (1..sorted.len())
                .map(|s| wcss(&sorted[..s], &sorted[s..]))
                .fold(f64::INFINITY, f64::min);
            let ours = wcss(&sorted[..tm.low_count], &sorted[tm.low_count..]);
            assert!((ours - best).abs() < 1e-9, "suboptimal split for {case:?}");
        }
    }
}

//! Drift-rule tests: miniature code+spec workspaces, aligned and then
//! deliberately skewed in each direction. Every rule must be quiet on
//! the aligned pair and must name the exact divergence otherwise —
//! including when the spec document is missing outright.

use polygamy_lint::scan::SourceFile;
use polygamy_lint::{lint, Workspace};

fn ws(sources: &[(&str, &str)], docs: &[(&str, &str)]) -> Workspace {
    let mk = |(p, t): &(&str, &str)| SourceFile {
        path: (*p).to_string(),
        text: (*t).to_string(),
    };
    Workspace::from_sources(
        sources.iter().map(mk).collect(),
        docs.iter().map(mk).collect(),
    )
}

/// The (path, message) pairs of one rule's findings.
fn findings_of(ws: &Workspace, rule: &str) -> Vec<(String, String)> {
    lint(ws)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path, f.message))
        .collect()
}

// ---------------------------------------------------------------- wire tags

const PROTOCOL_RS: &str = "crates/serve/src/protocol.rs";
const SERVING_MD: &str = "docs/serving.md";

const PROTOCOL_OK: &str = "\
pub enum FrameTag {\n    Hello = b'H',\n    Query = b'Q',\n}\n";

const SERVING_OK: &str = "\
## 3. Frame tags\n\n\
| tag | byte | meaning |\n\
| --- | --- | --- |\n\
| `H` hello | 0x48 | handshake |\n\
| `Q` query | 0x51 | query batch |\n";

#[test]
fn wire_tags_aligned_is_clean() {
    let w = ws(&[(PROTOCOL_RS, PROTOCOL_OK)], &[(SERVING_MD, SERVING_OK)]);
    assert_eq!(findings_of(&w, "wire-tag-drift"), vec![]);
}

#[test]
fn wire_tag_in_code_but_not_spec() {
    let code =
        "pub enum FrameTag {\n    Hello = b'H',\n    Query = b'Q',\n    Metrics = b'M',\n}\n";
    let w = ws(&[(PROTOCOL_RS, code)], &[(SERVING_MD, SERVING_OK)]);
    let got = findings_of(&w, "wire-tag-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, PROTOCOL_RS);
    assert!(got[0].1.contains("`M`"), "{}", got[0].1);
}

#[test]
fn wire_tag_in_spec_but_not_code() {
    let doc = format!("{SERVING_OK}| `X` extra | 0x58 | never implemented |\n");
    let w = ws(&[(PROTOCOL_RS, PROTOCOL_OK)], &[(SERVING_MD, &doc)]);
    let got = findings_of(&w, "wire-tag-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, SERVING_MD);
    assert!(got[0].1.contains("does not define"), "{}", got[0].1);
}

#[test]
fn wire_tag_byte_mismatch() {
    let doc = "\
| tag | byte | meaning |\n\
| --- | --- | --- |\n\
| `H` hello | 0x48 | handshake |\n\
| `Q` query | 0x52 | wrong byte |\n";
    let w = ws(&[(PROTOCOL_RS, PROTOCOL_OK)], &[(SERVING_MD, doc)]);
    let got = findings_of(&w, "wire-tag-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, SERVING_MD);
    assert!(got[0].1.contains("0x52"), "{}", got[0].1);
}

#[test]
fn wire_tags_without_spec_document() {
    let w = ws(&[(PROTOCOL_RS, PROTOCOL_OK)], &[]);
    let got = findings_of(&w, "wire-tag-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].1.contains("is missing"), "{}", got[0].1);
}

// ------------------------------------------------------------------ metrics

const OBS_LIB_RS: &str = "crates/obs/src/lib.rs";
const OBSERVABILITY_MD: &str = "docs/observability.md";

const OBS_OK: &str = "\
#![forbid(unsafe_code)]\n\
pub mod names {\n\
    pub const CORE_QUERIES: &str = \"core.queries\";\n\
    pub const SERVE_ERRORS_PREFIX: &str = \"serve.errors.\";\n\
}\n";

const OBS_DOC_OK: &str = "\
| metric | type | meaning |\n\
| --- | --- | --- |\n\
| `core.queries` | counter | queries planned |\n\
| `serve.errors.<kind>` | counter | per-kind errors |\n";

#[test]
fn metrics_aligned_is_clean() {
    // Also covers the `<kind>` placeholder: the family row matches the
    // trailing-dot prefix constant.
    let w = ws(&[(OBS_LIB_RS, OBS_OK)], &[(OBSERVABILITY_MD, OBS_DOC_OK)]);
    assert_eq!(findings_of(&w, "metric-drift"), vec![]);
}

#[test]
fn metric_in_code_but_not_catalogue() {
    let code = "\
#![forbid(unsafe_code)]\n\
pub mod names {\n\
    pub const CORE_QUERIES: &str = \"core.queries\";\n\
    pub const SERVE_ERRORS_PREFIX: &str = \"serve.errors.\";\n\
    pub const STORE_BYTES: &str = \"store.bytes\";\n\
}\n";
    let w = ws(&[(OBS_LIB_RS, code)], &[(OBSERVABILITY_MD, OBS_DOC_OK)]);
    let got = findings_of(&w, "metric-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, OBS_LIB_RS);
    assert!(got[0].1.contains("store.bytes"), "{}", got[0].1);
}

#[test]
fn metric_in_catalogue_but_not_code() {
    let doc = format!("{OBS_DOC_OK}| `serve.ghost` | gauge | dead dashboard panel |\n");
    let w = ws(&[(OBS_LIB_RS, OBS_OK)], &[(OBSERVABILITY_MD, &doc)]);
    let got = findings_of(&w, "metric-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, OBSERVABILITY_MD);
    assert!(got[0].1.contains("serve.ghost"), "{}", got[0].1);
}

#[test]
fn metrics_without_spec_document() {
    let w = ws(&[(OBS_LIB_RS, OBS_OK)], &[]);
    let got = findings_of(&w, "metric-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].1.contains("is missing"), "{}", got[0].1);
}

// ------------------------------------------------------------- PQL keywords

const PARSER_RS: &str = "crates/core/src/pql/parser.rs";
const PQL_MD: &str = "docs/pql.md";

const PARSER_OK: &str = "\
pub const KEYWORDS: [&str; 2] = [\"select\", \"when\"];\n\n\
pub fn is_keyword(w: &str) -> bool {\n\
    matches!(w, \"select\" | \"when\")\n\
}\n";

const PQL_DOC_OK: &str = "\
# PQL\n\n\
```ebnf\n\
query = \"select\" ident \"when\" predicate ;\n\
(* \"ancient\" was removed in v2 and must not count as a keyword *)\n\
```\n";

#[test]
fn pql_keywords_aligned_is_clean() {
    // Also covers EBNF comment stripping: the quoted word inside the
    // `(* … *)` comment is not a terminal.
    let w = ws(&[(PARSER_RS, PARSER_OK)], &[(PQL_MD, PQL_DOC_OK)]);
    assert_eq!(findings_of(&w, "pql-keyword-drift"), vec![]);
}

#[test]
fn stale_inventory_entry_without_a_match_arm() {
    let code = "\
pub const KEYWORDS: [&str; 3] = [\"select\", \"when\", \"legacy\"];\n\n\
pub fn is_keyword(w: &str) -> bool {\n\
    matches!(w, \"select\" | \"when\")\n\
}\n";
    // The doc lists `legacy` too, so the only divergence is freshness:
    // the inventory names a keyword no parser code consumes.
    let doc = "\
```ebnf\n\
query = \"select\" ident \"when\" predicate | \"legacy\" ;\n\
```\n";
    let w = ws(&[(PARSER_RS, code)], &[(PQL_MD, doc)]);
    let got = findings_of(&w, "pql-keyword-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, PARSER_RS);
    assert!(got[0].1.contains("no parser code matches"), "{}", got[0].1);
}

#[test]
fn keyword_in_code_but_not_grammar() {
    let doc = "```ebnf\nquery = \"select\" ident ;\n```\n";
    let w = ws(&[(PARSER_RS, PARSER_OK)], &[(PQL_MD, doc)]);
    let got = findings_of(&w, "pql-keyword-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, PARSER_RS);
    assert!(got[0].1.contains("`when`"), "{}", got[0].1);
}

#[test]
fn keyword_in_grammar_but_not_code() {
    let doc = "\
```ebnf\n\
query = \"select\" ident \"when\" predicate \"group\" field ;\n\
```\n";
    let w = ws(&[(PARSER_RS, PARSER_OK)], &[(PQL_MD, doc)]);
    let got = findings_of(&w, "pql-keyword-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, PQL_MD);
    assert!(got[0].1.contains("`group`"), "{}", got[0].1);
}

#[test]
fn parser_without_keyword_inventory() {
    let code = "pub fn is_keyword(w: &str) -> bool {\n    matches!(w, \"select\")\n}\n";
    let w = ws(&[(PARSER_RS, code)], &[(PQL_MD, PQL_DOC_OK)]);
    let got = findings_of(&w, "pql-keyword-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].1.contains("no `KEYWORDS` inventory"), "{}", got[0].1);
}

#[test]
fn pql_keywords_without_spec_document() {
    let w = ws(&[(PARSER_RS, PARSER_OK)], &[]);
    let got = findings_of(&w, "pql-keyword-drift");
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].1.contains("has no spec"), "{}", got[0].1);
}

//@ path: crates/fx/src/lib.rs
//~^ missing-forbid-unsafe
pub fn pure(x: u64) -> u64 {
    x.wrapping_mul(3)
}

//@ path: crates/fx/src/order.rs
pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ float-partial-cmp
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("scores are never NaN")) //~ float-partial-cmp
}

pub fn fine(xs: &mut [f64]) -> Option<std::cmp::Ordering> {
    // total_cmp is the sanctioned total order; a partial_cmp that
    // keeps its Option instead of unwrapping it is also fine.
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.first().and_then(|a| a.partial_cmp(&1.0))
}

//@ path: crates/fx/src/raw.rs

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads of one
    // byte; we read exactly that byte and nothing else.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } //~ undocumented-unsafe
}

// Safety talk without the marker does not count as documentation.
pub unsafe fn trust_me(p: *const u8) -> u8 { //~ undocumented-unsafe
    *p
}

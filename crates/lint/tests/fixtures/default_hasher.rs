//@ path: crates/fx/src/hashing.rs
use std::collections::hash_map::DefaultHasher; //~ default-hasher
use std::collections::hash_map::RandomState; //~ default-hasher
use std::hash::{Hash, Hasher};

pub fn seed_of(key: &str) -> u64 {
    let mut h = DefaultHasher::new(); //~ default-hasher
    key.hash(&mut h);
    h.finish()
}

pub fn negative_space() -> &'static str {
    // DefaultHasher named in a comment must not fire…
    "…nor RandomState inside a string literal"
}

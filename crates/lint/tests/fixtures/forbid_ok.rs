//@ path: crates/fx/src/lib.rs
#![forbid(unsafe_code)]

pub fn pure(x: u64) -> u64 {
    x.wrapping_mul(3)
}

//@ path: crates/fx/src/sync.rs
use std::sync::atomic::{AtomicBool, Ordering};

pub struct Flag(AtomicBool);

impl Flag {
    pub fn raise(&self) {
        // ordering: Release pairs with the Acquire load in `observed`
        // to publish writes made before the flip.
        self.0.store(true, Ordering::Release);
    }

    pub fn observed(&self) -> bool {
        self.0.load(Ordering::Acquire) //~ atomic-ordering
    }

    pub fn sampled(&self) -> bool {
        // Relaxed is the default contract and needs no comment.
        self.0.load(Ordering::Relaxed)
    }
}

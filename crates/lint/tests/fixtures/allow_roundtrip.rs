//@ path: crates/fx/src/allowed.rs
pub fn suppressed() -> u64 {
    // lint: allow(wall-clock, reason = "fixture: demonstrating a reasoned suppression")
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

pub fn reasonless() -> bool {
    // lint: allow(float-partial-cmp) //~ invalid-allow
    1.0_f64.partial_cmp(&2.0).unwrap() == std::cmp::Ordering::Less //~ float-partial-cmp
}

pub fn stale() {
    // lint: allow(default-hasher, reason = "nothing here hashes at all") //~ unused-allow
}

//@ path: crates/fx/src/clock.rs
use std::time::{Duration, Instant};

pub fn measure() -> Duration {
    let t0 = Instant::now(); //~ wall-clock
    t0.elapsed()
}

pub fn stamp_secs() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) { //~ wall-clock
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

pub fn fine(elapsed: Duration) -> bool {
    // Time handed in by an allowlisted caller is the sanctioned shape.
    elapsed.is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_read_clocks() {
        let _t0 = Instant::now();
    }
}

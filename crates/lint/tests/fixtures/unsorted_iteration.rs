//@ path: crates/core/src/pql/fx.rs
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn leaky(index: &HashMap<String, u32>, seen: HashSet<u64>) -> Vec<String> {
    let mut out: Vec<String> = index.keys().cloned().collect(); //~ unsorted-iteration
    for v in &seen { //~ unsorted-iteration
        let _ = v;
    }
    out.sort();
    out
}

pub fn fine(index: &HashMap<String, u32>, sorted: &BTreeMap<String, u32>) -> Option<u32> {
    // Lookups are order-free, and BTree iteration is sorted by key.
    let _ = sorted.keys().count();
    index.get("x").copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_are_exempt() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert_eq!(m.iter().count(), 0);
    }
}

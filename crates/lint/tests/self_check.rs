//! Self-check: the linter must run clean on its own source, and on the
//! whole workspace. The second test is the in-suite twin of the CI
//! `polygamy-lint --check` leg — a rule change that trips any shipped
//! file fails `cargo test` before it ever reaches CI.

use polygamy_lint::{lint, Workspace};
use std::path::Path;

fn render_all(ws: &Workspace) -> String {
    lint(ws)
        .iter()
        .map(|f| format!("{}:{}:{} [{}] {}", f.path, f.line, f.col, f.rule, f.message))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn the_linter_lints_itself_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = Workspace::load(root).expect("load crates/lint");
    assert!(
        ws.sources.iter().any(|s| s.file.path == "src/lib.rs"),
        "walker must see the crate's own sources"
    );
    let rendered = render_all(&ws);
    assert!(
        rendered.is_empty(),
        "polygamy-lint is not clean on itself:\n{rendered}"
    );
}

#[test]
fn the_whole_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let ws = Workspace::load(&root).expect("load workspace");
    assert!(
        ws.sources.len() > 100,
        "workspace walk looks truncated: {} sources",
        ws.sources.len()
    );
    assert!(
        ws.doc_at("docs/serving.md").is_some() && ws.doc_at("docs/pql.md").is_some(),
        "normative specs must be in the walk"
    );
    let rendered = render_all(&ws);
    assert!(
        rendered.is_empty(),
        "workspace has lint findings:\n{rendered}"
    );
}

//! Fixture-driven rule tests.
//!
//! Each file under `tests/fixtures/` is one self-contained lint case:
//!
//! * line 1 is a `//@ path: <virtual path>` header naming the path the
//!   file pretends to live at (rules key off paths — result-path
//!   scoping, allowlists, crate grouping);
//! * `//~ <rule>` at the end of a line expects that rule to fire on
//!   that line; a line holding only `//~^ <rule>` expects it on the
//!   line above;
//! * everything from `//~` onward is stripped before scanning, so the
//!   annotations themselves can never trip a rule.
//!
//! The harness lints each fixture as a single-file workspace and
//! requires the (line, rule) multiset of findings to equal the
//! annotations exactly — an extra finding fails as loudly as a missing
//! one, which is what keeps both the positive *and* negative halves of
//! every fixture honest.

use polygamy_lint::scan::SourceFile;
use polygamy_lint::{lint, rules, Workspace};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

struct Fixture {
    /// File name under `tests/fixtures/`, for failure messages.
    file: String,
    /// The virtual workspace path from the `//@ path:` header.
    vpath: String,
    /// Source with the header blanked and all annotations stripped,
    /// line numbering preserved.
    text: String,
    /// Expected findings as (1-based line, rule name).
    expected: Vec<(usize, String)>,
}

fn parse_fixture(file: &str, raw: &str) -> Fixture {
    let lines: Vec<&str> = raw.lines().collect();
    let vpath = lines
        .first()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .unwrap_or_else(|| panic!("{file}: line 1 must be a `//@ path: …` header"))
        .trim()
        .to_string();
    let mut expected = Vec::new();
    let mut out_lines = vec![String::new()];
    for (idx, line) in lines.iter().enumerate().skip(1) {
        let lineno = idx + 1;
        match line.find("//~") {
            Some(pos) => {
                let ann = &line[pos + 3..];
                let (delta, rest) = match ann.strip_prefix('^') {
                    Some(rest) => (1, rest),
                    None => (0, ann),
                };
                let rule = rest.trim();
                assert!(
                    !rule.is_empty(),
                    "{file}:{lineno}: `//~` annotation names no rule"
                );
                expected.push((lineno - delta, rule.to_string()));
                out_lines.push(line[..pos].trim_end().to_string());
            }
            None => out_lines.push((*line).to_string()),
        }
    }
    let mut text = out_lines.join("\n");
    text.push('\n');
    Fixture {
        file: file.to_string(),
        vpath,
        text,
        expected,
    }
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<_> = fs::read_dir(&dir)
        .expect("tests/fixtures must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    let fixtures: Vec<Fixture> = paths
        .iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            let raw = fs::read_to_string(p).expect("readable fixture");
            parse_fixture(&name, &raw)
        })
        .collect();
    assert!(!fixtures.is_empty(), "fixture corpus is empty");
    fixtures
}

#[test]
fn every_fixture_matches_its_annotations() {
    for fx in load_fixtures() {
        let ws = Workspace::from_sources(
            vec![SourceFile {
                path: fx.vpath.clone(),
                text: fx.text.clone(),
            }],
            vec![],
        );
        let mut actual: Vec<(usize, String)> = lint(&ws)
            .iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        let mut expected = fx.expected.clone();
        actual.sort();
        expected.sort();
        assert_eq!(
            actual, expected,
            "{}: findings diverge from the fixture's annotations",
            fx.file
        );
    }
}

#[test]
fn annotations_name_real_rules() {
    let mut known = rules::names();
    known.extend(["invalid-allow", "unused-allow"]);
    for fx in load_fixtures() {
        for (line, rule) in &fx.expected {
            assert!(
                known.contains(&rule.as_str()),
                "{}:{line}: annotation names unknown rule `{rule}`",
                fx.file
            );
        }
    }
}

#[test]
fn corpus_covers_every_file_scoped_rule() {
    // The drift rules need paired code+spec workspaces and are covered
    // in tests/drift.rs; every other rule — and both meta-rules — must
    // have at least one positive case in the fixture corpus, so adding
    // a rule without a fixture fails here.
    let drift = ["wire-tag-drift", "metric-drift", "pql-keyword-drift"];
    let mut required: Vec<&str> = rules::names()
        .into_iter()
        .filter(|r| !drift.contains(r))
        .collect();
    required.extend(["invalid-allow", "unused-allow"]);
    let covered: BTreeSet<String> = load_fixtures()
        .into_iter()
        .flat_map(|fx| fx.expected.into_iter().map(|(_, rule)| rule))
        .collect();
    for rule in required {
        assert!(covered.contains(rule), "no fixture exercises rule `{rule}`");
    }
}

//! polygamy-lint — project-specific static analysis for the Data
//! Polygamy workspace.
//!
//! `cargo build` proves the code compiles; the determinism matrix
//! proves today's binaries agree byte-for-byte. Neither stops the
//! *next* change from reintroducing a bug class this project has
//! already paid for once — an unstable hash seed, an undocumented
//! `unsafe`, a wire tag the spec never heard of. This crate pins those
//! invariants at the source level, as a third kind of check between
//! the compiler and the test suite.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies.** No rustc internals, no crates.io. The
//!    analyzer is a hand-rolled token scanner ([`scan`]) in the same
//!    style as the PQL lexer — it understands strings, comments and
//!    identifiers, and nothing more. Rules match token patterns, so a
//!    forbidden name inside a string literal or comment never fires.
//! 2. **Every finding is actionable.** A rule fires with a caret
//!    diagnostic ([`diag`]) naming the fix, or it does not exist. The
//!    escape hatch is a reasoned suppression
//!    (`// lint: allow(rule, reason = "…")`, [`suppress`]) — and
//!    reasons are mandatory, checked by the linter itself.
//! 3. **Specs are code.** The serving, observability and PQL documents
//!    in `docs/` are normative; [`rules::drift`] diffs them against the
//!    constants in the code in both directions, so documentation rot is
//!    a build failure, not a surprise.
//!
//! The binary (`polygamy-lint`) wires this into CI: `--check` exits
//! non-zero on any finding. See `docs/linting.md` for the rule
//! catalogue and `--explain <rule>` for any single rule's rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod rules;
pub mod scan;
pub mod suppress;

use diag::Finding;
use scan::{Scanned, SourceFile};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Everything the rules look at: scanned Rust sources plus the raw
/// normative documents. Paths are repo-relative with forward slashes;
/// fixtures build virtual workspaces by declaring whatever paths they
/// need.
pub struct Workspace {
    /// Every Rust source, scanned, sorted by path.
    pub sources: Vec<Scanned>,
    /// Every markdown document, raw, sorted by path.
    pub docs: Vec<SourceFile>,
}

/// Directory prefixes the walker never descends into: build output,
/// version control, the dependency shims (vendored stand-ins, not
/// project code), and the linter's own fixture corpus (which exists to
/// violate the rules).
const SKIP_PREFIXES: &[&str] = &[
    "target",
    ".git",
    "crates/shims",
    "crates/lint/tests/fixtures",
    // The same corpus when the root is `crates/lint` itself (the
    // self-check test lints the linter's own package directory).
    "tests/fixtures",
];

impl Workspace {
    /// Builds a workspace from in-memory files (the fixture path).
    pub fn from_sources(sources: Vec<SourceFile>, docs: Vec<SourceFile>) -> Self {
        let mut sources: Vec<Scanned> = sources.into_iter().map(Scanned::new).collect();
        sources.sort_by(|a, b| a.file.path.cmp(&b.file.path));
        let mut docs = docs;
        docs.sort_by(|a, b| a.path.cmp(&b.path));
        Self { sources, docs }
    }

    /// Walks `root`, scanning every `.rs` file and collecting every
    /// `.md` file, except under `SKIP_PREFIXES`. Files that are not
    /// valid UTF-8 are skipped (the scanner is byte-offset based but
    /// rules slice text).
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut sources = Vec::new();
        let mut docs = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
            entries.sort_by_key(|e| e.file_name());
            for entry in entries {
                let path = entry.path();
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if SKIP_PREFIXES
                    .iter()
                    .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                {
                    continue;
                }
                let ty = entry.file_type()?;
                if ty.is_dir() {
                    stack.push(path);
                } else if ty.is_file() {
                    let ext = path.extension().and_then(|e| e.to_str());
                    if !matches!(ext, Some("rs" | "md")) {
                        continue;
                    }
                    let Ok(text) = fs::read_to_string(&path) else {
                        continue;
                    };
                    let file = SourceFile { path: rel, text };
                    if ext == Some("rs") {
                        sources.push(Scanned::new(file));
                    } else {
                        docs.push(file);
                    }
                }
            }
        }
        sources.sort_by(|a, b| a.file.path.cmp(&b.file.path));
        docs.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Self { sources, docs })
    }

    /// The scanned source at exactly `path`, if present.
    pub fn source_at(&self, path: &str) -> Option<&Scanned> {
        self.sources.iter().find(|s| s.file.path == path)
    }

    /// The document at exactly `path`, if present.
    pub fn doc_at(&self, path: &str) -> Option<&SourceFile> {
        self.docs.iter().find(|d| d.path == path)
    }
}

/// Runs every rule over the workspace, applies the per-file allow
/// comments, and returns the surviving findings in render order
/// (grouped by path, top to bottom).
pub fn lint(ws: &Workspace) -> Vec<Finding> {
    let mut raw = Vec::new();
    for rule in rules::all() {
        rule.check(ws, &mut raw);
    }
    let known = rules::names();
    let mut by_path: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    for f in raw {
        // Keys borrow from the workspace, not the finding being moved.
        let key = ws
            .source_at(&f.path)
            .map(|s| s.file.path.as_str())
            .or_else(|| ws.doc_at(&f.path).map(|d| d.path.as_str()))
            .unwrap_or("");
        by_path.entry(key).or_default().push(f);
    }
    let mut out = Vec::new();
    // Every source file runs the allow pass — a file with allows but no
    // findings still owes unused-allow findings.
    for src in &ws.sources {
        let findings = by_path.remove(src.file.path.as_str()).unwrap_or_default();
        suppress::apply_allows(src, findings, &known, &mut out);
    }
    // Doc-anchored (and missing-file) findings pass through unsuppressed:
    // markdown has no allow comments.
    for (_, findings) in by_path {
        out.extend(findings);
    }
    out.sort_by_key(|f| f.sort_key());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            text: text.into(),
        }
    }

    #[test]
    fn unused_allow_fires_in_finding_free_files() {
        let ws = Workspace::from_sources(
            vec![rs(
                "crates/x/src/lib.rs",
                "#![forbid(unsafe_code)]\n// lint: allow(wall-clock, reason = \"obsolete\")\nfn f() {}\n",
            )],
            vec![],
        );
        let findings = lint(&ws);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-allow");
    }

    #[test]
    fn findings_come_out_sorted() {
        let ws = Workspace::from_sources(
            vec![
                rs(
                    "crates/b/src/lib.rs",
                    "#![forbid(unsafe_code)]\nuse std::collections::hash_map::DefaultHasher;\n",
                ),
                rs(
                    "crates/a/src/lib.rs",
                    "#![forbid(unsafe_code)]\nuse std::collections::hash_map::DefaultHasher;\n",
                ),
            ],
            vec![],
        );
        let findings = lint(&ws);
        let paths: Vec<&str> = findings.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        assert!(findings.iter().all(|f| f.rule == "default-hasher"));
    }
}

//! Rule family 1: determinism.
//!
//! The system's headline guarantee is byte-identical output across
//! worker counts, session modes and serving paths. The runtime
//! determinism matrix proves it holds *today*; these rules keep the
//! bug classes that have already been purged (PR 4's unstable
//! `DefaultHasher` seeds foremost) from being statically reintroduced.

use super::{is_test_path, path_in, Rule, RESULT_PATH, WALL_CLOCK_ALLOWED};
use crate::diag::Finding;
use crate::scan::{Scanned, TokenKind};
use crate::Workspace;
use std::collections::BTreeSet;

fn finding_at(
    src: &Scanned,
    offset: usize,
    width: usize,
    rule: &'static str,
    message: String,
    help: &str,
) -> Finding {
    let (line, col) = src.line_col(offset);
    Finding {
        rule,
        path: src.file.path.clone(),
        line,
        col,
        width,
        message,
        help: help.into(),
    }
}

/// Forbids `DefaultHasher` / `RandomState` anywhere in the workspace.
pub struct DefaultHasherRule;

impl Rule for DefaultHasherRule {
    fn name(&self) -> &'static str {
        "default-hasher"
    }
    fn summary(&self) -> &'static str {
        "forbid DefaultHasher/RandomState (hash output unstable across toolchains)"
    }
    fn explain(&self) -> &'static str {
        "std's DefaultHasher and RandomState are documented to change between Rust \
releases (and RandomState is seeded per-process). PR 4 removed exactly this bug: \
Monte Carlo permutation seeds derived from DefaultHasher flipped significance \
verdicts between toolchains. Derive stable values with the explicit FNV-1a \
hashers already in core/src/cache.rs and mapreduce/src/job.rs instead. This rule \
fires on every occurrence, tests included — a test that depends on an unstable \
hash is a flake waiting to happen."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for src in &ws.sources {
            for t in &src.tokens {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let name = src.text(t);
                if name == "DefaultHasher" || name == "RandomState" {
                    out.push(finding_at(
                        src,
                        t.start,
                        name.len(),
                        self.name(),
                        format!("`{name}` hashes are not stable across toolchains or processes"),
                        "use the pinned FNV-1a hasher (see core/src/cache.rs) for anything \
                         that can reach seeds, cache keys or output",
                    ));
                }
            }
        }
    }
}

/// Methods whose call on a hash container iterates it in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Flags iteration over `HashMap`/`HashSet` values in result-path files.
pub struct UnsortedIterationRule;

impl UnsortedIterationRule {
    /// Identifiers declared (or assigned) with a hash-container type in
    /// this file — the receiver set the iteration scan matches against.
    fn hash_idents(src: &Scanned) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        let toks = &src.tokens;
        for i in 0..toks.len() {
            let Some(name) = src.ident(i) else { continue };
            // `name: [&][mut] Hash{Map,Set}<…>` — let bindings, struct
            // fields and fn params alike. Exclude `::` path segments.
            if src.is_punct(i + 1, ':') && !src.is_punct(i + 2, ':') {
                let mut j = i + 2;
                while src.is_punct(j, '&')
                    || src.ident(j) == Some("mut")
                    || toks.get(j).is_some_and(|t| t.kind == TokenKind::Lifetime)
                {
                    j += 1;
                }
                if matches!(src.ident(j), Some("HashMap" | "HashSet")) {
                    set.insert(name.to_string());
                }
            }
            // `name = Hash{Map,Set}::…` — assignment from a constructor.
            if src.is_punct(i + 1, '=')
                && !src.is_punct(i + 2, '=')
                && matches!(src.ident(i + 2), Some("HashMap" | "HashSet"))
            {
                set.insert(name.to_string());
            }
        }
        set
    }
}

impl Rule for UnsortedIterationRule {
    fn name(&self) -> &'static str {
        "unsorted-iteration"
    }
    fn summary(&self) -> &'static str {
        "flag HashMap/HashSet iteration in result-path files (storage order leaks)"
    }
    fn explain(&self) -> &'static str {
        "HashMap/HashSet iteration order depends on the hash seed and insertion \
history. On the result path (core executor/relationship/pql, store pql_exec, \
serve protocol/coalesce) that order can reach the output bytes, breaking the \
byte-identity guarantee. Iterate a sorted copy (collect + sort, or a BTree \
container) instead. Lookups, inserts and membership tests are fine — only \
iteration is flagged. If an iteration is provably order-insensitive (e.g. it \
feeds a commutative fold), suppress with an allow comment saying why."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for src in &ws.sources {
            if !path_in(&src.file.path, RESULT_PATH) || is_test_path(&src.file.path) {
                continue;
            }
            let hashy = Self::hash_idents(src);
            if hashy.is_empty() {
                continue;
            }
            let toks = &src.tokens;
            for i in 0..toks.len() {
                if src.in_test_block(i) {
                    continue;
                }
                let Some(name) = src.ident(i) else { continue };
                // `x.iter()` and friends.
                if hashy.contains(name)
                    && src.is_punct(i + 1, '.')
                    && src.ident(i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                    && src.is_punct(i + 3, '(')
                {
                    let method = src.ident(i + 2).unwrap_or_default().to_string();
                    out.push(finding_at(
                        src,
                        toks[i].start,
                        name.len() + 1 + method.len(),
                        self.name(),
                        format!(
                            "`{name}.{method}()` iterates a hash container in storage order \
                             on the result path"
                        ),
                        "collect into a Vec and sort by a stable key, or use a BTreeMap/BTreeSet",
                    ));
                }
                // `for … in [&][mut] x {`.
                if name == "for" {
                    let limit = (i + 8).min(toks.len());
                    let Some(j) = (i + 1..limit).find(|&j| src.ident(j) == Some("in")) else {
                        continue;
                    };
                    let mut k = j + 1;
                    while src.is_punct(k, '&') || src.ident(k) == Some("mut") {
                        k += 1;
                    }
                    if let Some(target) = src.ident(k) {
                        if hashy.contains(target) && src.is_punct(k + 1, '{') {
                            out.push(finding_at(
                                src,
                                toks[k].start,
                                target.len(),
                                self.name(),
                                format!(
                                    "`for … in {target}` iterates a hash container in storage \
                                     order on the result path"
                                ),
                                "collect into a Vec and sort by a stable key, or use a \
                                 BTreeMap/BTreeSet",
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Forbids `partial_cmp(…).unwrap()` / `.expect(…)` — require `total_cmp`.
pub struct FloatPartialCmpRule;

impl Rule for FloatPartialCmpRule {
    fn name(&self) -> &'static str {
        "float-partial-cmp"
    }
    fn summary(&self) -> &'static str {
        "forbid partial_cmp().unwrap()/expect() on floats — use total_cmp"
    }
    fn explain(&self) -> &'static str {
        "partial_cmp on floats returns None for NaN, so the trailing unwrap/expect is \
a latent panic wired to data content — and sorting callbacks that panic can \
abort mid-sort. f64::total_cmp is total, panic-free, and gives one deterministic \
order for every input including NaN and signed zero (the result sort in \
core/src/relationship.rs already relies on it). Replace \
`a.partial_cmp(&b).unwrap()` with `a.total_cmp(&b)`; for tuples, compare fields \
explicitly with `.cmp()`/`.total_cmp()` chained via `.then()`."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for src in &ws.sources {
            if is_test_path(&src.file.path) {
                continue;
            }
            let toks = &src.tokens;
            for i in 0..toks.len() {
                if src.in_test_block(i) || src.ident(i) != Some("partial_cmp") {
                    continue;
                }
                if !src.is_punct(i + 1, '(') {
                    continue;
                }
                // Step over the balanced argument list.
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < toks.len() {
                    if src.is_punct(j, '(') {
                        depth += 1;
                    } else if src.is_punct(j, ')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                if src.is_punct(j + 1, '.') && matches!(src.ident(j + 2), Some("unwrap" | "expect"))
                {
                    out.push(finding_at(
                        src,
                        toks[i].start,
                        "partial_cmp".len(),
                        self.name(),
                        format!(
                            "`partial_cmp(…).{}()` panics on NaN and orders floats partially",
                            src.ident(j + 2).unwrap_or_default()
                        ),
                        "use f64::total_cmp (NaN-safe, total, deterministic)",
                    ));
                }
            }
        }
    }
}

/// Restricts wall-clock reads to the allowlisted timing/obs modules.
pub struct WallClockRule;

impl Rule for WallClockRule {
    fn name(&self) -> &'static str {
        "wall-clock"
    }
    fn summary(&self) -> &'static str {
        "restrict Instant::now/SystemTime to allowlisted timing/obs modules"
    }
    fn explain(&self) -> &'static str {
        "Query evaluation is a pure function of (index bytes, clause, seeds); a clock \
read anywhere else is either dead weight or a determinism leak in the making. \
Instant::now and SystemTime are allowed only in the modules that measure or \
enforce time by design: crates/bench, crates/obs, the daemon's timeout/drain \
machinery (serve server/client), the executor and framework stage timers, and \
the mapreduce job metrics. Code elsewhere that genuinely needs a timestamp \
should take it as a parameter from an allowlisted caller, or carry an allow \
comment explaining why the read cannot steer results."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for src in &ws.sources {
            let path = &src.file.path;
            if path_in(path, WALL_CLOCK_ALLOWED) || is_test_path(path) {
                continue;
            }
            let toks = &src.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if src.in_test_block(i) {
                    continue;
                }
                match src.ident(i) {
                    Some("Instant")
                        if src.is_punct(i + 1, ':')
                            && src.is_punct(i + 2, ':')
                            && src.ident(i + 3) == Some("now") =>
                    {
                        out.push(finding_at(
                            src,
                            tok.start,
                            "Instant::now".len(),
                            self.name(),
                            "`Instant::now()` outside the timing/obs allowlist".into(),
                            "move the measurement into an allowlisted module, or pass the \
                             timestamp in from one",
                        ));
                    }
                    Some("SystemTime") => {
                        out.push(finding_at(
                            src,
                            tok.start,
                            "SystemTime".len(),
                            self.name(),
                            "`SystemTime` outside the timing/obs allowlist".into(),
                            "move the measurement into an allowlisted module, or pass the \
                             timestamp in from one",
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}

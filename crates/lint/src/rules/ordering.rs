//! Rule: atomic memory orderings must be Relaxed or documented.
//!
//! `crates/obs` is the workspace's one designed concurrency substrate —
//! its module docs state the Relaxed-only contract for every counter
//! and gauge. Outside it, an atomic with a stronger ordering is either
//! load-bearing synchronisation (then its contract deserves a sentence)
//! or cargo-culted `SeqCst` (then it should be Relaxed). Either way,
//! silence is the one wrong answer.

use super::{is_test_path, path_in, Rule, ORDERING_EXEMPT};
use crate::diag::Finding;
use crate::Workspace;

/// The non-Relaxed orderings of `std::sync::atomic::Ordering`. (The
/// name set is disjoint from `std::cmp::Ordering`'s variants, so a
/// token match cannot confuse the two.)
const STRONG_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

/// How many lines above the use an `// ordering:` comment may end.
const ORDERING_WINDOW: usize = 3;

/// Flags undocumented non-Relaxed atomic orderings outside `crates/obs`.
pub struct AtomicOrderingRule;

impl Rule for AtomicOrderingRule {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }
    fn summary(&self) -> &'static str {
        "non-Relaxed atomic orderings outside obs need an `// ordering:` comment"
    }
    fn explain(&self) -> &'static str {
        "The obs crate's metrics are Relaxed by documented contract (statistical \
counters, no happens-before implied — see crates/obs/src/metrics.rs). Outside \
obs, any Acquire/Release/AcqRel/SeqCst use must carry an `// ordering:` comment \
within 3 lines stating what the ordering synchronises (e.g. the store's sticky \
checksum verdicts publish the verified bytes via Release/Acquire). An \
undocumented strong ordering is unreviewable: nobody can weaken it safely, and \
nobody can trust it either."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for src in &ws.sources {
            let path = &src.file.path;
            if path_in(path, ORDERING_EXEMPT) || is_test_path(path) {
                continue;
            }
            let toks = &src.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if src.in_test_block(i) || src.ident(i) != Some("Ordering") {
                    continue;
                }
                if !(src.is_punct(i + 1, ':') && src.is_punct(i + 2, ':')) {
                    continue;
                }
                let Some(variant) = src.ident(i + 3) else {
                    continue;
                };
                if !STRONG_ORDERINGS.contains(&variant) {
                    continue;
                }
                let (line, col) = src.line_col(tok.start);
                if src.comment_near(line, ORDERING_WINDOW, "ordering:") {
                    continue;
                }
                out.push(Finding {
                    rule: self.name(),
                    path: path.clone(),
                    line,
                    col,
                    width: "Ordering::".len() + variant.len(),
                    message: format!(
                        "`Ordering::{variant}` without an `// ordering:` contract comment"
                    ),
                    help: "document what this ordering synchronises in an `// ordering:` \
                           comment above, or relax it to Ordering::Relaxed"
                        .into(),
                });
            }
        }
    }
}

//! The rule engine: every invariant the linter enforces, as one trait.
//!
//! Three families (see `docs/linting.md` for the full catalogue with
//! rationale):
//!
//! * **determinism** — [`determinism::DefaultHasherRule`],
//!   [`determinism::UnsortedIterationRule`],
//!   [`determinism::FloatPartialCmpRule`], [`determinism::WallClockRule`]:
//!   the byte-identical-output guarantee, pinned at the source level.
//! * **unsafe hygiene** — [`unsafe_hygiene::UndocumentedUnsafeRule`],
//!   [`unsafe_hygiene::MissingForbidUnsafeRule`],
//!   [`ordering::AtomicOrderingRule`]: every `unsafe` carries a
//!   `// SAFETY:` argument, crates without unsafe forbid it outright,
//!   and non-Relaxed atomic orderings outside `crates/obs` document
//!   their contract.
//! * **spec/code drift** — [`drift::WireTagDriftRule`],
//!   [`drift::MetricDriftRule`], [`drift::PqlKeywordDriftRule`]: the
//!   normative tables in `docs/` and the constants in the code are
//!   diffed in both directions.

use crate::diag::Finding;
use crate::Workspace;

pub mod determinism;
pub mod drift;
pub mod ordering;
pub mod unsafe_hygiene;

/// One lint rule: a name, catalogue prose, and a check pass.
pub trait Rule {
    /// Kebab-case rule name (what `allow(…)` comments reference).
    fn name(&self) -> &'static str;
    /// One-line summary for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Long-form rationale for `--explain <rule>`.
    fn explain(&self) -> &'static str;
    /// Scans the workspace, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every rule, in catalogue order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::DefaultHasherRule),
        Box::new(determinism::UnsortedIterationRule),
        Box::new(determinism::FloatPartialCmpRule),
        Box::new(determinism::WallClockRule),
        Box::new(unsafe_hygiene::UndocumentedUnsafeRule),
        Box::new(unsafe_hygiene::MissingForbidUnsafeRule),
        Box::new(ordering::AtomicOrderingRule),
        Box::new(drift::WireTagDriftRule),
        Box::new(drift::MetricDriftRule),
        Box::new(drift::PqlKeywordDriftRule),
    ]
}

/// The names of [`all`] rules (the valid targets of an allow comment).
pub fn names() -> Vec<&'static str> {
    all().iter().map(|r| r.name()).collect()
}

/// Files on the **result path**: everything between query admission and
/// the canonical output bytes. Iterating a `HashMap`/`HashSet` here in
/// storage order could leak hash-seed nondeterminism straight into
/// served responses, so the `unsorted-iteration` rule watches exactly
/// these prefixes.
pub const RESULT_PATH: &[&str] = &[
    "crates/core/src/executor.rs",
    "crates/core/src/relationship.rs",
    "crates/core/src/pql/",
    "crates/store/src/pql_exec.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/coalesce.rs",
];

/// Modules allowed to read wall clocks (`Instant::now` / `SystemTime`):
/// benchmarking, observability, and the daemon's timeout machinery.
/// Everything else computes pure functions of its input and must not
/// observe time — the determinism matrix proves clock reads never steer
/// results, and this list keeps new ones from creeping in elsewhere.
pub const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/bench/",
    "crates/obs/",
    "crates/serve/src/server.rs",
    "crates/serve/src/client.rs",
    "crates/core/src/executor.rs",
    "crates/core/src/framework.rs",
    "crates/mapreduce/src/job.rs",
];

/// Crates exempt from the `atomic-ordering` justification requirement:
/// `crates/obs` is the one place whose whole module contract documents
/// its (Relaxed) memory-ordering discipline.
pub const ORDERING_EXEMPT: &[&str] = &["crates/obs/"];

/// True when `path` falls under any prefix in `list`.
pub(crate) fn path_in(path: &str, list: &[&str]) -> bool {
    list.iter().any(|p| path.starts_with(p))
}

/// True for integration-test and bench trees, which determinism rules
/// exempt (a test may read the clock; the product may not).
pub(crate) fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

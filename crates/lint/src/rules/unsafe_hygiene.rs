//! Rule family 2: unsafe hygiene.
//!
//! The workspace contains exactly one unsafe region — the opt-in mmap
//! backend in `crates/store/src/source.rs`. These rules keep it that
//! way: every `unsafe` must argue its soundness in a `// SAFETY:`
//! comment, and a crate with no unsafe at all must say so with
//! `#![forbid(unsafe_code)]` so the next unsafe block is a compile
//! error, not a review discussion.

use super::Rule;
use crate::diag::Finding;
use crate::scan::Scanned;
use crate::Workspace;
use std::collections::BTreeMap;

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// end and still count as documenting it.
const SAFETY_WINDOW: usize = 3;

/// Every `unsafe` block/fn/impl must carry a nearby `// SAFETY:` comment.
pub struct UndocumentedUnsafeRule;

impl Rule for UndocumentedUnsafeRule {
    fn name(&self) -> &'static str {
        "undocumented-unsafe"
    }
    fn summary(&self) -> &'static str {
        "every `unsafe` must have a `// SAFETY:` comment within 3 lines above"
    }
    fn explain(&self) -> &'static str {
        "An unsafe block is a proof obligation discharged by the author and re-checked \
by every future reader; the `// SAFETY:` comment is where that proof lives. The \
rule accepts a comment containing `SAFETY:` on the same line as the `unsafe` \
token or ending within the 3 lines above it (attributes in between are fine). \
It applies everywhere, tests included — test unsafety needs the same argument."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for src in &ws.sources {
            for t in &src.tokens {
                if src.text(t) != "unsafe" {
                    continue;
                }
                let (line, col) = src.line_col(t.start);
                if src.comment_near(line, SAFETY_WINDOW, "SAFETY:") {
                    continue;
                }
                out.push(Finding {
                    rule: self.name(),
                    path: src.file.path.clone(),
                    line,
                    col,
                    width: "unsafe".len(),
                    message: "`unsafe` without a `// SAFETY:` comment".into(),
                    help: "state the soundness argument in a `// SAFETY:` comment directly \
                           above"
                        .into(),
                });
            }
        }
    }
}

/// Crates containing no unsafe code must declare `#![forbid(unsafe_code)]`.
pub struct MissingForbidUnsafeRule;

impl MissingForbidUnsafeRule {
    /// Groups a repo-relative path into its crate: `crates/<name>/…` or
    /// the root facade package (src/, tests/, examples/, benches/).
    fn crate_root(path: &str) -> Option<String> {
        if let Some(rest) = path.strip_prefix("crates/") {
            let name = rest.split('/').next()?;
            return Some(format!("crates/{name}"));
        }
        if ["src/", "tests/", "examples/", "benches/"]
            .iter()
            .any(|p| path.starts_with(p))
        {
            return Some(String::new());
        }
        None
    }

    /// True when the token stream contains `#![forbid(unsafe_code)]`.
    fn has_forbid(src: &Scanned) -> bool {
        let t = |i: usize| src.tokens.get(i).map(|t| src.text(t));
        (0..src.tokens.len()).any(|i| {
            t(i) == Some("#")
                && t(i + 1) == Some("!")
                && t(i + 2) == Some("[")
                && t(i + 3) == Some("forbid")
                && t(i + 4) == Some("(")
                && t(i + 5) == Some("unsafe_code")
                && t(i + 6) == Some(")")
                && t(i + 7) == Some("]")
        })
    }
}

impl Rule for MissingForbidUnsafeRule {
    fn name(&self) -> &'static str {
        "missing-forbid-unsafe"
    }
    fn summary(&self) -> &'static str {
        "crates with zero unsafe must declare #![forbid(unsafe_code)]"
    }
    fn explain(&self) -> &'static str {
        "A crate that contains no unsafe code should make that a compiler-enforced \
invariant: with #![forbid(unsafe_code)] in lib.rs, the next unsafe block fails \
to build instead of slipping through review. The rule groups files by crate, \
checks the whole crate (bins, tests, examples included) for `unsafe` tokens, \
and requires the attribute in lib.rs when none are found. Crates that do use \
unsafe (today: polygamy_store's mmap backend) are exempt — their obligation is \
undocumented-unsafe instead."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let mut groups: BTreeMap<String, Vec<&Scanned>> = BTreeMap::new();
        for src in &ws.sources {
            if let Some(key) = Self::crate_root(&src.file.path) {
                groups.entry(key).or_default().push(src);
            }
        }
        for (key, files) in groups {
            let any_unsafe = files
                .iter()
                .any(|s| s.tokens.iter().any(|t| s.text(t) == "unsafe"));
            if any_unsafe {
                continue;
            }
            let lib_path = if key.is_empty() {
                "src/lib.rs".to_string()
            } else {
                format!("{key}/src/lib.rs")
            };
            let Some(lib) = files.iter().find(|s| s.file.path == lib_path) else {
                continue;
            };
            if !Self::has_forbid(lib) {
                out.push(Finding {
                    rule: self.name(),
                    path: lib.file.path.clone(),
                    line: 1,
                    col: 1,
                    width: 1,
                    message: format!(
                        "crate `{}` contains no unsafe code but does not forbid it",
                        if key.is_empty() { "<root>" } else { &key }
                    ),
                    help: "add `#![forbid(unsafe_code)]` to the crate root".into(),
                });
            }
        }
    }
}

//! Rule family 3: spec/code drift.
//!
//! Three documents in `docs/` are *normative*: the serving spec's frame
//! tag table, the observability spec's metric catalogue, and the PQL
//! spec's grammar. Each has a single source-of-truth counterpart in
//! code (`FrameTag`, `polygamy_obs::names`, the parser's `KEYWORDS`
//! inventory). These rules diff the two **in both directions** — an
//! entry in the doc with no counterpart in code is as much a finding as
//! the reverse — so neither side can quietly move on without the other.

use super::Rule;
use crate::diag::Finding;
use crate::scan::{Scanned, SourceFile, Token, TokenKind};
use crate::Workspace;
use std::collections::BTreeMap;

/// The serving spec's frame-tag table, diffed against `FrameTag`.
const PROTOCOL_RS: &str = "crates/serve/src/protocol.rs";
/// The spec side of [`WireTagDriftRule`].
const SERVING_MD: &str = "docs/serving.md";
/// The code side of [`MetricDriftRule`].
const OBS_LIB_RS: &str = "crates/obs/src/lib.rs";
/// The spec side of [`MetricDriftRule`].
const OBSERVABILITY_MD: &str = "docs/observability.md";
/// The code side of [`PqlKeywordDriftRule`].
const PARSER_RS: &str = "crates/core/src/pql/parser.rs";
/// The spec side of [`PqlKeywordDriftRule`].
const PQL_MD: &str = "docs/pql.md";

/// A string literal's value: the token text without its quotes.
fn str_value<'a>(src: &'a Scanned, t: &Token) -> &'a str {
    src.text(t).trim_start_matches('b').trim_matches('"')
}

/// (1-based line, col) of a byte offset in a plain (un-scanned) doc.
fn doc_line_col(doc: &SourceFile, offset: usize) -> (usize, usize) {
    let before = &doc.text[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = offset - before.rfind('\n').map_or(0, |i| i + 1) + 1;
    (line, col)
}

fn doc_finding(
    doc: &SourceFile,
    offset: usize,
    width: usize,
    rule: &'static str,
    message: String,
    help: &str,
) -> Finding {
    let (line, col) = doc_line_col(doc, offset);
    Finding {
        rule,
        path: doc.path.clone(),
        line,
        col,
        width,
        message,
        help: help.into(),
    }
}

fn code_finding(
    src: &Scanned,
    offset: usize,
    width: usize,
    rule: &'static str,
    message: String,
    help: &str,
) -> Finding {
    let (line, col) = src.line_col(offset);
    Finding {
        rule,
        path: src.file.path.clone(),
        line,
        col,
        width,
        message,
        help: help.into(),
    }
}

/// Splits a markdown table row into trimmed cells (empty edges dropped).
fn table_cells(line: &str) -> Option<Vec<&str>> {
    let line = line.trim();
    if !line.starts_with('|') {
        return None;
    }
    Some(
        line.trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect::<Vec<_>>(),
    )
}

/// The content of the first `` `backticked` `` span in a cell.
fn backticked(cell: &str) -> Option<&str> {
    let rest = cell.strip_prefix('`')?;
    let end = rest.find('`')?;
    Some(&rest[..end])
}

/// §3 of `docs/serving.md` vs the `FrameTag` enum: every tag letter and
/// byte value must agree, in both directions.
pub struct WireTagDriftRule;

impl WireTagDriftRule {
    /// Parses `Variant = b'X'` discriminants out of `enum FrameTag { … }`.
    fn code_tags(src: &Scanned) -> Vec<(String, u8, usize)> {
        let mut tags = Vec::new();
        let toks = &src.tokens;
        let Some(start) = (0..toks.len())
            .find(|&i| src.ident(i) == Some("enum") && src.ident(i + 1) == Some("FrameTag"))
        else {
            return tags;
        };
        let Some(open) = (start..toks.len()).find(|&i| src.is_punct(i, '{')) else {
            return tags;
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < toks.len() {
            if src.is_punct(i, '{') {
                depth += 1;
            } else if src.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if let Some(variant) = src.ident(i) {
                    if src.is_punct(i + 1, '=')
                        && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Char)
                    {
                        let lit = src.text(&toks[i + 2]);
                        // `b'H'` — the tag byte is the third byte.
                        if let Some(&byte) = lit.as_bytes().get(2) {
                            if lit.starts_with("b'") {
                                tags.push((variant.to_string(), byte, toks[i].start));
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        tags
    }

    /// Parses `| \`H\` hello | 0x48 | … |` rows out of the spec.
    fn doc_tags(doc: &SourceFile) -> Vec<(u8, u8, usize)> {
        let mut tags = Vec::new();
        let mut offset = 0usize;
        for line in doc.text.split_inclusive('\n') {
            let cells = table_cells(line);
            if let Some(cells) = cells {
                if cells.len() >= 2 {
                    let tag = backticked(cells[0])
                        .filter(|t| t.len() == 1)
                        .map(|t| t.as_bytes()[0]);
                    let byte = cells[1]
                        .strip_prefix("0x")
                        .and_then(|h| u8::from_str_radix(h, 16).ok());
                    if let (Some(tag), Some(byte)) = (tag, byte) {
                        tags.push((tag, byte, offset));
                    }
                }
            }
            offset += line.len();
        }
        tags
    }
}

impl Rule for WireTagDriftRule {
    fn name(&self) -> &'static str {
        "wire-tag-drift"
    }
    fn summary(&self) -> &'static str {
        "docs/serving.md §3 tag table must match the FrameTag enum exactly"
    }
    fn explain(&self) -> &'static str {
        "docs/serving.md is the normative wire spec: independent clients are written \
against its §3 tag table, not against protocol.rs. The rule parses the \
`Variant = b'X'` discriminants out of `enum FrameTag` and the `| `X` name | \
0xNN |` rows out of the spec and requires the two sets — letters and byte \
values both — to be identical. A tag added in code but not the spec breaks \
every third-party client silently; a tag documented but unimplemented breaks \
them loudly. Both directions are findings."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(src) = ws.source_at(PROTOCOL_RS) else {
            return;
        };
        let code = Self::code_tags(src);
        if code.is_empty() {
            return;
        }
        let Some(doc) = ws.doc_at(SERVING_MD) else {
            out.push(code_finding(
                src,
                0,
                1,
                self.name(),
                format!("`FrameTag` has no spec: `{SERVING_MD}` is missing"),
                "restore the serving spec with its §3 frame tag table",
            ));
            return;
        };
        let doc_tags = Self::doc_tags(doc);
        for (variant, byte, offset) in &code {
            if !doc_tags.iter().any(|(t, _, _)| t == byte) {
                out.push(code_finding(
                    src,
                    *offset,
                    variant.len(),
                    self.name(),
                    format!(
                        "frame tag `{}` (`{}`) is not in the {SERVING_MD} §3 tag table",
                        *byte as char, variant
                    ),
                    "add the tag row to the spec's §3 table",
                ));
            }
        }
        for (tag, byte, offset) in &doc_tags {
            match code.iter().find(|(_, b, _)| b == tag) {
                None => out.push(doc_finding(
                    doc,
                    *offset,
                    1,
                    self.name(),
                    format!(
                        "spec documents frame tag `{}` but `FrameTag` does not define it",
                        *tag as char
                    ),
                    "implement the tag in protocol.rs or drop the row",
                )),
                Some(_) if byte != tag => out.push(doc_finding(
                    doc,
                    *offset,
                    1,
                    self.name(),
                    format!(
                        "spec says tag `{}` is 0x{byte:02X} but its discriminant is 0x{:02X}",
                        *tag as char, tag
                    ),
                    "the byte column must equal the tag letter's ASCII value",
                )),
                Some(_) => {}
            }
        }
    }
}

/// `docs/observability.md` metric catalogue vs `polygamy_obs::names`.
pub struct MetricDriftRule;

impl MetricDriftRule {
    /// Collects `pub const NAME: &str = "…";` entries inside `mod names`.
    fn code_names(src: &Scanned) -> BTreeMap<String, usize> {
        let mut names = BTreeMap::new();
        let toks = &src.tokens;
        let Some(start) = (0..toks.len())
            .find(|&i| src.ident(i) == Some("mod") && src.ident(i + 1) == Some("names"))
        else {
            return names;
        };
        let Some(open) = (start..toks.len()).find(|&i| src.is_punct(i, '{')) else {
            return names;
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < toks.len() {
            if src.is_punct(i, '{') {
                depth += 1;
            } else if src.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if src.ident(i) == Some("const")
                && src.ident(i + 1).is_some()
                && src.is_punct(i + 2, ':')
                && src.is_punct(i + 3, '&')
                && src.ident(i + 4) == Some("str")
                && src.is_punct(i + 5, '=')
                && toks.get(i + 6).is_some_and(|t| t.kind == TokenKind::Str)
            {
                names.insert(str_value(src, &toks[i + 6]).to_string(), toks[i + 6].start);
            }
            i += 1;
        }
        names
    }

    /// Collects `| \`name\` | counter/gauge/histogram | … |` rows. A
    /// `<placeholder>` suffix (e.g. `serve.errors.<kind>`) is truncated
    /// to its prefix, matching the `…_PREFIX` constants in code.
    fn doc_names(doc: &SourceFile) -> BTreeMap<String, usize> {
        let mut names = BTreeMap::new();
        let mut offset = 0usize;
        for line in doc.text.split_inclusive('\n') {
            if let Some(cells) = table_cells(line) {
                if cells.len() >= 3 && matches!(cells[1], "counter" | "gauge" | "histogram") {
                    if let Some(name) = backticked(cells[0]) {
                        let name = match name.find('<') {
                            Some(i) => &name[..i],
                            None => name,
                        };
                        names.entry(name.to_string()).or_insert(offset);
                    }
                }
            }
            offset += line.len();
        }
        names
    }
}

impl Rule for MetricDriftRule {
    fn name(&self) -> &'static str {
        "metric-drift"
    }
    fn summary(&self) -> &'static str {
        "docs/observability.md catalogue must match polygamy_obs::names exactly"
    }
    fn explain(&self) -> &'static str {
        "docs/observability.md promises that its catalogue lists every metric the \
binaries emit — dashboards and the bench snapshot schema are built on that \
promise. The rule reads the `pub const … : &str = \"…\"` entries in \
polygamy_obs's `names` module and the `| `name` | counter/gauge/histogram |` \
rows in the doc and requires the name sets to be identical. The \
`serve.errors.<kind>` family row matches its `serve.errors.` prefix constant. \
A metric registered in code but missing from the doc is an undocumented \
emission; a documented metric nothing registers is a dead dashboard panel."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(src) = ws.source_at(OBS_LIB_RS) else {
            return;
        };
        let code = Self::code_names(src);
        if code.is_empty() {
            return;
        }
        let Some(doc) = ws.doc_at(OBSERVABILITY_MD) else {
            out.push(code_finding(
                src,
                0,
                1,
                self.name(),
                format!("metric names have no spec: `{OBSERVABILITY_MD}` is missing"),
                "restore the observability spec with its metric catalogue",
            ));
            return;
        };
        let doc_names = Self::doc_names(doc);
        for (name, offset) in &code {
            if !doc_names.contains_key(name) {
                out.push(code_finding(
                    src,
                    *offset,
                    name.len() + 2,
                    self.name(),
                    format!("metric `{name}` is not in the {OBSERVABILITY_MD} catalogue"),
                    "add a catalogue row (name, type, meaning) for it",
                ));
            }
        }
        for (name, offset) in &doc_names {
            if !code.contains_key(name) {
                out.push(doc_finding(
                    doc,
                    *offset,
                    name.len() + 2,
                    self.name(),
                    format!(
                        "catalogue documents `{name}` but polygamy_obs::names does not define it"
                    ),
                    "register the metric name in code or drop the row",
                ));
            }
        }
    }
}

/// `docs/pql.md` grammar keywords vs the parser's `KEYWORDS` inventory.
pub struct PqlKeywordDriftRule;

/// The parsed `KEYWORDS` inventory: each (word, byte offset) entry, plus
/// the token range the initialiser occupies.
type KeywordInventory = (Vec<(String, usize)>, (usize, usize));

impl PqlKeywordDriftRule {
    /// Extracts the `KEYWORDS` const's string entries, plus the token
    /// range they occupy (so the freshness check can look *outside* it).
    fn code_keywords(src: &Scanned) -> Option<KeywordInventory> {
        let toks = &src.tokens;
        let start = (0..toks.len())
            .find(|&i| src.ident(i) == Some("KEYWORDS") && src.is_punct(i + 1, ':'))?;
        let open = (start..toks.len()).find(|&i| src.is_punct(i, '['))?;
        // The type also brackets (`[&str; N]`): the initialiser is the
        // bracket group after the `=`.
        let eq = (open..toks.len()).find(|&i| src.is_punct(i, '='))?;
        let init = (eq..toks.len()).find(|&i| src.is_punct(i, '['))?;
        let mut words = Vec::new();
        let mut i = init + 1;
        while i < toks.len() && !src.is_punct(i, ']') {
            if toks[i].kind == TokenKind::Str {
                words.push((str_value(src, &toks[i]).to_string(), toks[i].start));
            }
            i += 1;
        }
        Some((words, (init, i)))
    }

    /// Extracts word-like quoted terminals from the doc's ` ```ebnf `
    /// fence, with EBNF `(* … *)` comments stripped first.
    fn doc_keywords(doc: &SourceFile) -> BTreeMap<String, usize> {
        let mut words = BTreeMap::new();
        let Some(fence_at) = doc.text.find("```ebnf") else {
            return words;
        };
        let body_start = fence_at + "```ebnf".len();
        let body_end = doc.text[body_start..]
            .find("```")
            .map_or(doc.text.len(), |i| body_start + i);
        let bytes = doc.text.as_bytes();
        let mut i = body_start;
        while i < body_end {
            // EBNF comment: `(* … *)`.
            if bytes[i] == b'(' && bytes.get(i + 1) == Some(&b'*') {
                i += 2;
                while i + 1 < body_end && !(bytes[i] == b'*' && bytes[i + 1] == b')') {
                    i += 1;
                }
                i = (i + 2).min(body_end);
                continue;
            }
            if bytes[i] == b'"' {
                let start = i + 1;
                let mut j = start;
                while j < body_end && bytes[j] != b'"' {
                    j += 1;
                }
                let word = &doc.text[start..j];
                let wordlike = !word.is_empty()
                    && word.as_bytes()[0].is_ascii_lowercase()
                    && word.bytes().all(|b| b.is_ascii_lowercase() || b == b'-');
                if wordlike {
                    words.entry(word.to_string()).or_insert(start);
                }
                i = j + 1;
                continue;
            }
            i += 1;
        }
        words
    }
}

impl Rule for PqlKeywordDriftRule {
    fn name(&self) -> &'static str {
        "pql-keyword-drift"
    }
    fn summary(&self) -> &'static str {
        "docs/pql.md grammar keywords must match the parser's KEYWORDS inventory"
    }
    fn explain(&self) -> &'static str {
        "docs/pql.md's EBNF is the language's normative grammar. The parser declares \
its complete keyword inventory as `pub const KEYWORDS` (parser.rs); this rule \
requires the set of word-like quoted terminals in the grammar fence and that \
inventory to be identical, and additionally checks each inventory entry appears \
as a string literal elsewhere in the parser — so KEYWORDS itself cannot go \
stale against the match arms that actually consume the keywords. Adding a \
keyword means touching all three (match arm, inventory, grammar) or the build \
goes red."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(src) = ws.source_at(PARSER_RS) else {
            return;
        };
        let Some((code, (init, end))) = Self::code_keywords(src) else {
            out.push(code_finding(
                src,
                0,
                1,
                self.name(),
                "the PQL parser declares no `KEYWORDS` inventory".into(),
                "declare `pub const KEYWORDS: [&str; N]` listing every keyword",
            ));
            return;
        };
        // Freshness: every inventory entry must appear as a literal in
        // the parser outside the inventory itself.
        for (word, offset) in &code {
            let used = src.tokens.iter().enumerate().any(|(i, t)| {
                t.kind == TokenKind::Str && !(init..=end).contains(&i) && str_value(src, t) == word
            });
            if !used {
                out.push(code_finding(
                    src,
                    *offset,
                    word.len() + 2,
                    self.name(),
                    format!("`KEYWORDS` lists `{word}` but no parser code matches it"),
                    "remove the stale inventory entry or wire the keyword up",
                ));
            }
        }
        let Some(doc) = ws.doc_at(PQL_MD) else {
            out.push(code_finding(
                src,
                0,
                1,
                self.name(),
                format!("the PQL grammar has no spec: `{PQL_MD}` is missing"),
                "restore the PQL spec with its ```ebnf grammar fence",
            ));
            return;
        };
        let doc_words = Self::doc_keywords(doc);
        for (word, offset) in &code {
            if !doc_words.contains_key(word) {
                out.push(code_finding(
                    src,
                    *offset,
                    word.len() + 2,
                    self.name(),
                    format!("keyword `{word}` is not in the {PQL_MD} grammar"),
                    "add the terminal to the ```ebnf fence",
                ));
            }
        }
        for (word, offset) in &doc_words {
            if !code.iter().any(|(w, _)| w == word) {
                out.push(doc_finding(
                    doc,
                    *offset,
                    word.len(),
                    self.name(),
                    format!("grammar uses keyword `{word}` but the parser's KEYWORDS omits it"),
                    "implement the keyword or fix the grammar",
                ));
            }
        }
    }
}

//! `// lint: allow(<rule>, reason = "…")` suppression comments.
//!
//! A finding may be silenced only *in place* and only *with a reason*:
//! the allow comment must sit on the offending line or on the line
//! directly above it, must name the rule it silences, and must carry a
//! non-empty `reason = "…"`. Two meta-rules keep the escape hatch
//! honest:
//!
//! * **`invalid-allow`** — an allow with a missing/empty reason or an
//!   unknown rule name is itself a finding, and it suppresses nothing.
//! * **`unused-allow`** — an allow that silenced no finding is a
//!   finding: stale suppressions are drift, exactly like stale specs.

use crate::diag::Finding;
use crate::scan::Scanned;

/// One parsed allow comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// 1-based line the comment ends on.
    pub line: usize,
    /// 1-based column of the comment start.
    pub col: usize,
    /// Whether a non-empty `reason = "…"` was given.
    pub has_reason: bool,
}

/// Extracts every `lint: allow(…)` comment from a scanned file.
pub fn collect_allows(src: &Scanned) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &src.comments {
        let text = &src.file.text[c.start..c.end];
        // Adjacent `//` lines are scanned as one comment block; allows
        // may sit on any line of it (and a block may hold several), so
        // search by substring and anchor line/col at each marker.
        for (marker, _) in text.match_indices("lint:") {
            // Doc comments are prose, not suppressions: the allow syntax
            // quoted inside rustdoc (`///`, `//!`, `/** */`, `/*! */`)
            // documents itself without invoking anything.
            let line_start = text[..marker].rfind('\n').map_or(0, |i| i + 1);
            let prefix = text[line_start..marker].trim_start();
            if ["///", "//!", "/**", "/*!"]
                .iter()
                .any(|d| prefix.starts_with(d))
            {
                continue;
            }
            let rest = text[marker + "lint:".len()..].trim_start();
            let Some(args) = rest.strip_prefix("allow(") else {
                continue;
            };
            // Truncate at this allow's own closing paren (the reason
            // string may itself contain one) so a second allow later in
            // the same comment block can't bleed into the parse.
            let mut end = args.len();
            let mut in_str = false;
            let mut escaped = false;
            for (i, ch) in args.char_indices() {
                match ch {
                    '"' if !escaped => in_str = !in_str,
                    ')' if !in_str => {
                        end = i;
                        break;
                    }
                    _ => {}
                }
                escaped = ch == '\\' && !escaped;
            }
            let args = &args[..end];
            let rule: String = args
                .chars()
                .take_while(|c| !matches!(c, ',' | ')'))
                .collect::<String>()
                .trim()
                .to_string();
            let has_reason = args
                .split_once("reason")
                .and_then(|(_, after)| after.trim_start().strip_prefix('='))
                .and_then(|after| {
                    let after = after.trim_start();
                    let inner = after.strip_prefix('"')?;
                    let end = inner.find('"')?;
                    Some(!inner[..end].trim().is_empty())
                })
                .unwrap_or(false);
            let (line, col) = src.line_col(c.start + marker);
            allows.push(Allow {
                rule,
                line,
                col,
                has_reason,
            });
        }
    }
    allows
}

/// Applies the allows of one file to its findings.
///
/// Returns the surviving findings; appends `invalid-allow` /
/// `unused-allow` meta-findings. `known_rules` is the registry's name
/// list (an allow naming anything else is invalid).
pub fn apply_allows(
    src: &Scanned,
    findings: Vec<Finding>,
    known_rules: &[&'static str],
    out: &mut Vec<Finding>,
) {
    let allows = collect_allows(src);
    let mut used = vec![false; allows.len()];
    for f in findings {
        let suppressed = allows.iter().enumerate().any(|(i, a)| {
            let valid = a.has_reason && known_rules.contains(&a.rule.as_str());
            let covers = a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line);
            if valid && covers {
                used[i] = true;
                true
            } else {
                false
            }
        });
        if !suppressed {
            out.push(f);
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if !known_rules.contains(&a.rule.as_str()) {
            out.push(Finding {
                rule: "invalid-allow",
                path: src.file.path.clone(),
                line: a.line,
                col: a.col,
                width: 1,
                message: format!("lint allow names unknown rule `{}`", a.rule),
                help: "run `polygamy-lint --list-rules` for the rule catalogue".into(),
            });
        } else if !a.has_reason {
            out.push(Finding {
                rule: "invalid-allow",
                path: src.file.path.clone(),
                line: a.line,
                col: a.col,
                width: 1,
                message: format!(
                    "lint allow for `{}` has no reason — suppressions must say why",
                    a.rule
                ),
                help: "write `// lint: allow(rule, reason = \"…\")` with a non-empty reason".into(),
            });
        } else if !used[i] {
            out.push(Finding {
                rule: "unused-allow",
                path: src.file.path.clone(),
                line: a.line,
                col: a.col,
                width: 1,
                message: format!("lint allow for `{}` suppresses nothing", a.rule),
                help: "delete the stale allow comment".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn scanned(text: &str) -> Scanned {
        Scanned::new(SourceFile {
            path: "crates/x/src/lib.rs".into(),
            text: text.into(),
        })
    }

    #[test]
    fn parses_rule_and_reason() {
        let s = scanned("// lint: allow(wall-clock, reason = \"progress logging only\")\nfoo();");
        let allows = collect_allows(&s);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "wall-clock");
        assert!(allows[0].has_reason);
        assert_eq!(allows[0].line, 1);
    }

    #[test]
    fn empty_reason_is_not_a_reason() {
        let s = scanned("// lint: allow(wall-clock, reason = \"  \")\n");
        assert!(!collect_allows(&s)[0].has_reason);
        let s = scanned("// lint: allow(wall-clock)\n");
        assert!(!collect_allows(&s)[0].has_reason);
    }

    fn fake_finding(line: usize) -> Finding {
        Finding {
            rule: "wall-clock",
            path: "crates/x/src/lib.rs".into(),
            line,
            col: 1,
            width: 1,
            message: "clock".into(),
            help: "no clocks".into(),
        }
    }

    #[test]
    fn allow_covers_its_line_and_the_next() {
        let s = scanned(
            "// lint: allow(wall-clock, reason = \"timing\")\nInstant::now();\n\nother();\n",
        );
        let mut out = Vec::new();
        apply_allows(
            &s,
            vec![fake_finding(2), fake_finding(4)],
            &["wall-clock"],
            &mut out,
        );
        // Line-2 finding suppressed; line-4 survives; allow was used.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn invalid_allow_suppresses_nothing_and_reports() {
        let s = scanned("// lint: allow(wall-clock)\nInstant::now();\n");
        let mut out = Vec::new();
        apply_allows(&s, vec![fake_finding(2)], &["wall-clock"], &mut out);
        let rules: Vec<&str> = out.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"wall-clock"), "{rules:?}");
        assert!(rules.contains(&"invalid-allow"), "{rules:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let s = scanned("// lint: allow(wall-clock, reason = \"was needed once\")\nnothing();\n");
        let mut out = Vec::new();
        apply_allows(&s, vec![], &["wall-clock"], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-allow");
    }

    #[test]
    fn doc_comments_never_carry_allows() {
        let s = scanned(
            "//! Suppress with `// lint: allow(wall-clock, reason = \"…\")`.\n/// Same syntax: `lint: allow(default-hasher, reason = \"x\")`.\nfn f() {}\n",
        );
        assert!(collect_allows(&s).is_empty());
    }

    #[test]
    fn two_allows_in_one_comment_block_both_parse() {
        let s = scanned(
            "// lint: allow(wall-clock)\n// lint: allow(default-hasher, reason = \"seed test\")\nx();\n",
        );
        let allows = collect_allows(&s);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, "wall-clock");
        assert!(
            !allows[0].has_reason,
            "must not borrow the second allow's reason"
        );
        assert_eq!(allows[1].rule, "default-hasher");
        assert!(allows[1].has_reason);
        assert_eq!(allows[1].line, 2);
    }

    #[test]
    fn unknown_rule_is_invalid() {
        let s = scanned("// lint: allow(no-such-rule, reason = \"x\")\n");
        let mut out = Vec::new();
        apply_allows(&s, vec![], &["wall-clock"], &mut out);
        assert_eq!(out[0].rule, "invalid-allow");
    }
}

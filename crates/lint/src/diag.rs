//! Findings and their two renderings: caret diagnostics and JSON lines.
//!
//! The caret format follows the PQL error renderer (`core/src/pql/
//! error.rs`): a `path:line:col` header, the echoed source line with a
//! line-number gutter, a caret underline, and a `help:` footer naming
//! the fix. The JSON rendering is one object per finding on one line —
//! machine-readable without a serde dependency, for editors and CI
//! annotators.

use crate::scan::Scanned;

/// One rule violation, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (its kebab-case name).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the anchor.
    pub line: usize,
    /// 1-based column of the anchor.
    pub col: usize,
    /// Caret width in characters (minimum 1 when rendered).
    pub width: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it (rendered as the `help:` footer).
    pub help: String,
}

impl Finding {
    /// Sort key: findings print grouped by file, top to bottom.
    pub fn sort_key(&self) -> (String, usize, usize, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule)
    }

    /// Renders the caret diagnostic against the scanned source the
    /// finding came from (`None` when the source is not at hand — e.g. a
    /// finding against a missing file — which renders header-only).
    pub fn render(&self, source: Option<&Scanned>) -> String {
        let header = format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        );
        let Some(src) = source else {
            return format!("{header}\n  = help: {}", self.help);
        };
        // Tabs would misalign the caret line; expand them the way the
        // PQL renderer does.
        let raw = if self.line <= src.line_count() {
            src.line_text(self.line)
        } else {
            ""
        };
        let line = raw.replace('\t', "    ");
        let before: String = raw
            .chars()
            .take(self.col.saturating_sub(1))
            .collect::<String>()
            .replace('\t', "    ");
        let indent = before.chars().count();
        let carets = "^".repeat(self.width.max(1));
        let gutter = self.line.to_string().len();
        format!(
            "{header}\n{pad} |\n{line_no:>gutter$} | {line}\n{pad} | {space}{carets}\n{pad} = help: {help}",
            pad = " ".repeat(gutter),
            line_no = self.line,
            space = " ".repeat(indent),
            help = self.help,
        )
    }

    /// Renders the finding as one JSON object (one line, stable key
    /// order) for `--json` consumers.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\"}}",
            escape(self.rule),
            escape(&self.path),
            self.line,
            self.col,
            escape(&self.message),
            escape(&self.help),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn finding() -> Finding {
        Finding {
            rule: "default-hasher",
            path: "crates/x/src/lib.rs".into(),
            line: 2,
            col: 13,
            width: 13,
            message: "`DefaultHasher` is unstable across toolchains".into(),
            help: "derive seeds with the pinned FNV-1a hasher".into(),
        }
    }

    #[test]
    fn caret_lands_under_the_token() {
        let src = Scanned::new(SourceFile {
            path: "crates/x/src/lib.rs".into(),
            text: "fn f() {\n    let h = DefaultHasher::new();\n}".into(),
        });
        let text = finding().render(Some(&src));
        let lines: Vec<&str> = text.lines().collect();
        let echoed = lines[2];
        let caret_line = lines[3];
        assert_eq!(
            caret_line.find('^').unwrap(),
            echoed.find("DefaultHasher").unwrap(),
            "{text}"
        );
        assert!(text.contains("= help:"), "{text}");
    }

    #[test]
    fn missing_source_renders_header_only() {
        let text = finding().render(None);
        assert!(text.starts_with("crates/x/src/lib.rs:2:13: [default-hasher]"));
        assert!(!text.contains('^'));
    }

    #[test]
    fn json_escapes_quotes() {
        let mut f = finding();
        f.message = "tag `\"Q\"` drifted".into();
        let json = f.to_json();
        assert!(json.contains("\\\"Q\\\""), "{json}");
        assert!(json.starts_with("{\"rule\":\"default-hasher\""));
    }
}

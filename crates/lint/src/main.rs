//! The `polygamy-lint` command-line front end.
//!
//! ```text
//! polygamy-lint [--check] [--json] [--root <dir>]   lint the workspace
//! polygamy-lint --list-rules                        print the rule catalogue
//! polygamy-lint --explain <rule>                    print one rule's rationale
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` usage or I/O error — so CI
//! can tell "the code is wrong" from "the linter is broken".

#![forbid(unsafe_code)]

use polygamy_lint::{lint, rules, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
polygamy-lint — determinism, unsafe-hygiene and spec-drift invariants

USAGE:
    polygamy-lint [--check] [--json] [--root <dir>]
    polygamy-lint --list-rules
    polygamy-lint --explain <rule>

OPTIONS:
    --check          lint and exit non-zero on findings (the default mode)
    --json           emit findings as JSON lines instead of caret diagnostics
    --root <dir>     workspace root to lint (default: current directory)
    --list-rules     print every rule with its one-line summary
    --explain <rule> print the long-form rationale for one rule
    --help           print this help

Suppress a finding in place with a reasoned comment on the offending
line or the line above it:

    // lint: allow(<rule>, reason = \"why this occurrence is sound\")

Reasonless or misspelled allows are findings themselves (invalid-allow),
and allows that no longer suppress anything are too (unused-allow).
See docs/linting.md for the full catalogue.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                return list_rules();
            }
            "--explain" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("error: --explain needs a rule name\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                return explain(name);
            }
            "--check" => {}
            "--json" => json = true,
            "--root" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("error: --root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    check(&root, json)
}

fn list_rules() -> ExitCode {
    println!("rules (suppress with `// lint: allow(<rule>, reason = \"…\")`):\n");
    let all = rules::all();
    let width = all.iter().map(|r| r.name().len()).max().unwrap_or(0);
    for rule in &all {
        println!("  {:width$}  {}", rule.name(), rule.summary());
    }
    println!(
        "\nmeta (emitted by the suppression checker itself):\n\n  \
         {:width$}  allow comment with an unknown rule or missing reason\n  \
         {:width$}  allow comment that suppresses nothing",
        "invalid-allow", "unused-allow",
    );
    ExitCode::SUCCESS
}

fn explain(name: &str) -> ExitCode {
    match rules::all().into_iter().find(|r| r.name() == name) {
        Some(rule) => {
            println!("{}: {}\n\n{}", rule.name(), rule.summary(), rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: no rule named `{name}` (run `polygamy-lint --list-rules`)");
            ExitCode::from(2)
        }
    }
}

fn check(root: &std::path::Path, json: bool) -> ExitCode {
    let ws = match Workspace::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: cannot read workspace at `{}`: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = lint(&ws);
    if json {
        for f in &findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &findings {
            println!("{}\n", f.render(ws.source_at(&f.path)));
        }
        eprintln!(
            "polygamy-lint: {} file(s), {} doc(s), {} finding(s)",
            ws.sources.len(),
            ws.docs.len(),
            findings.len()
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

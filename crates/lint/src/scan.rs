//! A lightweight Rust source scanner — the token stream the rules walk.
//!
//! This is deliberately *not* a Rust parser: like the PQL lexer it is a
//! single hand-rolled pass that understands exactly enough of the
//! language to be reliable — comments (line, block, nested), string
//! literals in every flavour (plain, raw, byte, byte-raw), character
//! literals vs lifetimes, identifiers, numbers and single-byte
//! punctuation. Everything a rule matches on is an identifier or
//! punctuation *token*, so occurrences inside strings and comments can
//! never produce findings (the linter's own source talks about
//! `DefaultHasher` in string literals and stays clean).
//!
//! The scanner also computes a per-token **test mask**: tokens inside a
//! `#[cfg(test)] mod … { … }` block are marked so determinism rules can
//! exempt test-only code without a type-aware front end.

/// One file handed to the linter: a repo-relative, `/`-separated path
/// plus its full text. Paths are virtual — fixtures fake result-path
/// locations by declaring one.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes (e.g. `crates/core/src/lib.rs`).
    pub path: String,
    /// The file's text.
    pub text: String,
}

/// What kind of token the scanner produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `partial_cmp`, …).
    Ident,
    /// A numeric literal.
    Number,
    /// A string literal of any flavour, quotes included in the span.
    Str,
    /// A character or byte-character literal (`'a'`, `b'H'`).
    Char,
    /// A lifetime (`'static`).
    Lifetime,
    /// A single punctuation byte (`.`, `:`, `#`, `(`, …).
    Punct,
}

/// One token: a kind plus the half-open byte range it covers.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// One comment (line or block), byte range including the delimiters.
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the comment's last byte.
    pub end: usize,
}

/// A scanned file: the source plus its token/comment streams and line
/// index, ready for the rules.
pub struct Scanned {
    /// The underlying source.
    pub file: SourceFile,
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
    line_starts: Vec<usize>,
    test_mask: Vec<bool>,
}

impl Scanned {
    /// Scans `file` into tokens, comments and the line index.
    pub fn new(file: SourceFile) -> Self {
        let (tokens, comments) = scan(&file.text);
        let mut line_starts = vec![0usize];
        for (i, b) in file.text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_mask = compute_test_mask(&file.text, &tokens);
        Self {
            file,
            tokens,
            comments,
            line_starts,
            test_mask,
        }
    }

    /// The source text of a token.
    pub fn text(&self, t: &Token) -> &str {
        &self.file.text[t.start..t.end]
    }

    /// The token's text if it is an identifier, else `None`.
    pub fn ident(&self, i: usize) -> Option<&str> {
        let t = self.tokens.get(i)?;
        (t.kind == TokenKind::Ident).then(|| self.text(t))
    }

    /// True when token `i` is the punctuation byte `p`.
    pub fn is_punct(&self, i: usize, p: char) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && self.text(t).starts_with(p))
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The text of a 1-based line (without its newline).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.file.text.len(), |&n| n - 1);
        self.file.text[start..end].trim_end_matches('\r')
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// True when token `i` sits inside a `#[cfg(test)] mod … { … }` block.
    pub fn in_test_block(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// True when any comment containing `marker` ends on a line in
    /// `[line - window, line]` — the "documented nearby" check shared by
    /// the `// SAFETY:` and `// ordering:` rules.
    pub fn comment_near(&self, line: usize, window: usize, marker: &str) -> bool {
        self.comments.iter().any(|c| {
            let text = &self.file.text[c.start..c.end];
            if !text.contains(marker) {
                return false;
            }
            let (end_line, _) = self.line_col(c.end.saturating_sub(1));
            end_line + window >= line && end_line <= line
        })
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The scanner proper: one pass, no allocation beyond the output vecs.
fn scan(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if b == b'/' && i + 1 < n {
            match bytes[i + 1] {
                b'/' => {
                    let start = i;
                    while i < n && bytes[i] != b'\n' {
                        i += 1;
                    }
                    // A run of adjacent `//` lines is one comment block:
                    // merge when only whitespace and a single newline
                    // separate this line from the previous comment, so
                    // `comment_near` measures from the block's end.
                    match comments.last_mut() {
                        Some(prev)
                            if src[prev.end..start]
                                .bytes()
                                .all(|b| b.is_ascii_whitespace())
                                && src[prev.end..start].bytes().filter(|&b| b == b'\n').count()
                                    <= 1 =>
                        {
                            prev.end = i;
                        }
                        _ => comments.push(Comment { start, end: i }),
                    }
                    continue;
                }
                b'*' => {
                    let start = i;
                    i += 2;
                    let mut depth = 1usize;
                    while i < n && depth > 0 {
                        if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    comments.push(Comment { start, end: i });
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings: r"…", r#"…"#, and the b-prefixed flavours.
        if (b == b'r' || b == b'b') && raw_string_ahead(bytes, i) {
            let start = i;
            if bytes[i] == b'b' {
                i += 1;
            }
            i += 1; // past 'r'
            let mut hashes = 0usize;
            while i < n && bytes[i] == b'#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // past opening quote
            'raw: while i < n {
                if bytes[i] == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while j < n && bytes[j] == b'#' && seen < hashes {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        i = j;
                        break 'raw;
                    }
                }
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: i,
            });
            continue;
        }
        // Byte strings / byte chars: b"…", b'H'.
        if b == b'b' && i + 1 < n && (bytes[i + 1] == b'"' || bytes[i + 1] == b'\'') {
            let start = i;
            let quote = bytes[i + 1];
            i += 2;
            i = skip_quoted(bytes, i, quote);
            tokens.push(Token {
                kind: if quote == b'"' {
                    TokenKind::Str
                } else {
                    TokenKind::Char
                },
                start,
                end: i,
            });
            continue;
        }
        // Plain strings.
        if b == b'"' {
            let start = i;
            i += 1;
            i = skip_quoted(bytes, i, b'"');
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: i,
            });
            continue;
        }
        // Char literal or lifetime.
        if b == b'\'' {
            let start = i;
            if char_literal_ahead(bytes, i) {
                i += 1;
                i = skip_quoted(bytes, i, b'\'');
                tokens.push(Token {
                    kind: TokenKind::Char,
                    start,
                    end: i,
                });
            } else {
                i += 1;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    start,
                    end: i,
                });
            }
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(b) {
            let start = i;
            while i < n && is_ident_continue(bytes[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: i,
            });
            continue;
        }
        // Numbers (loose: enough to step over literals like 1e-3 or 0xFF
        // without splitting them into spurious idents; `0..10` keeps the
        // range dots out of the number).
        if b.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_continue(bytes[i])
                    || (bytes[i] == b'.'
                        && i + 1 < n
                        && bytes[i + 1] != b'.'
                        && bytes[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                start,
                end: i,
            });
            continue;
        }
        // Anything else: one punctuation byte (or a stray non-ASCII char,
        // stepped over whole so we never split a UTF-8 sequence).
        let char_len = src[i..].chars().next().map_or(1, char::len_utf8);
        if char_len == 1 {
            tokens.push(Token {
                kind: TokenKind::Punct,
                start: i,
                end: i + 1,
            });
        }
        i += char_len;
    }
    (tokens, comments)
}

/// True when position `i` starts a raw string (`r"`, `r#…#"`, `br"`, …).
fn raw_string_ahead(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Distinguishes `'a'` / `'\n'` (char literals) from `'static` (lifetime).
fn char_literal_ahead(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) => {
            if is_ident_start(c) {
                // `'a'` is a char, `'ab` or `'a ` is a lifetime.
                bytes.get(i + 2) == Some(&b'\'')
            } else {
                c != b'\''
            }
        }
        None => false,
    }
}

/// Advances past a quoted literal body (handles `\\` and `\<quote>`).
fn skip_quoted(bytes: &[u8], mut i: usize, quote: u8) -> usize {
    let n = bytes.len();
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b if b == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Marks every token inside a `#[cfg(test)] mod … { … }` block.
///
/// The repo's test-only code universally uses that shape; determinism
/// rules use the mask so a test may, say, read the clock, without the
/// production path being allowed to.
fn compute_test_mask(src: &str, tokens: &[Token]) -> Vec<bool> {
    let text = |t: &Token| &src[t.start..t.end];
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = text(&tokens[i]) == "#"
            && text(&tokens[i + 1]) == "["
            && text(&tokens[i + 2]) == "cfg"
            && text(&tokens[i + 3]) == "("
            && text(&tokens[i + 4]) == "test"
            && text(&tokens[i + 5]) == ")"
            && text(&tokens[i + 6]) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then require `mod <name> {`.
        let mut j = i + 7;
        while j + 1 < tokens.len() && text(&tokens[j]) == "#" && text(&tokens[j + 1]) == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < tokens.len() {
                match text(&tokens[j]) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if tokens.get(j).map(text) == Some("mod")
            && tokens
                .get(j + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(j + 2).map(text) == Some("{")
        {
            let open = j + 2;
            let mut depth = 0usize;
            let mut k = open;
            while k < tokens.len() {
                match text(&tokens[k]) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            for m in mask.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
                *m = true;
            }
            i = k.max(i + 1);
        } else {
            i = j.max(i + 1);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(text: &str) -> Scanned {
        Scanned::new(SourceFile {
            path: "crates/x/src/lib.rs".into(),
            text: text.into(),
        })
    }

    #[test]
    fn idents_and_puncts() {
        let s = scanned("let x = foo.bar();");
        let idents: Vec<&str> = (0..s.tokens.len()).filter_map(|i| s.ident(i)).collect();
        assert_eq!(idents, ["let", "x", "foo", "bar"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let s = scanned(r#"let x = "DefaultHasher inside a string";"#);
        assert!((0..s.tokens.len()).all(|i| s.ident(i) != Some("DefaultHasher")));
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && s.text(t).contains("DefaultHasher")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let s = scanned(r##"let a = r#"raw "quoted" body"#; let b = b"bytes"; let c = b'H';"##);
        let kinds: Vec<TokenKind> = s.tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Str));
        assert!(kinds.contains(&TokenKind::Char));
        let chars: Vec<&str> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| s.text(t))
            .collect();
        assert_eq!(chars, ["b'H'"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let s = scanned("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn adjacent_line_comments_merge_into_a_block() {
        let s = scanned(
            "// SAFETY: a four-line argument about the mapping\n// continuing here\n// and here\n// and here\nunsafe { }\n",
        );
        assert_eq!(s.comments.len(), 1);
        // The marker is on line 1 but the block ends on line 4, inside
        // the window for the `unsafe` on line 5.
        assert!(s.comment_near(5, 3, "SAFETY:"));
        // Comments separated by code do not merge.
        let s = scanned("// one\nfn f() {}\n// two\n");
        assert_eq!(s.comments.len(), 2);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let s = scanned("// SAFETY: fine\nunsafe { }\n/* block\ncomment */ fn f() {}");
        assert_eq!(s.comments.len(), 2);
        assert!(s.comment_near(2, 3, "SAFETY:"));
        assert!(!s.comment_near(2, 3, "ordering:"));
        let idents: Vec<&str> = (0..s.tokens.len()).filter_map(|i| s.ident(i)).collect();
        assert!(idents.contains(&"unsafe"));
        assert!(!idents.contains(&"comment"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scanned("/* outer /* inner */ still-comment */ real");
        let idents: Vec<&str> = (0..s.tokens.len()).filter_map(|i| s.ident(i)).collect();
        assert_eq!(idents, ["real"]);
    }

    #[test]
    fn line_and_column_are_one_based() {
        let s = scanned("a\nbb ccc\n");
        let t = s.tokens[2];
        assert_eq!(s.text(&t), "ccc");
        assert_eq!(s.line_col(t.start), (2, 4));
        assert_eq!(s.line_text(2), "bb ccc");
        assert_eq!(s.line_count(), 3);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { clock(); }\n}\nfn after() {}";
        let s = scanned(src);
        let idx = |name: &str| {
            (0..s.tokens.len())
                .find(|&i| s.ident(i) == Some(name))
                .unwrap()
        };
        assert!(!s.in_test_block(idx("prod")));
        assert!(s.in_test_block(idx("clock")));
        assert!(!s.in_test_block(idx("after")));
    }
}

//! End-to-end tests for the network daemon: a real store served over a
//! real localhost socket, driven by the crate's own [`Client`] and, where
//! the spec talks about malformed traffic, by raw `TcpStream` writes.
//!
//! The headline property pinned here is the one `docs/serving.md` §5/§8
//! promises: a query answered inside a coalesced batch returns **byte
//! identical** JSON to the same query executed solo and offline.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_serve::protocol::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
use polygamy_serve::{
    Client, Coalescer, FrameTag, Response, ServeOptions, Server, PROTOCOL_VERSION,
};
use polygamy_store::{execute_pql_batch, Store, StoreSession};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds a small two-data-set store (so queries have candidate pairs)
/// in a fresh temp file and returns its path.
fn build_store() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "plst-serve-test-{}-{}.plst",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::fast_test(),
    );
    for (name, level, bump_at) in [
        ("taxi", 1.0, 100i64),
        ("weather", -2.0, 100),
        ("noise", 0.5, 333),
    ] {
        let meta = DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
        for h in 0..600i64 {
            let v = if h == bump_at || h == bump_at + 137 {
                40.0
            } else {
                level + (h % 24) as f64 * 0.05
            };
            b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
        }
        dp.add_dataset(b.build().unwrap());
    }
    dp.build_index();
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
    path
}

/// Starts a server over `path` on an ephemeral port.
fn start_server(path: &PathBuf, opts: ServeOptions) -> Server {
    let session = Arc::new(StoreSession::open(path).unwrap());
    Server::bind("127.0.0.1:0", session, opts).unwrap()
}

/// The offline reference rendering: each query executed through the CLI's
/// own helper on a fresh session, JSON per line.
fn offline_json(path: &PathBuf, batch: &str) -> String {
    let session = StoreSession::open(path).unwrap();
    execute_pql_batch(&session, batch)
        .unwrap()
        .iter()
        .map(|o| o.to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

const QUERIES: [&str; 4] = [
    "between taxi and weather where permutations = 40 and include insignificant",
    "between taxi and * where score >= 0",
    "between weather, noise and taxi where include insignificant",
    "between * and * where class = salient",
];

#[test]
fn coalesced_response_is_byte_identical_to_solo_and_offline() {
    let path = build_store();
    let server = start_server(&path, ServeOptions::default());
    let addr = server.local_addr();

    // Fire all queries concurrently so the dispatcher has real batches to
    // coalesce, one connection per client.
    let handles: Vec<_> = QUERIES
        .iter()
        .map(|q| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                assert!(client.hello().coalescing);
                assert_eq!(client.hello().protocol, PROTOCOL_VERSION);
                match client.request(q).unwrap() {
                    Response::Results(json) => json,
                    Response::Error(e) => panic!("unexpected error frame: {e:?}"),
                }
            })
        })
        .collect();
    let served: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (q, json) in QUERIES.iter().zip(&served) {
        // Solo over the network (fresh connection, nothing to coalesce
        // with) and offline through the CLI helper must all agree.
        let mut solo_client = Client::connect(addr).unwrap();
        let solo = match solo_client.request(q).unwrap() {
            Response::Results(json) => json,
            Response::Error(e) => panic!("unexpected error frame: {e:?}"),
        };
        assert_eq!(json, &solo, "coalesced vs solo for `{q}`");
        assert_eq!(json, &offline_json(&path, q), "served vs offline for `{q}`");
    }
    // At least one relationship-bearing answer, or the test proves nothing.
    assert!(served.iter().any(|j| j.contains("\"relationships\":[{")));

    Client::connect(addr).unwrap().shutdown_server().unwrap();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn multi_query_request_returns_jsonl_in_request_order() {
    let path = build_store();
    let server = start_server(&path, ServeOptions::default());
    let batch = "between taxi and weather\n# a comment\nbetween noise and *\n";

    let mut client = Client::connect(server.local_addr()).unwrap();
    let json = match client.request(batch).unwrap() {
        Response::Results(json) => json,
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    };
    assert_eq!(json.lines().count(), 2);
    assert_eq!(json, offline_json(&path, batch));

    // An all-comment batch is a valid, empty request (spec §5).
    match client.request("# nothing here\n").unwrap() {
        Response::Results(json) => assert_eq!(json, ""),
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    }

    client.shutdown_server().unwrap();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn parse_and_query_errors_keep_the_connection_serving() {
    let path = build_store();
    let server = start_server(&path, ServeOptions::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A parse error answers with the caret diagnostic (spec §6)…
    match client.request("betwixt taxi and weather").unwrap() {
        Response::Error(e) => {
            assert_eq!(e.error, "parse");
            assert!(e.message.contains('^'), "no caret in: {}", e.message);
        }
        Response::Results(r) => panic!("parse error expected, got results: {r}"),
    }
    // …an unknown data set answers with a query error…
    match client.request("between nosuch and taxi").unwrap() {
        Response::Error(e) => assert_eq!(e.error, "query"),
        Response::Results(r) => panic!("query error expected, got results: {r}"),
    }
    // …and the same connection still serves real queries afterwards.
    match client.request("between taxi and weather").unwrap() {
        Response::Results(json) => assert!(json.starts_with("{\"query\":")),
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    }

    client.shutdown_server().unwrap();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unknown_and_server_side_tags_answer_bad_frame_and_keep_serving() {
    let path = build_store();
    let server = start_server(&path, ServeOptions::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Swallow the hello.
    assert_eq!(
        read_frame(&mut stream, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap()
            .known_tag(),
        Some(FrameTag::Hello)
    );
    // A tag this protocol version does not know…
    stream.write_all(&2u32.to_le_bytes()).unwrap();
    stream.write_all(b"Z!").unwrap();
    let frame = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    assert_eq!(frame.known_tag(), Some(FrameTag::Error));
    let text = String::from_utf8(frame.payload).unwrap();
    assert!(text.contains("bad-frame"), "{text}");
    // …and a server-only tag both leave the connection serving.
    write_frame(&mut stream, FrameTag::Result, b"{}").unwrap();
    let frame = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    assert_eq!(frame.known_tag(), Some(FrameTag::Error));
    write_frame(&mut stream, FrameTag::Query, b"between taxi and weather").unwrap();
    let frame = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    assert_eq!(frame.known_tag(), Some(FrameTag::Result));

    server.shutdown();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn oversize_frame_answers_bad_frame_and_closes() {
    let path = build_store();
    let opts = ServeOptions {
        max_frame_bytes: 1024,
        ..ServeOptions::default()
    };
    let server = start_server(&path, opts);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap(); // hello
    stream.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    let frame = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    assert_eq!(frame.known_tag(), Some(FrameTag::Error));
    let text = String::from_utf8(frame.payload).unwrap();
    assert!(text.contains("bad-frame"), "{text}");
    // After a framing fault the server hangs up (spec §6).
    assert!(read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().is_none());

    server.shutdown();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn slow_client_is_disconnected_at_the_read_timeout() {
    let path = build_store();
    let opts = ServeOptions {
        read_timeout: Duration::from_millis(250),
        ..ServeOptions::default()
    };
    let server = start_server(&path, opts);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap(); // hello
                                                                // Start a frame but never finish it: the deadline is fixed when the
                                                                // frame wait begins, so stalling mid-frame cannot extend it.
    stream.write_all(&30u32.to_le_bytes()).unwrap();
    stream.write_all(b"Q").unwrap();
    let started = Instant::now();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).unwrap(); // EOF once the server hangs up
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(150) && elapsed < Duration::from_secs(5),
        "server closed after {elapsed:?}, expected ≈250ms"
    );

    server.shutdown();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn oversized_request_batch_is_rejected_as_overloaded() {
    let path = build_store();
    let opts = ServeOptions {
        max_inflight: 2,
        ..ServeOptions::default()
    };
    let server = start_server(&path, opts);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let batch = "between taxi and *\nbetween weather and *\nbetween noise and *";
    match client.request(batch).unwrap() {
        Response::Error(e) => assert_eq!(e.error, "overloaded"),
        Response::Results(r) => panic!("overloaded error expected, got: {r}"),
    }
    // The rejection is per-request; the connection still serves.
    match client.request("between taxi and weather").unwrap() {
        Response::Results(json) => assert!(json.starts_with("{\"query\":")),
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    }

    client.shutdown_server().unwrap();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn shutdown_frame_drains_and_refuses_new_requests() {
    let path = build_store();
    let server = start_server(&path, ServeOptions::default());
    let addr = server.local_addr();

    // A connection opened and answered before the drain…
    let mut survivor = Client::connect(addr).unwrap();
    match survivor.request("between taxi and weather").unwrap() {
        Response::Results(_) => {}
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    }

    Client::connect(addr).unwrap().shutdown_server().unwrap();
    let stats = server.wait();
    assert!(stats.requests >= 1);
    assert!(stats.queries >= 1);

    // …is closed by the drain, and the listener is gone: a new request on
    // the old connection fails, and new connections are refused.
    assert!(survivor.request("between taxi and weather").is_err());
    let refused = TcpStream::connect(addr)
        .map(|mut s| {
            // Some platforms accept briefly in the backlog; the server must
            // at least not answer with a hello.
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        })
        .unwrap_or(true);
    assert!(refused, "server still serving after drain");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn metrics_frame_returns_monotonic_snapshots_that_track_queries() {
    let path = build_store();
    let server = start_server(&path, ServeOptions::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The registry is process-global and other tests in this binary run in
    // parallel, so everything below asserts *deltas* observed through this
    // one connection, never absolute values.
    let before = client.metrics().unwrap();
    let batch = "between taxi and weather\nbetween noise and *";
    match client.request(batch).unwrap() {
        Response::Results(json) => assert_eq!(json.lines().count(), 2),
        Response::Error(e) => panic!("unexpected error frame: {e:?}"),
    }
    let after = client.metrics().unwrap();

    // Counters only ever grow (docs/serving.md §10).
    assert!(after.is_monotonic_since(&before));
    // Our own traffic is visible in the deltas: one request carrying two
    // queries, and at least the second of our two M frames.
    assert!(after.counter("serve.requests") > before.counter("serve.requests"));
    assert!(after.counter("serve.queries") >= before.counter("serve.queries") + 2);
    assert!(after.counter("serve.metrics_frames") > before.counter("serve.metrics_frames"));
    // The batch-size histogram exists and reconciles with the counters:
    // one observation per dispatch, its sum the queries those dispatches
    // carried (checked as deltas — parallel tests snapshot mid-dispatch).
    let sizes = after
        .histogram("serve.batch_size")
        .expect("batch size histogram present");
    let sizes_before = before
        .histogram("serve.batch_size")
        .map(|h| (h.count(), h.sum))
        .unwrap_or((0, 0));
    assert!(sizes.count() > sizes_before.0, "our dispatch recorded");
    assert!(sizes.sum >= sizes_before.1 + 2, "our two queries recorded");
    assert!(sizes.sum >= sizes.count(), "every batch has >= 1 query");
    // Executor counters flow into the same snapshot.
    assert!(after.counter("core.queries") >= before.counter("core.queries") + 2);

    client.shutdown_server().unwrap();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn serial_dispatch_mode_serves_the_same_bytes() {
    let path = build_store();
    let opts = ServeOptions {
        coalesce: false,
        ..ServeOptions::default()
    };
    let server = start_server(&path, opts);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(!client.hello().coalescing);
    for q in QUERIES {
        match client.request(q).unwrap() {
            Response::Results(json) => assert_eq!(json, offline_json(&path, q)),
            Response::Error(e) => panic!("unexpected error frame: {e:?}"),
        }
    }
    let stats = server.stats();
    // Serial mode never merges: one dispatch per request.
    assert_eq!(stats.batches, stats.requests);

    client.shutdown_server().unwrap();
    server.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn coalescer_merges_queued_requests_into_one_dispatch() {
    let path = build_store();
    let session = Arc::new(StoreSession::open(&path).unwrap());
    // No dispatcher thread: submissions park in the queue, so the batch
    // shape is fully deterministic.
    let coalescer = Arc::new(Coalescer::new(Arc::clone(&session), 64));
    let receivers: Vec<_> = QUERIES
        .iter()
        .map(|q| {
            let queries = polygamy_core::pql::parse_batch(q).unwrap();
            (queries.clone(), coalescer.submit(queries).unwrap())
        })
        .collect();
    assert_eq!(coalescer.dispatch_pending(), QUERIES.len());
    let stats = coalescer.stats();
    assert_eq!(stats.batches, 1, "all queued requests must merge");
    assert_eq!(stats.max_batch, QUERIES.len() as u64);
    for (queries, rx) in receivers {
        let results = rx.recv().unwrap().unwrap();
        assert_eq!(results.len(), queries.len());
        // Byte-identity per request against a solo evaluation.
        for (query, rels) in queries.iter().zip(&results) {
            assert_eq!(rels, &session.query(query).unwrap());
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn coalescer_isolates_a_failing_request_from_its_batchmates() {
    let path = build_store();
    let session = Arc::new(StoreSession::open(&path).unwrap());
    let coalescer = Coalescer::new(Arc::clone(&session), 64);
    let good = polygamy_core::pql::parse_batch("between taxi and weather").unwrap();
    let bad = polygamy_core::pql::parse_batch("between nosuch and taxi").unwrap();
    let rx_good = coalescer.submit(good.clone()).unwrap();
    let rx_bad = coalescer.submit(bad).unwrap();
    coalescer.dispatch_pending();
    let good_results = rx_good.recv().unwrap().expect("innocent request succeeds");
    assert_eq!(good_results[0], session.query(&good[0]).unwrap());
    assert!(
        rx_bad.recv().unwrap().is_err(),
        "guilty request fails alone"
    );
    std::fs::remove_file(&path).unwrap();
}

mod frame_codec_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any payload round-trips through the codec under any known tag,
        /// and frames concatenate on the wire without resynchronization.
        #[test]
        fn frames_roundtrip(
            payload in proptest::collection::vec(0u8..u8::MAX, 0..512),
            tag_pick in 0usize..6,
            extra in proptest::collection::vec(0u8..u8::MAX, 0..64),
        ) {
            let tag = [
                FrameTag::Hello,
                FrameTag::Query,
                FrameTag::Result,
                FrameTag::Error,
                FrameTag::Shutdown,
                FrameTag::Metrics,
            ][tag_pick];
            let mut wire = Vec::new();
            write_frame(&mut wire, tag, &payload).unwrap();
            write_frame(&mut wire, FrameTag::Query, &extra).unwrap();
            let mut r = wire.as_slice();
            let first = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
            prop_assert_eq!(first, Frame::new(tag, payload.clone()));
            let second = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
            prop_assert_eq!(second, Frame::new(FrameTag::Query, extra.clone()));
            prop_assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
        }
    }
}

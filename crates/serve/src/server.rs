//! The daemon: accept loop, per-connection protocol state machine,
//! limits, and graceful drain (`docs/serving.md` §4–§9).
//!
//! One [`Server`] owns one shared [`StoreSession`] (eager or lazy), a
//! [`Coalescer`] over it, an accept thread, and one thread per live
//! connection. Requests never evaluate on the connection thread when
//! coalescing is on — they queue, and the dispatcher answers whole
//! bursts with one flat `query_many` call.

use crate::coalesce::{CoalesceStats, Coalescer, Rejection};
use crate::protocol::{
    write_frame, Frame, FrameError, FrameTag, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use polygamy_obs::{names, Counter, Gauge};
use polygamy_store::{PqlOutcome, StoreSession};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry handles for the connection/drain counters, resolved once per
/// process.
struct ConnMetrics {
    opened: Arc<Counter>,
    closed: Arc<Counter>,
    active: Arc<Gauge>,
    metrics_frames: Arc<Counter>,
    drain_ns: Arc<Counter>,
}

fn conn_metrics() -> &'static ConnMetrics {
    static M: OnceLock<ConnMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = polygamy_obs::global();
        ConnMetrics {
            opened: r.counter(names::SERVE_CONNECTIONS_OPENED),
            closed: r.counter(names::SERVE_CONNECTIONS_CLOSED),
            active: r.gauge(names::SERVE_CONNECTIONS_ACTIVE),
            metrics_frames: r.counter(names::SERVE_METRICS_FRAMES),
            drain_ns: r.counter(names::SERVE_DRAIN_NS),
        }
    })
}

/// The server's JSON handshake, sent as the `H` frame payload on every
/// accepted connection (`docs/serving.md` §7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// [`PROTOCOL_VERSION`] of the serving build; clients reject a
    /// mismatch instead of guessing at frame semantics.
    pub protocol: u32,
    /// Human-readable server identification.
    pub server: String,
    /// Data sets this session serves, in catalog order.
    pub datasets: Vec<String>,
    /// Whether cross-connection batch coalescing is enabled.
    pub coalescing: bool,
}

/// The JSON payload of an `E` frame (`docs/serving.md` §6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable kind: `parse`, `query`, `bad-frame`,
    /// `overloaded`, `shutting-down` or `internal`.
    pub error: String,
    /// Human-readable detail; for `parse` errors this is the full
    /// caret-underlined diagnostic from [`polygamy_core::pql`].
    pub message: String,
}

impl WireError {
    fn new(kind: &str, message: impl Into<String>) -> Self {
        Self {
            error: kind.into(),
            message: message.into(),
        }
    }
}

/// Tunable limits, all documented (with defaults) in the limits table of
/// `docs/serving.md` §9.
///
/// ```
/// use polygamy_serve::ServeOptions;
/// let opts = ServeOptions::default();
/// assert!(opts.coalesce);
/// assert_eq!(opts.max_inflight, 256);
/// ```
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Admission cap in *queries* (not requests) queued or evaluating at
    /// once; submissions beyond it block their connection (TCP
    /// backpressure). CLI: `--max-inflight`.
    pub max_inflight: usize,
    /// A connection must deliver each frame within this long of the
    /// previous frame's completion (or of connect); idle or stalled
    /// connections are closed. CLI: `--read-timeout-ms`.
    pub read_timeout: Duration,
    /// Largest accepted frame length (tag + payload). CLI:
    /// `--max-frame-bytes`.
    pub max_frame_bytes: u32,
    /// Evaluate requests through the cross-connection coalescer (the
    /// default) or inline per request (the serial-dispatch baseline the
    /// benchmarks compare against). CLI: `--no-coalesce`.
    pub coalesce: bool,
    /// When set, a background thread appends the registry snapshot to
    /// this file as one JSON line per second (plus a final line at
    /// drain), so an unattended daemon leaves a metrics record without
    /// any client polling the `M` frame. CLI: `--metrics-jsonl`.
    pub metrics_jsonl: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_inflight: 256,
            read_timeout: Duration::from_secs(30),
            max_frame_bytes: MAX_FRAME_BYTES,
            coalesce: true,
            metrics_jsonl: None,
        }
    }
}

/// State shared by the accept loop, connection threads and dispatcher.
struct Shared {
    coalescer: Coalescer,
    opts: ServeOptions,
    draining: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
    hello: Vec<u8>,
    /// When the first drain trigger fired — the start of the interval
    /// `serve.drain_ns` measures.
    drain_started: Mutex<Option<Instant>>,
}

impl Shared {
    fn draining(&self) -> bool {
        // ordering: SeqCst pairs with the store in `begin_drain` so that
        // once any thread observes draining, it also observes the closed
        // coalescer — admission and drain must agree on one total order.
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the server into drain mode: stop accepting, refuse new
    /// requests, let admitted work finish. Idempotent.
    fn begin_drain(&self) {
        self.drain_started
            .lock()
            .expect("drain stamp poisoned")
            .get_or_insert_with(Instant::now);
        // ordering: SeqCst with the loads in `draining()` — the flag and
        // the coalescer close below form one publication that every
        // admission check sees in the same order.
        self.draining.store(true, Ordering::SeqCst);
        self.coalescer.close();
    }
}

/// A running PQL daemon bound to a TCP address.
///
/// ```no_run
/// use polygamy_serve::{Server, ServeOptions};
/// use polygamy_store::StoreSession;
/// use std::sync::Arc;
///
/// let session = Arc::new(StoreSession::open_lazy("city.plst").unwrap());
/// let server = Server::bind("127.0.0.1:7461", session, ServeOptions::default()).unwrap();
/// println!("serving on {}", server.local_addr());
/// let stats = server.wait(); // returns once a client sends the shutdown frame
/// println!("served {} queries in {} batches", stats.queries, stats.batches);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
    flusher_stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port, then
    /// [`Server::local_addr`]) and starts serving `session` with the
    /// given options. The session is shared — concurrent connections are
    /// answered from one index, one segment LRU and one query cache.
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: Arc<StoreSession>,
        opts: ServeOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let hello = Hello {
            protocol: PROTOCOL_VERSION,
            server: format!("polygamy-serve {}", env!("CARGO_PKG_VERSION")),
            datasets: session.loaded_datasets().to_vec(),
            coalescing: opts.coalesce,
        };
        let shared = Arc::new(Shared {
            coalescer: Coalescer::new(session, opts.max_inflight),
            opts,
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            hello: serde_json::to_string(&hello)
                .expect("hello serializes")
                .into_bytes(),
            drain_started: Mutex::new(None),
        });
        let flusher_stop = Arc::new(AtomicBool::new(false));
        let flusher = shared.opts.metrics_jsonl.clone().map(|path| {
            let stop = Arc::clone(&flusher_stop);
            std::thread::Builder::new()
                .name("polygamy-serve-metrics".into())
                .spawn(move || metrics_flusher(&path, &stop))
                .expect("spawn metrics flusher")
        });
        let dispatcher = shared.opts.coalesce.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("polygamy-serve-dispatch".into())
                .spawn(move || shared.coalescer.dispatch_loop())
                .expect("spawn dispatcher")
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("polygamy-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Self {
            shared,
            addr: local,
            accept: Some(accept),
            dispatcher,
            flusher,
            flusher_stop,
        })
    }

    /// The address the server actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Coalescing/admission counters so far.
    pub fn stats(&self) -> CoalesceStats {
        self.shared.coalescer.stats()
    }

    /// Begins a graceful drain from the host process (the wire's `S`
    /// frame does the same): stop accepting, refuse new requests, finish
    /// and flush everything already admitted. Idempotent; returns
    /// immediately — pair with [`Server::wait`].
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the server has fully drained (which requires a
    /// shutdown trigger — [`Server::shutdown`] or a client `S` frame) and
    /// every thread has exited; returns the final counters.
    pub fn wait(mut self) -> CoalesceStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // No new connections can spawn now; join the existing ones.
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned"));
        for h in conns {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Everything admitted has been answered: the drain is over.
        if let Some(started) = *self
            .shared
            .drain_started
            .lock()
            .expect("drain stamp poisoned")
        {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            conn_metrics().drain_ns.add(nanos);
        }
        // Stop the flusher last so its final line records post-drain state.
        // ordering: SeqCst publishes the stop flag after every drain-side
        // metric update above, so the flusher's final snapshot is complete.
        self.flusher_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        self.shared.coalescer.stats()
    }
}

/// Body of the `--metrics-jsonl` thread: appends one registry-snapshot
/// JSON line roughly every second, and a final line once `stop` is set
/// (after the drain completes, so the last line is the daemon's closing
/// state).
fn metrics_flusher(path: &PathBuf, stop: &AtomicBool) {
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    loop {
        // ordering: SeqCst pairs with the shutdown store — seeing `stop`
        // implies seeing the drained metrics the final line must record.
        let stopping = stop.load(Ordering::SeqCst);
        let line = polygamy_obs::global().snapshot().to_json();
        let _ = writeln!(file, "{line}");
        let _ = file.flush();
        if stopping {
            return;
        }
        for _ in 0..20 {
            // ordering: same SeqCst pairing as the loop-top load.
            if stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// Accepts until drain begins; non-blocking with a sleep tick so the
/// drain flag is observed promptly.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("polygamy-serve-conn".into())
                    .spawn(move || serve_connection(stream, &shared2))
                    .expect("spawn connection thread");
                shared.conns.lock().expect("conns poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// How one attempt to read the next frame ended.
enum NextFrame {
    /// A complete frame arrived.
    Frame(Frame),
    /// Close the connection quietly (clean EOF, drain while idle).
    Close,
    /// The peer exceeded the read timeout (idle or stalled mid-frame).
    TimedOut,
    /// Framing broke in a way that poisons the stream position.
    Fatal(FrameError),
}

/// Reads exactly `buf.len()` bytes with the connection's poll tick,
/// honouring the frame deadline and (while no byte of the current frame
/// has arrived) the drain flag.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    mut filled: usize,
    deadline: Instant,
    shared: &Shared,
    frame_started: bool,
) -> Result<usize, NextFrame> {
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && !frame_started {
                    NextFrame::Close
                } else {
                    NextFrame::Fatal(FrameError::TruncatedFrame)
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining() && filled == 0 && !frame_started {
                    return Err(NextFrame::Close);
                }
                if Instant::now() >= deadline {
                    return Err(NextFrame::TimedOut);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NextFrame::Fatal(FrameError::Io(e))),
        }
    }
    Ok(filled)
}

/// Reads the next frame, enforcing the read timeout: the deadline starts
/// when the wait starts and is *not* extended by partial progress, so a
/// drip-feeding client cannot hold a connection open indefinitely.
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> NextFrame {
    let deadline = Instant::now() + shared.opts.read_timeout;
    let mut prefix = [0u8; 4];
    if let Err(out) = read_full(stream, &mut prefix, 0, deadline, shared, false) {
        return out;
    }
    let length = u32::from_le_bytes(prefix);
    if length == 0 {
        return NextFrame::Fatal(FrameError::Empty);
    }
    if length > shared.opts.max_frame_bytes {
        return NextFrame::Fatal(FrameError::Oversize {
            declared: length,
            max: shared.opts.max_frame_bytes,
        });
    }
    let mut body = vec![0u8; length as usize];
    if let Err(out) = read_full(stream, &mut body, 0, deadline, shared, true) {
        return out;
    }
    let tag = body[0];
    body.remove(0);
    NextFrame::Frame(Frame { tag, payload: body })
}

fn send_error(stream: &mut TcpStream, err: &WireError) -> io::Result<()> {
    // Every error frame bumps its per-kind counter; the kind set is the
    // closed wire vocabulary of docs/serving.md §6, so this creates at
    // most six counters.
    polygamy_obs::global()
        .counter(&format!("{}{}", names::SERVE_ERRORS_PREFIX, err.error))
        .inc();
    let payload = serde_json::to_string(err).expect("wire errors serialize");
    write_frame(stream, FrameTag::Error, payload.as_bytes())
}

/// Decrements the live-connection gauge and counts the close on every
/// exit path out of [`serve_connection`].
struct ConnGuard;

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let metrics = conn_metrics();
        metrics.closed.inc();
        metrics.active.add(-1);
    }
}

/// The per-connection protocol state machine (`docs/serving.md` §4).
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let metrics = conn_metrics();
    metrics.opened.inc();
    metrics.active.add(1);
    let _guard = ConnGuard;
    // The poll tick bounds how stale the drain flag and deadline checks
    // can get; it must sit well under the read timeout.
    let tick =
        (shared.opts.read_timeout / 8).clamp(Duration::from_millis(5), Duration::from_millis(50));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    if write_frame(&mut stream, FrameTag::Hello, &shared.hello).is_err() {
        return;
    }
    loop {
        let frame = match next_frame(&mut stream, shared) {
            NextFrame::Frame(f) => f,
            NextFrame::Close | NextFrame::TimedOut => return,
            NextFrame::Fatal(e) => {
                // Best effort: tell the peer why before hanging up. After
                // a framing fault the stream position is unreliable, so
                // the connection always closes.
                let _ = send_error(&mut stream, &WireError::new("bad-frame", e.to_string()));
                return;
            }
        };
        match frame.known_tag() {
            Some(FrameTag::Query) => {
                if !handle_query(&mut stream, shared, &frame.payload) {
                    return;
                }
            }
            Some(FrameTag::Metrics) => {
                // A point-in-time registry snapshot, canonical JSON
                // (docs/serving.md §10). Served even while draining —
                // observing a drain is exactly when you want metrics.
                conn_metrics().metrics_frames.inc();
                let body = polygamy_obs::global().snapshot().to_json();
                if write_frame(&mut stream, FrameTag::Result, body.as_bytes()).is_err() {
                    return;
                }
            }
            Some(FrameTag::Shutdown) => {
                // Acknowledge, then drain the whole server. The ack is
                // written before drain begins so the shutting-down client
                // always hears back.
                let _ = write_frame(&mut stream, FrameTag::Result, b"{\"draining\":true}");
                shared.begin_drain();
                return;
            }
            Some(FrameTag::Hello) | Some(FrameTag::Result) | Some(FrameTag::Error) => {
                // Server-only frames arriving at the server: a confused
                // peer, but framing is intact — answer and keep serving.
                if send_error(
                    &mut stream,
                    &WireError::new(
                        "bad-frame",
                        format!("tag `{}` is not a client request", frame.tag as char),
                    ),
                )
                .is_err()
                {
                    return;
                }
            }
            None => {
                // Unknown tag: likely a newer client. Typed error, keep
                // the connection (forward-compatibility, §7).
                if send_error(
                    &mut stream,
                    &WireError::new(
                        "bad-frame",
                        format!("unknown frame tag byte 0x{:02x}", frame.tag),
                    ),
                )
                .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Handles one `Q` frame. Returns false when the connection must close.
fn handle_query(stream: &mut TcpStream, shared: &Shared, payload: &[u8]) -> bool {
    let src = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => {
            return send_error(
                stream,
                &WireError::new("bad-frame", "request payload is not valid UTF-8"),
            )
            .is_ok();
        }
    };
    if shared.draining() {
        let _ = send_error(
            stream,
            &WireError::new("shutting-down", "server is draining; no new requests"),
        );
        return false;
    }
    // Parse here, on the connection thread: a parse error never occupies
    // the dispatcher, and the error frame carries the same caret
    // diagnostic the REPL prints (docs/serving.md §6).
    let queries = match polygamy_core::pql::parse_batch(src) {
        Ok(qs) => qs,
        Err(e) => {
            return send_error(stream, &WireError::new("parse", e.render(src))).is_ok();
        }
    };
    if queries.is_empty() {
        // A comment-only batch is a valid, empty request.
        return write_frame(stream, FrameTag::Result, b"").is_ok();
    }
    let outcome = if shared.opts.coalesce {
        match shared.coalescer.submit(queries.clone()) {
            Ok(rx) => match rx.recv() {
                Ok(r) => r,
                Err(_) => {
                    let _ = send_error(
                        stream,
                        &WireError::new("internal", "dispatcher exited mid-request"),
                    );
                    return false;
                }
            },
            Err(rejection) => return report_rejection(stream, rejection),
        }
    } else {
        match shared.coalescer.execute_inline(&queries) {
            Ok(r) => r,
            Err(rejection) => return report_rejection(stream, rejection),
        }
    };
    match outcome {
        Ok(results) => {
            // One canonical JSON object per query, newline-separated, in
            // request order — each line is byte-identical to what
            // `polygamy-store query --json` prints for that query alone
            // (docs/serving.md §5).
            let body = queries
                .into_iter()
                .zip(results)
                .map(|(query, relationships)| {
                    PqlOutcome {
                        query,
                        relationships,
                        trace: None,
                    }
                    .to_json()
                })
                .collect::<Vec<_>>()
                .join("\n");
            write_frame(stream, FrameTag::Result, body.as_bytes()).is_ok()
        }
        Err(e) => send_error(stream, &WireError::new("query", e.to_string())).is_ok(),
    }
}

/// Renders an admission rejection; returns false when the connection
/// must close.
fn report_rejection(stream: &mut TcpStream, rejection: Rejection) -> bool {
    match rejection {
        Rejection::ShuttingDown => {
            let _ = send_error(
                stream,
                &WireError::new("shutting-down", "server is draining; no new requests"),
            );
            false
        }
        Rejection::TooLarge {
            queries,
            max_inflight,
        } => send_error(
            stream,
            &WireError::new(
                "overloaded",
                format!(
                    "request carries {queries} queries, above the --max-inflight cap of \
                     {max_inflight}; split the batch"
                ),
            ),
        )
        .is_ok(),
    }
}

//! Cross-connection batch coalescing (`docs/serving.md` §8).
//!
//! Every connection thread submits its parsed request here instead of
//! evaluating it. A single dispatcher thread drains the admission queue
//! and evaluates **everything that is waiting** as one flat
//! [`StoreSession::query_many`] call — so while one batch is being
//! evaluated, newly arriving requests pile up and form the next batch.
//! The executor's pair/clause dedup and the segment LRU thereby pay off
//! *across* connections, not just within one request, and a burst of N
//! one-query requests costs one pool dispatch instead of N.
//!
//! The guarantees the spec makes, and how this module keeps them:
//!
//! * **Determinism / byte-identity** — the flat executor's results are
//!   independent of batch composition and worker count (the determinism
//!   matrix in `tests/integration_determinism.rs` pins this), so a query
//!   answered inside a coalesced batch returns exactly the bytes it
//!   would have returned solo.
//! * **Error isolation** — `query_many` fails a whole batch on the first
//!   erroring query. A failed multi-request batch is re-dispatched one
//!   *request* at a time, so a request naming an unknown data set gets
//!   its own error frame and innocent neighbours still succeed.
//! * **Backpressure** — admission is capped at `max_inflight` *queries*
//!   (not requests). When the cap is reached, [`Coalescer::submit`]
//!   blocks the connection thread, which stops reading from its socket:
//!   TCP itself then pushes back on the client.
//! * **Drain** — after [`Coalescer::close`], new submissions are refused
//!   (`Rejection::ShuttingDown`), queued work is still dispatched, and
//!   the dispatcher exits once the queue is empty.

use polygamy_core::query::RelationshipQuery;
use polygamy_core::relationship::Relationship;
use polygamy_obs::{names, Counter, Gauge, Histogram, BATCH_SIZE_BUCKETS};
use polygamy_store::{StoreError, StoreSession};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Registry handles mirroring the coalescer's counters into the
/// process-wide snapshot (the `M` frame view of this module), resolved
/// once per process.
struct QueueMetrics {
    requests: Arc<Counter>,
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    batch_size: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    inflight: Arc<Gauge>,
}

fn queue_metrics() -> &'static QueueMetrics {
    static M: OnceLock<QueueMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = polygamy_obs::global();
        QueueMetrics {
            requests: r.counter(names::SERVE_REQUESTS),
            queries: r.counter(names::SERVE_QUERIES),
            batches: r.counter(names::SERVE_BATCHES),
            batch_size: r.histogram(names::SERVE_BATCH_SIZE, BATCH_SIZE_BUCKETS),
            queue_depth: r.gauge(names::SERVE_QUEUE_DEPTH),
            inflight: r.gauge(names::SERVE_INFLIGHT),
        }
    })
}

/// The per-request result: one relationship vector per query in the
/// request, or the store error that failed the request.
pub type BatchResult = Result<Vec<Vec<Relationship>>, StoreError>;

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// A single request carried more queries than `max_inflight` — it
    /// could never be admitted, so blocking would deadlock.
    TooLarge {
        /// Queries in the refused request.
        queries: usize,
        /// The admission cap.
        max_inflight: usize,
    },
}

/// One admitted request: its queries plus the channel its connection
/// thread is blocked on.
struct Pending {
    queries: Vec<RelationshipQuery>,
    tx: std::sync::mpsc::Sender<BatchResult>,
}

/// Admission-queue state guarded by one mutex.
struct State {
    queue: Vec<Pending>,
    /// Queries admitted but not yet answered (queued or evaluating).
    inflight: usize,
    open: bool,
}

/// Counters the server reports (`Server::stats`) and the load generator
/// folds into benchmark snapshots.
#[derive(Debug, Default)]
pub struct CoalesceCounters {
    /// Requests admitted.
    pub requests: AtomicU64,
    /// Individual queries admitted.
    pub queries: AtomicU64,
    /// `query_many` dispatches issued (fallback re-dispatches included).
    pub batches: AtomicU64,
    /// Largest number of queries evaluated in one dispatch.
    pub max_batch: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Requests admitted.
    pub requests: u64,
    /// Individual queries admitted.
    pub queries: u64,
    /// `query_many` dispatches issued.
    pub batches: u64,
    /// Largest single dispatch, in queries.
    pub max_batch: u64,
}

impl CoalesceStats {
    /// Mean queries per dispatch (0 when nothing was dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// The admission queue plus the session it dispatches against.
///
/// Connection threads call [`Coalescer::submit`] and block on the
/// returned receiver; the server runs [`Coalescer::dispatch_loop`] on a
/// dedicated thread. Tests may instead park submissions and call
/// [`Coalescer::dispatch_pending`] directly to force a deterministic
/// batch shape.
pub struct Coalescer {
    session: Arc<StoreSession>,
    state: Mutex<State>,
    /// Wakes the dispatcher when work arrives or the queue closes.
    work: Condvar,
    /// Wakes blocked submitters when in-flight work completes.
    space: Condvar,
    max_inflight: usize,
    counters: CoalesceCounters,
}

impl Coalescer {
    /// Creates a coalescer over `session` admitting at most
    /// `max_inflight` queries at a time (clamped to ≥ 1).
    pub fn new(session: Arc<StoreSession>, max_inflight: usize) -> Self {
        Self {
            session,
            state: Mutex::new(State {
                queue: Vec::new(),
                inflight: 0,
                open: true,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            max_inflight: max_inflight.max(1),
            counters: CoalesceCounters::default(),
        }
    }

    /// Submits one request (a non-empty list of queries). Blocks while
    /// the in-flight cap is reached; once admitted, returns the receiver
    /// the dispatcher will answer on.
    pub fn submit(
        &self,
        queries: Vec<RelationshipQuery>,
    ) -> Result<Receiver<BatchResult>, Rejection> {
        debug_assert!(!queries.is_empty(), "empty requests are answered inline");
        if queries.len() > self.max_inflight {
            return Err(Rejection::TooLarge {
                queries: queries.len(),
                max_inflight: self.max_inflight,
            });
        }
        let mut state = self.state.lock().expect("coalescer poisoned");
        loop {
            if !state.open {
                return Err(Rejection::ShuttingDown);
            }
            if state.inflight + queries.len() <= self.max_inflight {
                break;
            }
            state = self.space.wait(state).expect("coalescer poisoned");
        }
        state.inflight += queries.len();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let metrics = queue_metrics();
        metrics.requests.inc();
        metrics.queries.add(queries.len() as u64);
        metrics.inflight.add(queries.len() as i64);
        metrics.queue_depth.add(1);
        let (tx, rx) = channel();
        state.queue.push(Pending { queries, tx });
        drop(state);
        self.work.notify_one();
        Ok(rx)
    }

    /// Runs the dispatcher until [`Coalescer::close`] is called *and* the
    /// queue has drained — the body of the server's dispatcher thread.
    pub fn dispatch_loop(&self) {
        loop {
            let batch = {
                let mut state = self.state.lock().expect("coalescer poisoned");
                while state.queue.is_empty() && state.open {
                    state = self.work.wait(state).expect("coalescer poisoned");
                }
                if state.queue.is_empty() {
                    return; // closed and drained
                }
                std::mem::take(&mut state.queue)
            };
            queue_metrics().queue_depth.add(-(batch.len() as i64));
            self.evaluate(batch);
        }
    }

    /// Dispatches whatever is queued right now, once. Returns the number
    /// of requests evaluated. (Primarily for tests, which use it to pin
    /// an exact batch shape; the server uses [`Coalescer::dispatch_loop`].)
    pub fn dispatch_pending(&self) -> usize {
        let batch = std::mem::take(&mut self.state.lock().expect("coalescer poisoned").queue);
        let n = batch.len();
        queue_metrics().queue_depth.add(-(n as i64));
        self.evaluate(batch);
        n
    }

    /// Evaluates one request on the *calling* thread — the serial-dispatch
    /// baseline mode (`ServeOptions::coalesce = false`). Admission
    /// accounting, backpressure and drain refusal are identical to
    /// [`Coalescer::submit`]; only the dispatch differs: every request
    /// pays its own `query_many` call.
    pub fn execute_inline(&self, queries: &[RelationshipQuery]) -> Result<BatchResult, Rejection> {
        if queries.len() > self.max_inflight {
            return Err(Rejection::TooLarge {
                queries: queries.len(),
                max_inflight: self.max_inflight,
            });
        }
        let mut state = self.state.lock().expect("coalescer poisoned");
        loop {
            if !state.open {
                return Err(Rejection::ShuttingDown);
            }
            if state.inflight + queries.len() <= self.max_inflight {
                break;
            }
            state = self.space.wait(state).expect("coalescer poisoned");
        }
        state.inflight += queries.len();
        drop(state);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let metrics = queue_metrics();
        metrics.requests.inc();
        metrics.queries.add(queries.len() as u64);
        metrics.inflight.add(queries.len() as i64);
        self.note_dispatch(queries.len());
        let result = self.session.query_many(queries);
        let mut state = self.state.lock().expect("coalescer poisoned");
        state.inflight = state.inflight.saturating_sub(queries.len());
        drop(state);
        metrics.inflight.add(-(queries.len() as i64));
        self.space.notify_all();
        Ok(result)
    }

    /// Refuses new submissions and wakes everyone; queued work still
    /// runs. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("coalescer poisoned").open = false;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// A snapshot of the admission/dispatch counters.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Evaluates a drained batch: one flat `query_many` over every
    /// request's queries, split back per request; on error, falls back to
    /// per-request dispatch so the failure is isolated.
    fn evaluate(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let flat: Vec<RelationshipQuery> = batch
            .iter()
            .flat_map(|p| p.queries.iter().cloned())
            .collect();
        self.note_dispatch(flat.len());
        match self.session.query_many(&flat) {
            Ok(mut results) => {
                // Split the flat result vector back into per-request runs,
                // from the tail to avoid re-allocating.
                for pending in batch.iter().rev() {
                    let run = results.split_off(results.len() - pending.queries.len());
                    let _ = pending.tx.send(Ok(run));
                }
            }
            Err(_) if batch.len() > 1 => {
                // Which request poisoned the batch is unknowable from one
                // error; re-dispatch per request so only the guilty one
                // fails. Results stay byte-identical: the executor is
                // batch-composition-independent.
                for pending in &batch {
                    self.note_dispatch(pending.queries.len());
                    let _ = pending.tx.send(self.session.query_many(&pending.queries));
                }
            }
            Err(e) => {
                let _ = batch[0].tx.send(Err(e));
            }
        }
        let answered: usize = batch.iter().map(|p| p.queries.len()).sum();
        let mut state = self.state.lock().expect("coalescer poisoned");
        state.inflight = state.inflight.saturating_sub(answered);
        drop(state);
        queue_metrics().inflight.add(-(answered as i64));
        self.space.notify_all();
    }

    /// The single point every dispatch passes through — the registry's
    /// batch-size histogram observes exactly one sample per `query_many`
    /// call, so its total count equals `serve.batches` and its sum equals
    /// the queries dispatched (re-dispatches included).
    fn note_dispatch(&self, queries: usize) {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .max_batch
            .fetch_max(queries as u64, Ordering::Relaxed);
        let metrics = queue_metrics();
        metrics.batches.inc();
        metrics.batch_size.record(queries as u64);
    }
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("max_inflight", &self.max_inflight)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

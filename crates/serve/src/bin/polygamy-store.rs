//! The `polygamy-store` command line: build, inspect, query and serve
//! store files.
//!
//! ```text
//! polygamy-store build <path> [--quick] [--years N] [--scale S] [--no-fields]
//!                [--shards N]
//! polygamy-store shard <monolith.plst> <out.plst> [--shards N]
//! polygamy-store merge <catalog.plst> <out.plst>
//! polygamy-store inspect <path> [--verify]
//! polygamy-store query <path> <left> <right> [--permutations N]
//!                [--min-score X] [--include-insignificant] [--json] [--trace]
//!                [--lazy [--mmap]]
//! polygamy-store query <path> --batch <left:right>... [--permutations N]
//!                [--min-score X] [--include-insignificant] [--json] [--trace]
//!                [--lazy [--mmap]]
//! polygamy-store query <path> --pql "<query>" [--json] [--trace] [--lazy [--mmap]]
//! polygamy-store query <path> --file <queries.pql> [--json] [--trace] [--lazy [--mmap]]
//! polygamy-store repl <path> [--lazy [--mmap]]
//! polygamy-store serve <path> [--addr HOST:PORT] [--max-inflight N]
//!                [--read-timeout-ms N] [--max-frame-bytes N] [--no-coalesce]
//!                [--metrics-jsonl <path>] [--lazy [--mmap]]
//! ```
//!
//! `--no-fields` drops the raw scalar fields from the index (features and
//! thresholds only): stores shrink ~16×, and every clause except
//! user-defined thresholds still evaluates.
//!
//! `build` indexes the synthetic urban corpus from `polygamy_datagen` and
//! writes it as a store — with `--shards N` a *sharded* store: one
//! self-contained shard file per partition plus a shard catalog at the
//! given path. `shard` migrates an existing monolithic store into a
//! sharded layout and `merge` reassembles a sharded store into one file;
//! both copy geometry and segment bytes verbatim, so
//! `shard` → `merge` reproduces the original monolith byte-for-byte.
//! Every other subcommand auto-detects which kind of file it was given.
//!
//! `inspect` prints the header, catalog and segment
//! directory without decoding any segment (`--verify` additionally reads
//! every segment and checks its checksum); on a sharded store it prints
//! the shard layout with per-shard availability instead, and `--verify`
//! checks every shard (failing on the first unavailable one). `query`
//! opens a serving session
//! and evaluates one relationship query — or, with `--batch`, a whole list
//! of `left:right` pairs through `StoreSession::query_many`, which runs
//! every pair's candidate evaluations on one shared worker pool instead of
//! paying session and pool startup per query.
//!
//! `--json` switches the query report from the human-readable lines to the
//! canonical one-JSON-object-per-query rendering defined in
//! `docs/serving.md` §5 — byte-identical to what the network daemon
//! returns for the same queries, so offline and served output diff clean.
//!
//! `--lazy` opens the session demand-paged: segments are read (and their
//! checksums verified) only when a query touches them, so open cost is
//! O(header + manifest + geometry) regardless of corpus size. `--mmap`
//! additionally serves segment bytes as borrowed views of a read-only
//! memory map instead of copying them (Unix; falls back to positioned
//! reads elsewhere). Results are byte-identical to the default eager mode.
//!
//! `--pql` takes a full PQL query (see `docs/pql.md`) — collections *and*
//! clause in one string, so none of the ad-hoc clause flags apply.
//! `--file` compiles a PQL batch file (one query per line, `#` comments)
//! straight into the same shared-pool `query_many` path. `repl` serves
//! parsed PQL queries interactively from one long-lived session: parse
//! errors print caret diagnostics and leave the session running.
//!
//! `--trace` (and the PQL `explain` prefix in the REPL) installs a trace
//! collector around execution and prints the per-stage span timings and
//! counters (`docs/observability.md`); the trace goes to stderr (or a
//! separate `trace:` line in the REPL), so the query output itself stays
//! byte-identical to an untraced run.
//!
//! `serve` runs the long-lived network daemon from `polygamy_serve`: PQL
//! in, canonical JSON out, concurrent requests coalesced into one flat
//! `query_many` dispatch. The wire protocol, limits and shutdown
//! semantics are specified in `docs/serving.md`; the daemon exits after a
//! client sends the shutdown frame (e.g. `loadgen --shutdown`).
//! `--metrics-jsonl <path>` appends a registry-snapshot JSON line per
//! second (and a final one at drain) for unattended runs; clients can
//! also poll the `M` metrics frame at any time.

use polygamy_core::pql::parse_query_maybe_explain;
use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_datagen::{urban_collection, UrbanConfig};
use polygamy_obs::{names, trace};
use polygamy_serve::{ServeOptions, Server};
use polygamy_store::{
    execute_pql_batch, execute_pql_batch_traced, execute_pql_query, execute_pql_query_traced,
    is_sharded, merge_shards, save_sharded, shard_store, LazyIndex, LoadFilter, PqlOutcome,
    PqlServeError, ShardCatalog, ShardedLazy, SourceBackend, Store, StoreSession,
    SHARD_CATALOG_VERSION,
};
use std::io::{BufRead, IsTerminal, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: polygamy-store <build|shard|merge|inspect|query|repl|serve> <path> [args]\n\
                 \x20 build <path> [--quick] [--years N] [--scale S] [--no-fields] [--shards N]\n\
                 \x20 shard <monolith.plst> <out.plst> [--shards N]\n\
                 \x20 merge <catalog.plst> <out.plst>\n\
                 \x20 inspect <path> [--verify]\n\
                 \x20 query <path> <left> <right> [--permutations N] \
                 [--min-score X] [--include-insignificant] [--json] [--trace] [--lazy [--mmap]]\n\
                 \x20 query <path> --batch <left:right>... [--permutations N] \
                 [--min-score X] [--include-insignificant] [--json] [--trace] [--lazy [--mmap]]\n\
                 \x20 query <path> --pql \"between taxi and * where score >= 0.6\" \
                 [--json] [--trace] [--lazy [--mmap]]\n\
                 \x20 query <path> --file <queries.pql> [--json] [--trace] [--lazy [--mmap]]\n\
                 \x20 repl <path> [--lazy [--mmap]]\n\
                 \x20 serve <path> [--addr HOST:PORT] [--max-inflight N] \
                 [--read-timeout-ms N] [--max-frame-bytes N] [--no-coalesce] \
                 [--metrics-jsonl <path>] [--lazy [--mmap]]"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("polygamy-store: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("build: missing <path>")?;
    let quick = args.iter().any(|a| a == "--quick");
    let years: usize = match flag_value(args, "--years") {
        Some(v) => v.parse().map_err(|_| "build: --years expects an integer")?,
        None => {
            if quick {
                1
            } else {
                2
            }
        }
    };
    let scale: f64 = match flag_value(args, "--scale") {
        Some(v) => v.parse().map_err(|_| "build: --scale expects a number")?,
        None => {
            if quick {
                0.02
            } else {
                0.2
            }
        }
    };
    let collection = urban_collection(UrbanConfig {
        n_years: years,
        scale,
        extra_weather_attrs: if quick { 0 } else { 8 },
        ..UrbanConfig::default()
    });
    let mut config = if quick {
        Config::fast_test()
    } else {
        Config::default()
    };
    if args.iter().any(|a| a == "--no-fields") {
        config.keep_fields = false;
    }
    let mut dp = DataPolygamy::new(collection.geometry().clone(), config);
    for d in &collection.datasets {
        dp.add_dataset(d.clone());
    }
    let report = dp.build_index();
    println!(
        "indexed {} data sets in {:.2}s",
        report.per_dataset.len(),
        report.total_secs
    );
    let index = dp.index().map_err(|e| e.to_string())?;
    if let Some(n) = flag_value(args, "--shards") {
        let n_shards: usize = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("build: --shards expects a positive integer")?;
        let catalog =
            save_sharded(path, dp.geometry(), index, n_shards).map_err(|e| e.to_string())?;
        print_shard_summary(path, &catalog)?;
        return Ok(());
    }
    let store = Store::save(path, dp.geometry(), index).map_err(|e| e.to_string())?;
    println!(
        "wrote {path}: {} bytes, {} segments",
        store.file_bytes().map_err(|e| e.to_string())?,
        store.manifest().segments.len()
    );
    Ok(())
}

/// One line per shard file: name, size and owned data sets. Shared by
/// `build --shards` and `shard`, which produce identical layouts.
fn print_shard_summary(catalog_path: &str, catalog: &ShardCatalog) -> Result<(), String> {
    println!(
        "wrote shard catalog {catalog_path}: {} data set(s) over {} shard(s)",
        catalog.datasets.len(),
        catalog.n_shards()
    );
    for shard in 0..catalog.n_shards() {
        let file = catalog.shard_path(std::path::Path::new(catalog_path), shard);
        let bytes = std::fs::metadata(&file).map_err(|e| e.to_string())?.len();
        let owned: Vec<&str> = catalog
            .datasets_of_shard(shard)
            .into_iter()
            .map(|di| catalog.datasets[di].meta.name.as_str())
            .collect();
        println!(
            "  shard {shard}: {} ({bytes} bytes) — {}",
            file.display(),
            if owned.is_empty() {
                "no data sets".to_string()
            } else {
                owned.join(", ")
            }
        );
    }
    Ok(())
}

/// `shard <monolith> <out> [--shards N]`: migrate a monolithic store into
/// a sharded layout, copying geometry and segment bytes verbatim.
fn cmd_shard(args: &[String]) -> Result<(), String> {
    let monolith = args.first().ok_or("shard: missing <monolith.plst>")?;
    let out = args.get(1).ok_or("shard: missing <out.plst>")?;
    let n_shards: usize = match flag_value(args, "--shards") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("shard: --shards expects a positive integer")?,
        None => 2,
    };
    if is_sharded(monolith).map_err(|e| e.to_string())? {
        return Err(format!(
            "shard: {monolith} is already a shard catalog; merge it first"
        ));
    }
    let catalog = shard_store(monolith, out, n_shards).map_err(|e| e.to_string())?;
    print_shard_summary(out, &catalog)?;
    Ok(())
}

/// `merge <catalog> <out>`: reassemble a sharded store into one monolith.
/// Byte-for-byte inverse of `shard`.
fn cmd_merge(args: &[String]) -> Result<(), String> {
    let catalog_path = args.first().ok_or("merge: missing <catalog.plst>")?;
    let out = args.get(1).ok_or("merge: missing <out.plst>")?;
    if !is_sharded(catalog_path).map_err(|e| e.to_string())? {
        return Err(format!("merge: {catalog_path} is not a shard catalog"));
    }
    let store = merge_shards(catalog_path, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} bytes, {} segments",
        store.file_bytes().map_err(|e| e.to_string())?,
        store.manifest().segments.len()
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("inspect: missing <path>")?;
    if is_sharded(path).map_err(|e| e.to_string())? {
        return cmd_inspect_sharded(path, args);
    }
    let store = Store::open(path).map_err(|e| e.to_string())?;
    let header = store.header();
    let manifest = store.manifest();
    println!(
        "store {path}: format v{}, {} bytes on disk",
        header.version,
        store.file_bytes().map_err(|e| e.to_string())?
    );
    println!(
        "manifest: offset {} len {} fnv {:#018x}",
        header.manifest_offset, header.manifest_len, header.manifest_checksum
    );
    println!("catalog ({} data sets):", manifest.datasets.len());
    for (di, d) in manifest.datasets.iter().enumerate() {
        println!(
            "  [{di}] {:<14} {:>9} records, {:>6} specs, {:>10} segment bytes",
            d.meta.name,
            d.n_records,
            d.n_specs,
            manifest.dataset_disk_bytes(di),
        );
    }
    println!("segments ({}):", manifest.segments.len());
    let mut payload_total: u64 = 0;
    for s in &manifest.segments {
        payload_total += s.loc.len;
        println!(
            "  {:<14} {:<14} {:<22} offset {:>10} len {:>9} fnv {:#018x}",
            manifest.datasets[s.dataset_index].meta.name,
            s.function,
            s.resolution.label(),
            s.loc.offset,
            s.loc.len,
            s.loc.checksum,
        );
    }
    println!(
        "segment payload: {payload_total} bytes across {} segment(s), geometry {} bytes",
        manifest.segments.len(),
        manifest.geometry.len
    );
    if args.iter().any(|a| a == "--verify") {
        // Route the force-check through the demand-paged reader so the
        // exact serving read path is what gets exercised.
        let lazy = LazyIndex::new(store, &LoadFilter::all()).map_err(|e| e.to_string())?;
        let checked = lazy.verify_all().map_err(|e| e.to_string())?;
        println!(
            "verify: geometry + {checked} segment(s) OK ({} bytes read)",
            lazy.store().source().bytes_fetched()
        );
    }
    // This process's registry view: how many bytes inspection itself
    // fetched, and any cache/fault traffic a --verify pass generated.
    let snap = polygamy_obs::global().snapshot();
    println!(
        "registry: {} byte(s) fetched, {} segment fault(s), {} segment cache hit(s), \
         {} eviction(s), {} checksum verification(s) ({} failed)",
        snap.counter(names::STORE_BYTES_FETCHED),
        snap.counter(names::STORE_SEGMENT_FAULTS),
        snap.counter(names::STORE_SEGMENT_CACHE_HITS),
        snap.counter(names::STORE_SEGMENT_EVICTIONS),
        snap.counter(names::STORE_CHECKSUM_VERIFICATIONS),
        snap.counter(names::STORE_CHECKSUM_FAILURES),
    );
    Ok(())
}

/// `inspect` on a shard catalog: the shard layout with per-shard
/// availability, probed through the same demand-paged open the serving
/// path uses. `--verify` checksums every segment of every shard and
/// fails on the first unavailable one.
fn cmd_inspect_sharded(path: &str, args: &[String]) -> Result<(), String> {
    let catalog = ShardCatalog::read(path).map_err(|e| e.to_string())?;
    println!(
        "shard catalog {path}: format v{SHARD_CATALOG_VERSION}, {} data set(s) over {} shard(s)",
        catalog.datasets.len(),
        catalog.n_shards()
    );
    println!("catalog ({} data sets):", catalog.datasets.len());
    for (di, d) in catalog.datasets.iter().enumerate() {
        println!(
            "  [{di}] {:<14} shard {:>2}, {:>9} records, {:>6} specs",
            d.meta.name, catalog.shard_of[di], d.n_records, d.n_specs,
        );
    }
    // Availability is probed exactly as serving would see it: a degraded
    // open that records each broken shard instead of failing outright.
    let lazy = ShardedLazy::open(path, &LoadFilter::all(), SourceBackend::default())
        .map_err(|e| e.to_string())?;
    println!("shards ({}):", catalog.n_shards());
    for shard in 0..catalog.n_shards() {
        let file = catalog.shard_path(std::path::Path::new(path), shard);
        let status = match lazy.unavailable_reason(shard) {
            None => format!(
                "available ({} bytes)",
                std::fs::metadata(&file).map_err(|e| e.to_string())?.len()
            ),
            Some(reason) => format!("UNAVAILABLE — {reason}"),
        };
        let owned: Vec<&str> = catalog
            .datasets_of_shard(shard)
            .into_iter()
            .map(|di| catalog.datasets[di].meta.name.as_str())
            .collect();
        println!(
            "  shard {shard}: {} — {status} — {}",
            file.display(),
            if owned.is_empty() {
                "no data sets".to_string()
            } else {
                owned.join(", ")
            }
        );
    }
    if args.iter().any(|a| a == "--verify") {
        let checked = lazy.verify_all().map_err(|e| e.to_string())?;
        println!(
            "verify: geometry + {checked} segment(s) OK across {} shard(s) ({} bytes read)",
            catalog.n_shards(),
            lazy.bytes_fetched()
        );
    }
    Ok(())
}

/// The session open mode requested by `--lazy` / `--mmap`.
fn open_session(path: &str, args: &[String]) -> Result<StoreSession, String> {
    let lazy = args.iter().any(|a| a == "--lazy");
    let mmap = args.iter().any(|a| a == "--mmap");
    if mmap && !lazy {
        return Err("--mmap requires --lazy (the eager loader copies segments anyway)".into());
    }
    if lazy {
        let backend = if mmap {
            SourceBackend::Mmap
        } else {
            SourceBackend::PositionedRead
        };
        StoreSession::open_lazy_with(path, Config::default(), &LoadFilter::all(), backend)
            .map_err(|e| e.to_string())
    } else {
        StoreSession::open(path).map_err(|e| e.to_string())
    }
}

/// Parse errors render their caret diagnostic; execution errors print as
/// one line.
fn render_pql_error(e: PqlServeError, src: &str) -> String {
    match e {
        PqlServeError::Parse(e) => e.render(src),
        PqlServeError::Execute(e) => e.to_string(),
    }
}

/// The query flags that consume a value — the single source of truth for
/// both clause parsing and positional-argument scanning, so adding a flag
/// here keeps its value from being misread as a data set name.
const QUERY_VALUE_FLAGS: [&str; 4] = ["--permutations", "--min-score", "--pql", "--file"];

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query: missing <path>")?;
    if args.iter().any(|a| a == "--pql" || a == "--file") {
        return cmd_query_pql(path, args);
    }
    let mut clause = Clause::default();
    if let Some(p) = flag_value(args, "--permutations") {
        clause = clause.permutations(
            p.parse()
                .map_err(|_| "query: --permutations expects an integer")?,
        );
    }
    if let Some(s) = flag_value(args, "--min-score") {
        clause = clause.min_score(
            s.parse()
                .map_err(|_| "query: --min-score expects a number")?,
        );
    }
    if args.iter().any(|a| a == "--include-insignificant") {
        clause = clause.include_insignificant();
    }
    let positionals = positional_args(&args[1..]);

    let pairs: Vec<(String, String)> = if args.iter().any(|a| a == "--batch") {
        if positionals.is_empty() {
            return Err("query: --batch expects one or more <left:right> pairs".into());
        }
        positionals
            .iter()
            .map(|spec| {
                spec.split_once(':')
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .filter(|(l, r)| !l.is_empty() && !r.is_empty())
                    .ok_or_else(|| format!("query: --batch pair '{spec}' is not <left:right>"))
            })
            .collect::<Result<_, _>>()?
    } else {
        let left = positionals
            .first()
            .ok_or("query: missing <left> data set")?;
        let right = positionals
            .get(1)
            .ok_or("query: missing <right> data set")?;
        vec![(left.to_string(), right.to_string())]
    };

    let session = open_session(path, args)?;
    let queries: Vec<RelationshipQuery> = pairs
        .iter()
        .map(|(l, r)| {
            RelationshipQuery::between(&[l.as_str()], &[r.as_str()]).with_clause(clause.clone())
        })
        .collect();
    // One query_many call: the whole batch shares a single worker pool.
    // With --trace a collector wraps the call; results are byte-identical
    // either way, and the trace goes to stderr so stdout stays canonical.
    let results = if args.iter().any(|a| a == "--trace") {
        let (results, t) = trace::record(|| session.query_many(&queries));
        eprintln!("trace: {}", t.to_json());
        results.map_err(|e| e.to_string())?
    } else {
        session.query_many(&queries).map_err(|e| e.to_string())?
    };
    if args.iter().any(|a| a == "--json") {
        for (query, relationships) in queries.into_iter().zip(results) {
            let outcome = PqlOutcome {
                query,
                relationships,
                trace: None,
            };
            println!("{}", outcome.to_json());
        }
    } else {
        for ((left, right), rels) in pairs.iter().zip(&results) {
            println!("{} relationship(s) between {left} and {right}:", rels.len());
            for rel in rels {
                println!("  {rel}");
            }
        }
    }
    Ok(())
}

/// `query --pql "<text>"` / `query --file <queries.pql>`: the whole query
/// — collections and clause — travels as PQL through the same shared
/// execute-and-render helper (`polygamy_store::pql_exec`) the REPL and
/// the network daemon use, so all three paths render identical output.
fn cmd_query_pql(path: &str, args: &[String]) -> Result<(), String> {
    let text = flag_value(args, "--pql");
    let file = flag_value(args, "--file");
    if text.is_some() && file.is_some() {
        return Err("query: --pql and --file are mutually exclusive".into());
    }
    // A PQL query carries its own clause; mixing in the ad-hoc flags would
    // silently lose one side or the other.
    for flag in [
        "--batch",
        "--permutations",
        "--min-score",
        "--include-insignificant",
    ] {
        if args.iter().any(|a| a == flag) {
            return Err(format!(
                "query: {flag} cannot be combined with --pql/--file; \
                 express the clause in the query text (see docs/pql.md)"
            ));
        }
    }
    if !positional_args(&args[1..]).is_empty() {
        return Err("query: --pql/--file take no positional data-set arguments".into());
    }

    let session = open_session(path, args)?;
    let traced = args.iter().any(|a| a == "--trace");
    let outcomes = match (text, file) {
        (Some(src), None) => {
            let run = if traced {
                execute_pql_query_traced
            } else {
                execute_pql_query
            };
            run(&session, &src)
                .map(|o| vec![o])
                .map_err(|e| render_pql_error(e, &src))?
        }
        (None, Some(p)) => {
            let src =
                std::fs::read_to_string(&p).map_err(|e| format!("query: cannot read {p}: {e}"))?;
            let run = if traced {
                execute_pql_batch_traced
            } else {
                execute_pql_batch
            };
            let outcomes = run(&session, &src).map_err(|e| render_pql_error(e, &src))?;
            if outcomes.is_empty() {
                return Err("query: the batch file contains no queries".into());
            }
            outcomes
        }
        // The flag was passed as the last argument, with nothing after it.
        (None, None) => {
            return Err("query: --pql expects a query string and --file a path".into());
        }
        (Some(_), Some(_)) => unreachable!("rejected above"),
    };
    let json = args.iter().any(|a| a == "--json");
    for outcome in &outcomes {
        if json {
            println!("{}", outcome.to_json());
        } else {
            println!("{}", outcome.render_text());
        }
    }
    // A traced batch shares one whole-batch trace; print it once, on
    // stderr, so stdout stays byte-identical to the untraced run.
    if let Some(t) = outcomes.first().and_then(|o| o.trace.as_ref()) {
        eprintln!("trace: {}", t.to_json());
    }
    Ok(())
}

/// `repl <path>`: an interactive PQL loop over one long-lived serving
/// session — open the store once, then parse and serve a query per line.
/// Parse errors render caret diagnostics and keep the session alive.
fn cmd_repl(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("repl: missing <path>")?;
    let session = open_session(path, args)?;
    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!(
            "polygamy-store repl — {} data set(s) {} from {path}: {}",
            session.loaded_datasets().len(),
            if session.is_lazy() {
                "served lazily"
            } else {
                "loaded"
            },
            session.loaded_datasets().join(", ")
        );
        println!("type a PQL query, or :help / :quit");
    }
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        if interactive {
            print!("pql> ");
            std::io::stdout().flush().map_err(|e| e.to_string())?;
        }
        line.clear();
        let read = stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        if read == 0 {
            break; // EOF
        }
        let input = line.trim();
        if input.is_empty() || input.starts_with('#') {
            continue;
        }
        match input {
            ":quit" | ":q" | ":exit" => break,
            ":help" | ":h" => {
                println!(
                    "PQL: between <collection> and <collection> [where <predicates>]\n\
                     \x20 e.g. between taxi, weather and * where score >= 0.6 and \
                     class = salient\n\
                     \x20 prefix with `explain` to append a trace report \
                     (results are unchanged)\n\
                     \x20 see docs/pql.md for the full grammar\n\
                     commands: :datasets  list served data sets\n\
                     \x20         :help      this text\n\
                     \x20         :quit      exit"
                );
            }
            ":datasets" => {
                for name in session.loaded_datasets() {
                    println!("{name}");
                }
            }
            _ => repl_eval(&session, input),
        }
    }
    Ok(())
}

/// Parses and serves one REPL line through the shared helper; failures
/// print and return. A leading `explain` runs the query with a trace
/// collector installed and appends the trace report — the results
/// themselves are byte-identical to the plain run.
fn repl_eval(session: &StoreSession, src: &str) {
    let (query, explain) = match parse_query_maybe_explain(src) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{}", e.render(src));
            return;
        }
    };
    // Re-execute from the canonical rendering: `parse(print(q)) == q`,
    // and the explain prefix never reaches the execution path.
    let canonical = polygamy_core::pql::to_pql(&query);
    let result = if explain {
        execute_pql_query_traced(session, &canonical)
    } else {
        execute_pql_query(session, &canonical)
    };
    match result {
        Ok(outcome) => {
            println!("{}", outcome.render_text());
            if let Some(t) = &outcome.trace {
                println!("trace: {}", t.to_json());
            }
        }
        Err(PqlServeError::Parse(e)) => eprintln!("{}", e.render(&canonical)),
        Err(PqlServeError::Execute(e)) => eprintln!("polygamy-store: {e}"),
    }
}

/// `serve <path>`: the long-running network daemon (`docs/serving.md`).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("serve: missing <path>")?;
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7461".into());
    let mut opts = ServeOptions::default();
    if let Some(v) = flag_value(args, "--max-inflight") {
        opts.max_inflight = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("serve: --max-inflight expects a positive integer")?;
    }
    if let Some(v) = flag_value(args, "--read-timeout-ms") {
        opts.read_timeout = Duration::from_millis(
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("serve: --read-timeout-ms expects a positive integer")?,
        );
    }
    if let Some(v) = flag_value(args, "--max-frame-bytes") {
        opts.max_frame_bytes = v
            .parse::<u32>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("serve: --max-frame-bytes expects a positive integer")?;
    }
    if args.iter().any(|a| a == "--no-coalesce") {
        opts.coalesce = false;
    }
    if let Some(v) = flag_value(args, "--metrics-jsonl") {
        opts.metrics_jsonl = Some(std::path::PathBuf::from(v));
    }
    let session = Arc::new(open_session(path, args)?);
    let server = Server::bind(addr.as_str(), Arc::clone(&session), opts.clone())
        .map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    println!(
        "polygamy-serve: serving {} data set(s) from {path} on {} \
         (coalescing {}, max-inflight {}, read timeout {:?})",
        session.loaded_datasets().len(),
        server.local_addr(),
        if opts.coalesce { "on" } else { "off" },
        opts.max_inflight,
        opts.read_timeout,
    );
    std::io::stdout().flush().ok();
    let stats = server.wait();
    println!(
        "polygamy-serve: drained — {} request(s), {} query(ies) in {} dispatch(es), \
         largest {} (mean {:.2} queries/dispatch)",
        stats.requests,
        stats.queries,
        stats.batches,
        stats.max_batch,
        stats.mean_batch(),
    );
    Ok(())
}

/// The non-flag arguments, with each [`QUERY_VALUE_FLAGS`] value skipped.
fn positional_args(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if QUERY_VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
        } else if !arg.starts_with("--") {
            out.push(arg);
        }
    }
    out
}

//! # polygamy-serve — the network PQL daemon
//!
//! The paper's interactive model (Section 5.3) assumes many analysts
//! querying one shared index. This crate is that serving layer: a
//! long-running TCP daemon speaking a simple length-prefixed protocol —
//! PQL text in, canonical JSON out, typed error frames — over **one**
//! shared [`polygamy_store::StoreSession`] (eager or lazy demand-paged),
//! so every connection benefits from the same segment LRU and query
//! cache.
//!
//! The **normative wire specification** lives in
//! [`docs/serving.md`](https://github.com/paper-repro/data-polygamy/blob/main/docs/serving.md)
//! at the repository root — frame layout, payload schemas, coalescing
//! semantics, the limits table and the versioning policy. The modules
//! here cite its sections; where prose and code disagree, the spec wins
//! and the code is wrong.
//!
//! ## Batch coalescing
//!
//! The core mechanism ([`coalesce`]): requests from concurrent
//! connections are *admitted into a queue*, and a single dispatcher
//! evaluates everything waiting as one flat
//! [`StoreSession::query_many`](polygamy_store::StoreSession::query_many)
//! call. The flat executor's pair/clause dedup and the store's segment
//! cache therefore pay off **across users**, not just within one batch —
//! and because the executor is deterministic and batch-composition
//! independent, a coalesced response is byte-identical to the same query
//! served solo (or offline via `polygamy-store query --json`).
//!
//! ## Quick start
//!
//! ```sh
//! polygamy-store serve city.plst --addr 127.0.0.1:7461 --lazy
//! ```
//!
//! then, from any process:
//!
//! ```no_run
//! use polygamy_serve::{Client, Response};
//!
//! let mut client = Client::connect("127.0.0.1:7461").unwrap();
//! match client.request("between taxi and weather where score >= 0.6").unwrap() {
//!     Response::Results(json_lines) => println!("{json_lines}"),
//!     Response::Error(e) => eprintln!("{}: {}", e.error, e.message),
//! }
//! ```
//!
//! The `polygamy-store` CLI binary itself lives in this crate (its
//! `serve` subcommand needs the daemon; everything else it does comes
//! from `polygamy_store`), and `loadgen` in `crates/bench` drives a
//! daemon with N concurrent clients to measure served-queries/sec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coalesce;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Response};
pub use coalesce::{CoalesceStats, Coalescer, Rejection};
pub use protocol::{Frame, FrameError, FrameTag, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{Hello, ServeOptions, Server, WireError};

//! The wire codec: length-prefixed, tagged frames.
//!
//! This module implements §2–§4 of the normative protocol specification
//! in `docs/serving.md`. Everything that travels a connection is a
//! **frame**:
//!
//! ```text
//! ┌────────────────────┬──────────┬──────────────────────┐
//! │ length u32 LE      │ tag u8   │ payload (length − 1) │
//! └────────────────────┴──────────┴──────────────────────┘
//! ```
//!
//! The length prefix counts the tag byte plus the payload, so a frame
//! occupies exactly `4 + length` bytes on the wire and `length >= 1`
//! always. Payloads are UTF-8 text (PQL in requests, JSON elsewhere);
//! the codec itself treats them as bytes — UTF-8 validation is the
//! server's concern, so a framing-level reader never needs to buffer a
//! partially valid string.
//!
//! ```
//! use polygamy_serve::protocol::{read_frame, write_frame, Frame, FrameTag, MAX_FRAME_BYTES};
//!
//! let mut wire = Vec::new();
//! write_frame(&mut wire, FrameTag::Query, b"between taxi and *").unwrap();
//! assert_eq!(wire.len(), 4 + 1 + 18);
//! let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES).unwrap().unwrap();
//! assert_eq!(frame, Frame::new(FrameTag::Query, b"between taxi and *".to_vec()));
//! // Clean EOF at a frame boundary is "no more frames", not an error.
//! assert!(read_frame(&mut [].as_slice(), MAX_FRAME_BYTES).unwrap().is_none());
//! ```

use std::io::{self, Read, Write};

/// Protocol version, exchanged in the `hello` frame (`docs/serving.md`
/// §7). Bumped on any change to the frame layout, tag set, or payload
/// schemas that an existing client could misread; clients reject a
/// mismatched version instead of guessing.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on `length` (tag + payload) a peer will accept, 1 MiB.
/// Far above any real PQL batch or response on one side, far below an
/// allocation a garbage length prefix could weaponize on the other.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// The one-byte frame tags of protocol version 1 (`docs/serving.md` §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameTag {
    /// `H` — server → client, once per connection, immediately after
    /// accept: JSON handshake (protocol version, served data sets).
    Hello = b'H',
    /// `Q` — client → server: a PQL batch (one query per line) to
    /// evaluate.
    Query = b'Q',
    /// `R` — server → client: success payload. For a `Q` request: one
    /// canonical JSON object per query, newline-separated, in request
    /// order. For a `S` request: a drain acknowledgement object.
    Result = b'R',
    /// `E` — server → client: a typed error object (`docs/serving.md`
    /// §6). The connection stays open unless the spec says otherwise.
    Error = b'E',
    /// `S` — client → server: begin graceful shutdown (drain in-flight
    /// work, refuse new requests, exit).
    Shutdown = b'S',
    /// `M` — client → server: request a metrics snapshot. Answered with
    /// an `R` frame carrying the process-wide registry snapshot as
    /// canonical JSON (`docs/serving.md` §10). The payload is ignored
    /// (send empty). Added without a version bump: pre-`M` servers answer
    /// it with a recoverable `bad-frame` error per the §7 unknown-tag
    /// rule, so newer clients degrade cleanly.
    Metrics = b'M',
}

impl FrameTag {
    /// Decodes a tag byte; `None` for tags this protocol version does not
    /// know (the server answers those with a `bad-frame` error rather
    /// than dropping the connection, so newer clients degrade cleanly).
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            b'H' => Some(FrameTag::Hello),
            b'Q' => Some(FrameTag::Query),
            b'R' => Some(FrameTag::Result),
            b'E' => Some(FrameTag::Error),
            b'S' => Some(FrameTag::Shutdown),
            b'M' => Some(FrameTag::Metrics),
            _ => None,
        }
    }
}

/// One decoded frame: a known-or-unknown tag byte plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The raw tag byte as read off the wire (kept raw so unknown tags
    /// can be reported back precisely).
    pub tag: u8,
    /// The payload bytes (everything after the tag).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a known tag.
    pub fn new(tag: FrameTag, payload: Vec<u8>) -> Self {
        Self {
            tag: tag as u8,
            payload,
        }
    }

    /// The decoded tag, if this protocol version knows it.
    pub fn known_tag(&self) -> Option<FrameTag> {
        FrameTag::from_byte(self.tag)
    }
}

/// A framing-level failure while reading.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes timeouts surfaced as
    /// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`]).
    Io(io::Error),
    /// The stream ended inside a frame — a peer vanished mid-write.
    TruncatedFrame,
    /// The length prefix exceeds the negotiated cap; the stream position
    /// is no longer trustworthy, so the connection must close.
    Oversize {
        /// Length the prefix declared.
        declared: u32,
        /// The cap it violated.
        max: u32,
    },
    /// A frame with `length == 0` — there is no tag byte to dispatch on.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TruncatedFrame => write!(f, "stream ended inside a frame"),
            FrameError::Oversize { declared, max } => {
                write!(f, "frame length {declared} exceeds the {max}-byte cap")
            }
            FrameError::Empty => write!(f, "zero-length frame (no tag byte)"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: `u32 LE (1 + payload.len())`, tag byte, payload.
///
/// Fails with [`io::ErrorKind::InvalidInput`] if the payload is too large
/// for the length prefix (`docs/serving.md` §2 caps frames well below
/// that anyway).
pub fn write_frame(w: &mut impl Write, tag: FrameTag, payload: &[u8]) -> io::Result<()> {
    let length = u32::try_from(payload.len())
        .ok()
        .and_then(|n| n.checked_add(1))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame payload exceeds u32 range",
            )
        })?;
    w.write_all(&length.to_le_bytes())?;
    w.write_all(&[tag as u8])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing the `max` length cap.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer
/// closed between frames); EOF anywhere else is
/// [`FrameError::TruncatedFrame`]. The declared length is validated
/// **before** any payload allocation, so a garbage prefix cannot force a
/// huge allocation.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Frame>, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..]).map_err(map_truncation)?,
        Err(e) => return Err(FrameError::Io(e)),
    }
    let length = u32::from_le_bytes(len_buf);
    read_body(r, length, max)
}

/// Reads the tag + payload of a frame whose length prefix is already
/// known — the tail shared by [`read_frame`] and the server's
/// deadline-aware reader.
pub fn read_body(r: &mut impl Read, length: u32, max: u32) -> Result<Option<Frame>, FrameError> {
    if length == 0 {
        return Err(FrameError::Empty);
    }
    if length > max {
        return Err(FrameError::Oversize {
            declared: length,
            max,
        });
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(map_truncation)?;
    let mut payload = vec![0u8; length as usize - 1];
    r.read_exact(&mut payload).map_err(map_truncation)?;
    Ok(Some(Frame {
        tag: tag[0],
        payload,
    }))
}

/// EOF inside a frame is a protocol error, not a transport error.
fn map_truncation(e: io::Error) -> FrameError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        FrameError::TruncatedFrame
    } else {
        FrameError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_tag() {
        for tag in [
            FrameTag::Hello,
            FrameTag::Query,
            FrameTag::Result,
            FrameTag::Error,
            FrameTag::Shutdown,
            FrameTag::Metrics,
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, tag, b"payload").unwrap();
            let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(frame.known_tag(), Some(tag));
            assert_eq!(frame.payload, b"payload");
        }
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameTag::Shutdown, b"").unwrap();
        assert_eq!(wire, [1, 0, 0, 0, b'S']);
        let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameTag::Query, b"a").unwrap();
        write_frame(&mut wire, FrameTag::Query, b"bb").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES)
                .unwrap()
                .unwrap()
                .payload,
            b"a"
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES)
                .unwrap()
                .unwrap()
                .payload,
            b"bb"
        );
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn truncation_inside_prefix_and_body() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameTag::Query, b"hello").unwrap();
        // Cut inside the length prefix.
        assert!(matches!(
            read_frame(&mut wire[..2].to_vec().as_slice(), MAX_FRAME_BYTES),
            Err(FrameError::TruncatedFrame)
        ));
        // Cut inside the payload.
        assert!(matches!(
            read_frame(&mut wire[..7].to_vec().as_slice(), MAX_FRAME_BYTES),
            Err(FrameError::TruncatedFrame)
        ));
    }

    #[test]
    fn oversize_is_rejected_before_allocation() {
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.push(b'Q');
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(FrameError::Oversize {
                declared: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn zero_length_frame_is_an_error() {
        let wire = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES),
            Err(FrameError::Empty)
        ));
    }

    #[test]
    fn unknown_tag_is_preserved_raw() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(b"Zx");
        let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(frame.tag, b'Z');
        assert_eq!(frame.known_tag(), None);
        assert_eq!(frame.payload, b"x");
    }
}

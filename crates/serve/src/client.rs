//! A minimal blocking client for the wire protocol — the counterpart the
//! `loadgen` load generator, the integration tests and third-party tools
//! build on. Speaks exactly the spec in `docs/serving.md`: reads the `H`
//! handshake, sends `Q`/`S` frames, and returns `R`/`E` payloads.

use crate::protocol::{
    read_frame, write_frame, FrameError, FrameTag, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::server::{Hello, WireError};
use polygamy_obs::MetricsSnapshot;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A client-side failure (as opposed to a typed error *frame*, which is
/// a successful protocol exchange — see [`Response`]).
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or reading/writing the socket failed.
    Io(io::Error),
    /// The byte stream violated the framing rules.
    Frame(FrameError),
    /// Frames arrived whose sequence or payload violates the spec (e.g.
    /// no hello, a non-JSON error payload).
    Protocol(String),
    /// The server speaks a different protocol version; nothing after the
    /// hello can be trusted, so the client refuses to continue.
    VersionMismatch {
        /// Version the server announced.
        server: u32,
        /// Version this client implements.
        client: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::VersionMismatch { server, client } => {
                write!(f, "server speaks protocol v{server}, this client v{client}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// An `R` frame: for queries, one canonical JSON object per query,
    /// newline-separated, in request order (empty for an empty batch).
    Results(String),
    /// An `E` frame: the typed error object. Receiving one does *not*
    /// mean the connection is dead — `parse`/`query`/`overloaded` errors
    /// leave it serving (`docs/serving.md` §6).
    Error(WireError),
}

/// One connection to a `polygamy-serve` daemon.
///
/// ```no_run
/// use polygamy_serve::Client;
///
/// let mut client = Client::connect("127.0.0.1:7461").unwrap();
/// println!("serving: {}", client.hello().datasets.join(", "));
/// let response = client.request("between taxi and * where score >= 0.6").unwrap();
/// println!("{response:?}");
/// ```
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    hello: Hello,
}

impl Client {
    /// Connects and performs the handshake: reads the `H` frame and
    /// verifies the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Like [`Client::connect`], but retries refused/unreachable
    /// connections until `patience` elapses — for scripts that start the
    /// daemon and immediately drive it.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        patience: Duration,
    ) -> Result<Self, ClientError> {
        let deadline = Instant::now() + patience;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn from_stream(mut stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true).ok();
        let frame = read_frame(&mut stream, MAX_FRAME_BYTES)?
            .ok_or_else(|| ClientError::Protocol("connection closed before hello".into()))?;
        if frame.known_tag() != Some(FrameTag::Hello) {
            return Err(ClientError::Protocol(format!(
                "expected hello frame, got tag 0x{:02x}",
                frame.tag
            )));
        }
        let text = String::from_utf8(frame.payload)
            .map_err(|_| ClientError::Protocol("hello payload is not UTF-8".into()))?;
        let hello: Hello = serde_json::from_str(&text)
            .map_err(|e| ClientError::Protocol(format!("hello payload is not valid JSON: {e}")))?;
        if hello.protocol != PROTOCOL_VERSION {
            return Err(ClientError::VersionMismatch {
                server: hello.protocol,
                client: PROTOCOL_VERSION,
            });
        }
        Ok(Self { stream, hello })
    }

    /// The handshake the server sent on connect.
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// Sends one `Q` request (a PQL batch: one query per line) and waits
    /// for its `R` or `E` answer.
    pub fn request(&mut self, pql: &str) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, FrameTag::Query, pql.as_bytes())?;
        self.read_response()
    }

    /// Sends the `M` frame and parses the server's metrics snapshot — the
    /// client side of `docs/serving.md` §10. Counter values only ever
    /// grow, so two snapshots from the same server satisfy
    /// [`MetricsSnapshot::is_monotonic_since`]. Against a pre-`M` server
    /// this surfaces the recoverable `bad-frame` error as
    /// [`ClientError::Protocol`]; the connection stays usable.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        write_frame(&mut self.stream, FrameTag::Metrics, b"")?;
        match self.read_response()? {
            Response::Results(text) => MetricsSnapshot::parse_json(&text).map_err(|e| {
                ClientError::Protocol(format!("metrics payload is not a valid snapshot: {e}"))
            }),
            Response::Error(e) => Err(ClientError::Protocol(format!(
                "metrics request refused: {} ({})",
                e.error, e.message
            ))),
        }
    }

    /// Sends the `S` frame and waits for the drain acknowledgement; the
    /// server refuses new work, finishes what is admitted, and exits.
    /// Consumes the client — the server closes this connection after the
    /// ack.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, FrameTag::Shutdown, b"")?;
        match self.read_response()? {
            Response::Results(_) => Ok(()),
            Response::Error(e) => Err(ClientError::Protocol(format!(
                "shutdown refused: {} ({})",
                e.error, e.message
            ))),
        }
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame = read_frame(&mut self.stream, MAX_FRAME_BYTES)?
            .ok_or_else(|| ClientError::Protocol("connection closed before response".into()))?;
        match frame.known_tag() {
            Some(FrameTag::Result) => {
                let text = String::from_utf8(frame.payload)
                    .map_err(|_| ClientError::Protocol("result payload is not UTF-8".into()))?;
                Ok(Response::Results(text))
            }
            Some(FrameTag::Error) => {
                let text = String::from_utf8(frame.payload)
                    .map_err(|_| ClientError::Protocol("error payload is not UTF-8".into()))?;
                let err: WireError = serde_json::from_str(&text).map_err(|e| {
                    ClientError::Protocol(format!("error payload is not valid JSON: {e}"))
                })?;
                Ok(Response::Error(err))
            }
            _ => Err(ClientError::Protocol(format!(
                "expected result or error frame, got tag 0x{:02x}",
                frame.tag
            ))),
        }
    }
}

//! Scalar function computation (paper Section 5.1).
//!
//! Two families of scalar functions are derived from a data set:
//!
//! * **count functions** capture the activity of the entity the data set
//!   represents: *density* (tuples per spatio-temporal point) and *unique*
//!   (distinct identifier keys per point);
//! * **attribute functions** assign each spatio-temporal point an aggregate
//!   (the paper uses the average; we also support sum/min/max/median per
//!   Section 8) over the tuples that fall on it.
//!
//! Aggregation always goes from raw records to a field at a requested
//! resolution — exactly what the scalar-function-computation map-reduce job
//! does. Field-to-field coarsening along the resolution DAG is also provided
//! for pure-field workflows.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::field::{MissingPolicy, ScalarField};
use crate::resolution::Resolution;
use crate::spatial::SpatialPartition;
use crate::temporal::{TemporalResolution, Timestamp};
use serde::{Deserialize, Serialize};

/// Aggregate applied by attribute functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Arithmetic mean (the paper's default).
    Mean,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median.
    Median,
}

impl AggregateKind {
    /// Short label for display.
    pub fn label(self) -> &'static str {
        match self {
            AggregateKind::Mean => "avg",
            AggregateKind::Sum => "sum",
            AggregateKind::Min => "min",
            AggregateKind::Max => "max",
            AggregateKind::Median => "median",
        }
    }

    /// Stable one-byte wire code for on-disk persistence. Codes are part of
    /// the store format and must never be renumbered; add new variants with
    /// fresh codes instead.
    pub fn code(self) -> u8 {
        match self {
            AggregateKind::Mean => 0,
            AggregateKind::Sum => 1,
            AggregateKind::Min => 2,
            AggregateKind::Max => 3,
            AggregateKind::Median => 4,
        }
    }

    /// Inverse of [`AggregateKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(AggregateKind::Mean),
            1 => Some(AggregateKind::Sum),
            2 => Some(AggregateKind::Min),
            3 => Some(AggregateKind::Max),
            4 => Some(AggregateKind::Median),
            _ => None,
        }
    }
}

/// Which scalar function to derive from a data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionKind {
    /// Number of tuples per spatio-temporal point.
    Density,
    /// Number of distinct identifier keys per spatio-temporal point.
    Unique,
    /// Aggregate of attribute `attr` per spatio-temporal point.
    Attribute {
        /// Column index into [`Dataset::attributes`].
        attr: usize,
        /// Aggregate to apply.
        agg: AggregateKind,
    },
}

impl FunctionKind {
    /// The missing-data policy the paper's semantics imply: no tuples means
    /// zero activity for count functions, but an undefined average for
    /// attribute functions.
    pub fn missing_policy(self) -> MissingPolicy {
        match self {
            FunctionKind::Density | FunctionKind::Unique => MissingPolicy::Zero,
            FunctionKind::Attribute { .. } => MissingPolicy::Exclude,
        }
    }

    /// True for the two count functions.
    pub fn is_count(self) -> bool {
        matches!(self, FunctionKind::Density | FunctionKind::Unique)
    }
}

/// Computes the scalar function of `kind` for `dataset` over `partition`
/// (spatial) × `temporal` buckets, restricted to the optional half-open
/// `window`; when `window` is `None` the data set's own time range is used.
///
/// Records that fall outside the partition (GPS points not inside any
/// polygon) or outside the window are dropped, mirroring the map phase of
/// the scalar-function-computation job.
pub fn aggregate(
    dataset: &Dataset,
    partition: &SpatialPartition,
    temporal: TemporalResolution,
    kind: FunctionKind,
    window: Option<(Timestamp, Timestamp)>,
) -> Result<ScalarField> {
    if let FunctionKind::Attribute { attr, .. } = kind {
        if attr >= dataset.attribute_count() {
            return Err(Error::UnknownAttribute(format!("attribute #{attr}")));
        }
    }
    if kind == FunctionKind::Unique && !dataset.has_keys() {
        return Err(Error::UnknownAttribute("unique function needs keys".into()));
    }
    let (start, end) = match window {
        Some((s, e)) => {
            if e <= s {
                return Err(Error::InvalidTimeRange { start: s, end: e });
            }
            (s, e)
        }
        None => dataset.time_range()?,
    };
    let start_bucket = temporal.bucket_of(start);
    let n_steps = temporal.buckets_in_range(start, end);
    if n_steps == 0 {
        return Err(Error::EmptyDomain);
    }
    let n_regions = partition.len();
    let resolution = Resolution::new(partition.resolution, temporal);
    let mut field = ScalarField::undefined(resolution, n_regions, start_bucket, n_steps);

    // Region assignment: reuse the data set's native region indices when it
    // was published at this partition's resolution; otherwise point-locate.
    let use_native_regions =
        dataset.meta.spatial_resolution == partition.resolution && dataset.regions().is_some();

    let cell_of = |i: usize| -> Option<usize> {
        let t = dataset.times()[i];
        if t < start || t >= end {
            return None;
        }
        let region = if n_regions == 1 {
            // City scale: every record inside the window belongs to the
            // single region regardless of coordinates.
            0u32
        } else if use_native_regions {
            let r = dataset.regions().expect("checked above")[i];
            if (r as usize) < n_regions {
                r
            } else {
                return None;
            }
        } else {
            partition.locate(dataset.locations()[i])?
        };
        let step = (temporal.bucket_of(t) - start_bucket) as usize;
        Some(step * n_regions + region as usize)
    };

    match kind {
        FunctionKind::Density => {
            let mut counts = vec![0u64; field.len()];
            for i in 0..dataset.len() {
                if let Some(c) = cell_of(i) {
                    counts[c] += 1;
                }
            }
            for (v, c) in field.values.iter_mut().zip(&counts) {
                *v = *c as f64;
            }
        }
        FunctionKind::Unique => {
            let keys = dataset.keys().expect("checked above");
            let mut pairs: Vec<(u32, u64)> = Vec::new();
            for (i, &key) in keys.iter().enumerate() {
                if let Some(c) = cell_of(i) {
                    pairs.push((c as u32, key));
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let mut counts = vec![0u64; field.len()];
            for (c, _) in pairs {
                counts[c as usize] += 1;
            }
            for (v, c) in field.values.iter_mut().zip(&counts) {
                *v = *c as f64;
            }
        }
        FunctionKind::Attribute { attr, agg } => {
            let col = dataset.column(attr);
            match agg {
                AggregateKind::Mean | AggregateKind::Sum => {
                    let mut sums = vec![0.0f64; field.len()];
                    let mut counts = vec![0u64; field.len()];
                    for (i, &v) in col.iter().enumerate() {
                        if v.is_nan() {
                            continue;
                        }
                        if let Some(c) = cell_of(i) {
                            sums[c] += v;
                            counts[c] += 1;
                        }
                    }
                    for ((out, s), c) in field.values.iter_mut().zip(&sums).zip(&counts) {
                        if *c > 0 {
                            *out = if agg == AggregateKind::Mean {
                                s / *c as f64
                            } else {
                                *s
                            };
                        }
                    }
                }
                AggregateKind::Min | AggregateKind::Max => {
                    for (i, &v) in col.iter().enumerate() {
                        if v.is_nan() {
                            continue;
                        }
                        if let Some(c) = cell_of(i) {
                            let cur = field.values[c];
                            field.values[c] = if cur.is_nan() {
                                v
                            } else if agg == AggregateKind::Min {
                                cur.min(v)
                            } else {
                                cur.max(v)
                            };
                        }
                    }
                }
                AggregateKind::Median => {
                    let mut pairs: Vec<(u32, f64)> = Vec::new();
                    for (i, &v) in col.iter().enumerate() {
                        if v.is_nan() {
                            continue;
                        }
                        if let Some(c) = cell_of(i) {
                            pairs.push((c as u32, v));
                        }
                    }
                    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                    let mut i = 0;
                    while i < pairs.len() {
                        let cell = pairs[i].0;
                        let mut j = i;
                        while j < pairs.len() && pairs[j].0 == cell {
                            j += 1;
                        }
                        let run = &pairs[i..j];
                        let mid = run.len() / 2;
                        let med = if run.len() % 2 == 1 {
                            run[mid].1
                        } else {
                            (run[mid - 1].1 + run[mid].1) / 2.0
                        };
                        field.values[cell as usize] = med;
                        i = j;
                    }
                }
            }
        }
    }

    field.apply_missing(kind.missing_policy());
    Ok(field)
}

/// Maps every fine region to the coarse region containing its centroid.
pub fn region_mapping(fine: &SpatialPartition, coarse: &SpatialPartition) -> Vec<Option<u32>> {
    fine.polygons
        .iter()
        .map(|p| coarse.locate(p.centroid()))
        .collect()
}

/// Coarsens a field along the temporal axis (`to` must be reachable from the
/// field's temporal resolution in the DAG). Count functions combine with
/// `Sum`; attribute functions with `Mean`.
pub fn coarsen_temporal(
    field: &ScalarField,
    to: TemporalResolution,
    combine: AggregateKind,
) -> Result<ScalarField> {
    let from = field.resolution.temporal;
    if !from.convertible_to(to) {
        return Err(Error::IncompatibleResolution {
            from: from.label().into(),
            to: to.label().into(),
        });
    }
    if from == to {
        return Ok(field.clone());
    }
    let t0 = field.step_start(0);
    let t_end = field
        .resolution
        .temporal
        .bucket_start(field.start_bucket + field.n_steps as i64);
    let start_bucket = to.bucket_of(t0);
    let n_steps = to.buckets_in_range(t0, t_end);
    let mut out = ScalarField::undefined(
        Resolution::new(field.resolution.spatial, to),
        field.n_regions,
        start_bucket,
        n_steps,
    );
    let mut counts = vec![0u64; out.len()];
    for z in 0..field.n_steps {
        let zt = field.step_start(z);
        let oz = (to.bucket_of(zt) - start_bucket) as usize;
        for x in 0..field.n_regions {
            let v = field.value(x, z);
            if v.is_nan() {
                continue;
            }
            let idx = oz * out.n_regions + x;
            let cur = out.values[idx];
            out.values[idx] = match combine {
                AggregateKind::Sum | AggregateKind::Mean => {
                    if cur.is_nan() {
                        v
                    } else {
                        cur + v
                    }
                }
                AggregateKind::Min => {
                    if cur.is_nan() {
                        v
                    } else {
                        cur.min(v)
                    }
                }
                AggregateKind::Max => {
                    if cur.is_nan() {
                        v
                    } else {
                        cur.max(v)
                    }
                }
                AggregateKind::Median => {
                    // Median over medians is not well defined; approximate
                    // with mean combining, which keeps the field usable.
                    if cur.is_nan() {
                        v
                    } else {
                        cur + v
                    }
                }
            };
            counts[idx] += 1;
        }
    }
    if matches!(combine, AggregateKind::Mean | AggregateKind::Median) {
        for (v, c) in out.values.iter_mut().zip(&counts) {
            if *c > 0 {
                *v /= *c as f64;
            }
        }
    }
    Ok(out)
}

/// Coarsens a field along the spatial axis using a fine→coarse region
/// mapping (see [`region_mapping`]). Count functions combine with `Sum`;
/// attribute functions with `Mean`.
pub fn coarsen_spatial(
    field: &ScalarField,
    mapping: &[Option<u32>],
    coarse: &SpatialPartition,
    combine: AggregateKind,
) -> Result<ScalarField> {
    if mapping.len() != field.n_regions {
        return Err(Error::IncompatibleResolution {
            from: format!("{} regions", field.n_regions),
            to: format!("mapping of {}", mapping.len()),
        });
    }
    let mut out = ScalarField::undefined(
        Resolution::new(coarse.resolution, field.resolution.temporal),
        coarse.len(),
        field.start_bucket,
        field.n_steps,
    );
    let mut counts = vec![0u64; out.len()];
    for z in 0..field.n_steps {
        for (x, m) in mapping.iter().enumerate() {
            let Some(cx) = *m else { continue };
            let v = field.value(x, z);
            if v.is_nan() {
                continue;
            }
            let idx = z * out.n_regions + cx as usize;
            let cur = out.values[idx];
            out.values[idx] = if cur.is_nan() { v } else { cur + v };
            counts[idx] += 1;
        }
    }
    if combine == AggregateKind::Mean {
        for (v, c) in out.values.iter_mut().zip(&counts) {
            if *c > 0 {
                *v /= *c as f64;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{AttributeMeta, DatasetBuilder, DatasetMeta};
    use crate::spatial::{GeoPoint, Polygon, SpatialResolution};

    #[test]
    fn aggregate_wire_codes_roundtrip() {
        for a in [
            AggregateKind::Mean,
            AggregateKind::Sum,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Median,
        ] {
            assert_eq!(AggregateKind::from_code(a.code()), Some(a));
        }
        assert_eq!(AggregateKind::from_code(200), None);
    }

    fn partition() -> SpatialPartition {
        SpatialPartition::new(
            SpatialResolution::Neighborhood,
            vec![
                Polygon::rect(0.0, 0.0, 1.0, 1.0),
                Polygon::rect(1.0, 0.0, 2.0, 1.0),
            ],
            vec![vec![1], vec![0]],
        )
        .unwrap()
    }

    fn sample_dataset() -> Dataset {
        let meta = DatasetMeta {
            name: "taxi".into(),
            spatial_resolution: SpatialResolution::Gps,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta)
            .attribute(AttributeMeta::named("fare"))
            .with_keys();
        // Hour 0, region 0: two trips, keys 1 and 1 (same taxi), fares 10, 20.
        b.push_keyed(1, GeoPoint::new(0.5, 0.5), 10, &[10.0])
            .unwrap();
        b.push_keyed(1, GeoPoint::new(0.6, 0.5), 20, &[20.0])
            .unwrap();
        // Hour 0, region 1: one trip, key 2, fare NaN (missing).
        b.push_keyed(2, GeoPoint::new(1.5, 0.5), 30, &[f64::NAN])
            .unwrap();
        // Hour 1, region 1: two trips, keys 2 and 3.
        b.push_keyed(2, GeoPoint::new(1.5, 0.5), 3_700, &[6.0])
            .unwrap();
        b.push_keyed(3, GeoPoint::new(1.2, 0.2), 3_800, &[8.0])
            .unwrap();
        // Outside partition: dropped.
        b.push_keyed(4, GeoPoint::new(9.0, 9.0), 100, &[99.0])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn density() {
        let d = sample_dataset();
        let f = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Density,
            None,
        )
        .unwrap();
        assert_eq!(f.n_regions, 2);
        assert_eq!(f.n_steps, 2);
        assert_eq!(f.value(0, 0), 2.0);
        assert_eq!(f.value(1, 0), 1.0);
        assert_eq!(f.value(0, 1), 0.0); // zero-filled
        assert_eq!(f.value(1, 1), 2.0);
    }

    #[test]
    fn unique_counts_distinct_keys() {
        let d = sample_dataset();
        let f = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Unique,
            None,
        )
        .unwrap();
        assert_eq!(f.value(0, 0), 1.0); // key 1 twice -> 1 unique
        assert_eq!(f.value(1, 1), 2.0); // keys 2, 3
    }

    #[test]
    fn attribute_mean_skips_nan() {
        let d = sample_dataset();
        let f = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Attribute {
                attr: 0,
                agg: AggregateKind::Mean,
            },
            None,
        )
        .unwrap();
        assert_eq!(f.value(0, 0), 15.0);
        assert!(f.value(1, 0).is_nan()); // only a NaN fare there
        assert_eq!(f.value(1, 1), 7.0);
    }

    #[test]
    fn attribute_min_max_median() {
        let d = sample_dataset();
        let min = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Attribute {
                attr: 0,
                agg: AggregateKind::Min,
            },
            None,
        )
        .unwrap();
        assert_eq!(min.value(0, 0), 10.0);
        let max = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Attribute {
                attr: 0,
                agg: AggregateKind::Max,
            },
            None,
        )
        .unwrap();
        assert_eq!(max.value(0, 0), 20.0);
        let med = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Attribute {
                attr: 0,
                agg: AggregateKind::Median,
            },
            None,
        )
        .unwrap();
        assert_eq!(med.value(0, 0), 15.0);
    }

    #[test]
    fn city_scale_keeps_out_of_polygon_records() {
        let d = sample_dataset();
        let city = SpatialPartition::city(0.0, 0.0, 2.0, 1.0);
        let f = aggregate(
            &d,
            &city,
            TemporalResolution::Hour,
            FunctionKind::Density,
            None,
        )
        .unwrap();
        // All 4 hour-0 records (incl. the out-of-polygon one) count at city scale.
        assert_eq!(f.value(0, 0), 4.0);
        assert_eq!(f.value(0, 1), 2.0);
    }

    #[test]
    fn window_filters_records() {
        let d = sample_dataset();
        let f = aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Density,
            Some((3_600, 7_200)),
        )
        .unwrap();
        assert_eq!(f.n_steps, 1);
        assert_eq!(f.value(1, 0), 2.0);
    }

    #[test]
    fn unique_without_keys_is_error() {
        let meta = DatasetMeta {
            name: "d".into(),
            spatial_resolution: SpatialResolution::Gps,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta);
        b.push(GeoPoint::new(0.5, 0.5), 10, &[]).unwrap();
        let d = b.build().unwrap();
        assert!(aggregate(
            &d,
            &partition(),
            TemporalResolution::Hour,
            FunctionKind::Unique,
            None
        )
        .is_err());
    }

    #[test]
    fn coarsen_temporal_sums_days() {
        let res = Resolution::new(SpatialResolution::City, TemporalResolution::Hour);
        let values: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let f = ScalarField::time_series(res, 0, values);
        let day = coarsen_temporal(&f, TemporalResolution::Day, AggregateKind::Sum).unwrap();
        assert_eq!(day.n_steps, 2);
        assert_eq!(day.value(0, 0), (0..24).sum::<i32>() as f64);
        assert_eq!(day.value(0, 1), (24..48).sum::<i32>() as f64);
    }

    #[test]
    fn coarsen_temporal_incompatible() {
        let res = Resolution::new(SpatialResolution::City, TemporalResolution::Week);
        let f = ScalarField::time_series(res, 0, vec![1.0; 8]);
        assert!(coarsen_temporal(&f, TemporalResolution::Month, AggregateKind::Sum).is_err());
    }

    #[test]
    fn coarsen_spatial_to_city() {
        let part = partition();
        let city = SpatialPartition::city(0.0, 0.0, 2.0, 1.0);
        let res = Resolution::new(SpatialResolution::Neighborhood, TemporalResolution::Hour);
        let mut f = ScalarField::undefined(res, 2, 0, 1);
        f.set(0, 0, 3.0);
        f.set(1, 0, 5.0);
        let mapping = region_mapping(&part, &city);
        let out = coarsen_spatial(&f, &mapping, &city, AggregateKind::Sum).unwrap();
        assert_eq!(out.value(0, 0), 8.0);
        let mean = coarsen_spatial(&f, &mapping, &city, AggregateKind::Mean).unwrap();
        assert_eq!(mean.value(0, 0), 4.0);
    }
}

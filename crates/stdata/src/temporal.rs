//! Civil-calendar arithmetic and temporal resolutions.
//!
//! The paper evaluates relationships at hourly, daily, weekly and monthly
//! temporal resolutions (Figure 6). Weeks and months do not nest inside each
//! other, so each resolution needs genuine calendar arithmetic rather than a
//! fixed step size. We implement the proleptic Gregorian calendar with
//! Hinnant's `days_from_civil` algorithm — exact over the full `i64` range we
//! care about and free of external dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since the Unix epoch (1970-01-01T00:00:00Z).
pub type Timestamp = i64;

/// Seconds per hour/day, used for the fixed-width resolutions.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Calendar year (e.g. 2012).
    pub year: i32,
    /// Month in `1..=12`.
    pub month: u8,
    /// Day of month in `1..=31`.
    pub day: u8,
}

impl CivilDate {
    /// Creates a date; panics in debug builds if the fields are out of range.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        debug_assert!((1..=12).contains(&month), "month out of range: {month}");
        debug_assert!((1..=31).contains(&day), "day out of range: {day}");
        Self { year, month, day }
    }

    /// Days since 1970-01-01 (negative before the epoch).
    ///
    /// Howard Hinnant's `days_from_civil` algorithm.
    pub fn days_from_civil(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`CivilDate::days_from_civil`].
    pub fn from_days(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        Self {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// Timestamp at midnight (UTC) of this date.
    pub fn timestamp(self) -> Timestamp {
        self.days_from_civil() * SECS_PER_DAY
    }

    /// Timestamp at `hour:00:00` of this date.
    pub fn at_hour(self, hour: u8) -> Timestamp {
        debug_assert!(hour < 24);
        self.timestamp() + i64::from(hour) * SECS_PER_HOUR
    }

    /// Months since January 1970 (the month-bucket index).
    pub fn months_from_epoch(self) -> i64 {
        (i64::from(self.year) - 1970) * 12 + i64::from(self.month) - 1
    }

    /// Inverse of [`CivilDate::months_from_epoch`], pinned to day 1.
    pub fn from_months(m: i64) -> Self {
        let year = 1970 + m.div_euclid(12);
        let month = m.rem_euclid(12) + 1;
        Self::new(year as i32, month as u8, 1)
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (weekday 3 in Monday-based numbering).
        (self.days_from_civil() + 3).rem_euclid(7) as u8
    }

    /// True for leap years in the proleptic Gregorian calendar.
    pub fn is_leap_year(year: i32) -> bool {
        year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
    }

    /// Number of days in this date's month.
    pub fn days_in_month(year: i32, month: u8) -> u8 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Self::is_leap_year(year) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!("month out of range"),
        }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Decomposes a timestamp into its civil date (UTC).
pub fn date_of(ts: Timestamp) -> CivilDate {
    CivilDate::from_days(ts.div_euclid(SECS_PER_DAY))
}

/// The temporal resolutions supported by the framework (paper Figure 6).
///
/// Ordering is from finest (`Hour`) to coarsest (`Month`); note that `Week`
/// and `Month` are *incompatible* with each other (neither nests in the
/// other), which [`crate::resolution::ResolutionDag`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TemporalResolution {
    /// Hourly buckets.
    Hour,
    /// Daily buckets (UTC midnight aligned).
    Day,
    /// Weekly buckets (Monday aligned).
    Week,
    /// Calendar-month buckets.
    Month,
}

impl TemporalResolution {
    /// All resolutions, finest first.
    pub const ALL: [TemporalResolution; 4] = [
        TemporalResolution::Hour,
        TemporalResolution::Day,
        TemporalResolution::Week,
        TemporalResolution::Month,
    ];

    /// Maps a timestamp to its bucket index at this resolution.
    ///
    /// Bucket indices are globally meaningful (hours/days/weeks/months since
    /// the epoch), so two data sets bucketed independently line up.
    pub fn bucket_of(self, ts: Timestamp) -> i64 {
        match self {
            TemporalResolution::Hour => ts.div_euclid(SECS_PER_HOUR),
            TemporalResolution::Day => ts.div_euclid(SECS_PER_DAY),
            TemporalResolution::Week => {
                // Shift so that bucket boundaries fall on Mondays.
                (ts.div_euclid(SECS_PER_DAY) + 3).div_euclid(7)
            }
            TemporalResolution::Month => date_of(ts).months_from_epoch(),
        }
    }

    /// The timestamp at which `bucket` starts.
    pub fn bucket_start(self, bucket: i64) -> Timestamp {
        match self {
            TemporalResolution::Hour => bucket * SECS_PER_HOUR,
            TemporalResolution::Day => bucket * SECS_PER_DAY,
            TemporalResolution::Week => (bucket * 7 - 3) * SECS_PER_DAY,
            TemporalResolution::Month => CivilDate::from_months(bucket).timestamp(),
        }
    }

    /// Number of buckets spanned by the half-open timestamp range
    /// `[start, end)`. Returns 0 for empty ranges.
    pub fn buckets_in_range(self, start: Timestamp, end: Timestamp) -> usize {
        if end <= start {
            return 0;
        }
        (self.bucket_of(end - 1) - self.bucket_of(start) + 1) as usize
    }

    /// Stable one-byte wire code for on-disk persistence. Codes are part of
    /// the store format and must never be renumbered; add new variants with
    /// fresh codes instead.
    pub fn code(self) -> u8 {
        match self {
            TemporalResolution::Hour => 0,
            TemporalResolution::Day => 1,
            TemporalResolution::Week => 2,
            TemporalResolution::Month => 3,
        }
    }

    /// Inverse of [`TemporalResolution::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(TemporalResolution::Hour),
            1 => Some(TemporalResolution::Day),
            2 => Some(TemporalResolution::Week),
            3 => Some(TemporalResolution::Month),
            _ => None,
        }
    }

    /// A short lowercase label matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            TemporalResolution::Hour => "hour",
            TemporalResolution::Day => "day",
            TemporalResolution::Week => "week",
            TemporalResolution::Month => "month",
        }
    }

    /// Approximate bucket width in seconds; months use 30 days. Used only
    /// for sizing estimates, never for bucketing.
    pub fn approx_secs(self) -> i64 {
        match self {
            TemporalResolution::Hour => SECS_PER_HOUR,
            TemporalResolution::Day => SECS_PER_DAY,
            TemporalResolution::Week => 7 * SECS_PER_DAY,
            TemporalResolution::Month => 30 * SECS_PER_DAY,
        }
    }

    /// True if data at this resolution can be aggregated into `coarser`
    /// (the temporal half of the paper's Figure 6 DAG).
    pub fn convertible_to(self, coarser: TemporalResolution) -> bool {
        use TemporalResolution::*;
        match (self, coarser) {
            (a, b) if a == b => true,
            (Hour, Day) | (Hour, Week) | (Hour, Month) => true,
            (Day, Week) | (Day, Month) => true,
            // Weeks straddle month boundaries and vice versa.
            (Week, Month) | (Month, Week) => false,
            _ => false,
        }
    }
}

impl fmt::Display for TemporalResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Seasonal interval used when computing feature thresholds (paper
/// Section 3.3, "Adjusting for Seasonal Variations").
///
/// Hourly functions use monthly intervals; daily functions use
/// quarter-yearly intervals; coarser functions use yearly intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeasonalInterval {
    /// One interval per calendar month.
    Monthly,
    /// One interval per calendar quarter.
    Quarterly,
    /// One interval per calendar year.
    Yearly,
}

impl SeasonalInterval {
    /// The interval the paper prescribes for a given temporal resolution.
    pub fn for_resolution(res: TemporalResolution) -> Self {
        match res {
            TemporalResolution::Hour => SeasonalInterval::Monthly,
            TemporalResolution::Day => SeasonalInterval::Quarterly,
            TemporalResolution::Week | TemporalResolution::Month => SeasonalInterval::Yearly,
        }
    }

    /// Maps a timestamp to its seasonal-interval index.
    pub fn interval_of(self, ts: Timestamp) -> i64 {
        let d = date_of(ts);
        match self {
            SeasonalInterval::Monthly => d.months_from_epoch(),
            SeasonalInterval::Quarterly => {
                (i64::from(d.year) - 1970) * 4 + i64::from(d.month - 1) / 3
            }
            SeasonalInterval::Yearly => i64::from(d.year) - 1970,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_roundtrip() {
        for t in TemporalResolution::ALL {
            assert_eq!(TemporalResolution::from_code(t.code()), Some(t));
        }
        assert_eq!(TemporalResolution::from_code(200), None);
    }

    #[test]
    fn epoch_roundtrip() {
        let d = CivilDate::new(1970, 1, 1);
        assert_eq!(d.days_from_civil(), 0);
        assert_eq!(CivilDate::from_days(0), d);
    }

    #[test]
    fn known_dates() {
        assert_eq!(CivilDate::new(2000, 3, 1).days_from_civil(), 11_017);
        assert_eq!(CivilDate::new(2012, 10, 29).days_from_civil(), 15_642); // Sandy landfall
        assert_eq!(CivilDate::from_days(15_642), CivilDate::new(2012, 10, 29));
    }

    #[test]
    fn date_roundtrip_sweep() {
        for z in -200_000..200_000 {
            let d = CivilDate::from_days(z);
            assert_eq!(d.days_from_civil(), z, "roundtrip failed at {z} ({d})");
        }
    }

    #[test]
    fn weekday_known() {
        // 1970-01-01 was a Thursday.
        assert_eq!(CivilDate::new(1970, 1, 1).weekday(), 3);
        // 2012-10-29 (Sandy landfall) was a Monday.
        assert_eq!(CivilDate::new(2012, 10, 29).weekday(), 0);
        // 2011-08-28 (Irene over NYC) was a Sunday.
        assert_eq!(CivilDate::new(2011, 8, 28).weekday(), 6);
    }

    #[test]
    fn leap_years() {
        assert!(CivilDate::is_leap_year(2000));
        assert!(CivilDate::is_leap_year(2012));
        assert!(!CivilDate::is_leap_year(1900));
        assert!(!CivilDate::is_leap_year(2011));
        assert_eq!(CivilDate::days_in_month(2012, 2), 29);
        assert_eq!(CivilDate::days_in_month(2011, 2), 28);
    }

    #[test]
    fn hour_buckets() {
        let res = TemporalResolution::Hour;
        assert_eq!(res.bucket_of(0), 0);
        assert_eq!(res.bucket_of(3_599), 0);
        assert_eq!(res.bucket_of(3_600), 1);
        assert_eq!(res.bucket_of(-1), -1);
        assert_eq!(res.bucket_start(1), 3_600);
    }

    #[test]
    fn week_buckets_align_to_monday() {
        let res = TemporalResolution::Week;
        // Monday 2012-10-29 starts a new week bucket.
        let monday = CivilDate::new(2012, 10, 29).timestamp();
        let sunday = monday - SECS_PER_DAY;
        assert_eq!(res.bucket_of(monday), res.bucket_of(sunday) + 1);
        assert_eq!(res.bucket_start(res.bucket_of(monday)), monday);
        // Every bucket start must be a Monday.
        for b in -10..10 {
            assert_eq!(date_of(res.bucket_start(b)).weekday(), 0, "bucket {b}");
        }
    }

    #[test]
    fn month_buckets() {
        let res = TemporalResolution::Month;
        let jan31 = CivilDate::new(2012, 1, 31).timestamp();
        let feb1 = CivilDate::new(2012, 2, 1).timestamp();
        assert_eq!(res.bucket_of(feb1), res.bucket_of(jan31) + 1);
        assert_eq!(res.bucket_start(res.bucket_of(feb1)), feb1);
        assert_eq!(res.bucket_of(CivilDate::new(1970, 1, 15).timestamp()), 0);
        assert_eq!(res.bucket_of(CivilDate::new(1969, 12, 15).timestamp()), -1);
    }

    #[test]
    fn buckets_in_range_counts() {
        let res = TemporalResolution::Day;
        let start = CivilDate::new(2012, 1, 1).timestamp();
        let end = CivilDate::new(2013, 1, 1).timestamp();
        assert_eq!(res.buckets_in_range(start, end), 366); // 2012 is a leap year
        assert_eq!(res.buckets_in_range(start, start), 0);
        assert_eq!(TemporalResolution::Month.buckets_in_range(start, end), 12);
    }

    #[test]
    fn convertibility_matches_figure6() {
        use TemporalResolution::*;
        assert!(Hour.convertible_to(Day));
        assert!(Hour.convertible_to(Month));
        assert!(Day.convertible_to(Week));
        assert!(Day.convertible_to(Month));
        assert!(!Week.convertible_to(Month));
        assert!(!Month.convertible_to(Week));
        assert!(!Day.convertible_to(Hour));
        assert!(Week.convertible_to(Week));
    }

    #[test]
    fn seasonal_intervals() {
        let ts = CivilDate::new(2012, 5, 17).timestamp();
        assert_eq!(
            SeasonalInterval::Monthly.interval_of(ts),
            (2012 - 1970) * 12 + 4
        );
        assert_eq!(
            SeasonalInterval::Quarterly.interval_of(ts),
            (2012 - 1970) * 4 + 1
        );
        assert_eq!(SeasonalInterval::Yearly.interval_of(ts), 42);
        assert_eq!(
            SeasonalInterval::for_resolution(TemporalResolution::Hour),
            SeasonalInterval::Monthly
        );
        assert_eq!(
            SeasonalInterval::for_resolution(TemporalResolution::Day),
            SeasonalInterval::Quarterly
        );
    }
}

//! Discrete time-varying scalar functions.
//!
//! A [`ScalarField`] is the discrete representation of `f : S × T → R`
//! (paper Definition 2): a dense `(regions × time steps)` array of function
//! values at one spatio-temporal resolution. Vertex `(x, z)` of the domain
//! graph (region `x` at time step `z`) maps to the flat index `z * n + x`,
//! so a time slice is contiguous.

use crate::error::{Error, Result};
use crate::resolution::Resolution;
use crate::temporal::Timestamp;
use serde::{Deserialize, Serialize};

/// Policy for spatio-temporal points with no data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissingPolicy {
    /// Treat missing as 0 (used by count functions: no tuples means zero
    /// activity).
    Zero,
    /// Leave missing points undefined; the domain graph excludes them
    /// (used by attribute functions, whose average is undefined without
    /// tuples).
    Exclude,
    /// Linearly interpolate interior gaps along the time axis per region;
    /// leading/trailing gaps stay undefined.
    InterpolateTime,
}

/// A dense time-varying scalar function at one resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarField {
    /// The resolution of the field.
    pub resolution: Resolution,
    /// Number of spatial regions `n`.
    pub n_regions: usize,
    /// First temporal bucket index (global bucket numbering, see
    /// [`crate::temporal::TemporalResolution::bucket_of`]).
    pub start_bucket: i64,
    /// Number of time steps `m`.
    pub n_steps: usize,
    /// Function values, time-major (`values[z * n_regions + x]`); NaN means
    /// undefined.
    #[serde(with = "nan_vec")]
    pub values: Vec<f64>,
}

/// Serialises NaN entries as JSON null so fields survive serde_json.
mod nan_vec {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &[f64], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(v.iter().map(|x| if x.is_nan() { None } else { Some(*x) }))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let opts = Vec::<Option<f64>>::deserialize(d)?;
        Ok(opts.into_iter().map(|o| o.unwrap_or(f64::NAN)).collect())
    }
}

impl ScalarField {
    /// Creates a field with every value undefined.
    pub fn undefined(
        resolution: Resolution,
        n_regions: usize,
        start_bucket: i64,
        n_steps: usize,
    ) -> Self {
        Self {
            resolution,
            n_regions,
            start_bucket,
            n_steps,
            values: vec![f64::NAN; n_regions * n_steps],
        }
    }

    /// Creates a field filled with a constant.
    pub fn filled(
        resolution: Resolution,
        n_regions: usize,
        start_bucket: i64,
        n_steps: usize,
        value: f64,
    ) -> Self {
        Self {
            resolution,
            n_regions,
            start_bucket,
            n_steps,
            values: vec![value; n_regions * n_steps],
        }
    }

    /// Builds a pure time series field (one region).
    pub fn time_series(resolution: Resolution, start_bucket: i64, values: Vec<f64>) -> Self {
        let n_steps = values.len();
        Self {
            resolution,
            n_regions: 1,
            start_bucket,
            n_steps,
            values,
        }
    }

    /// Total number of spatio-temporal points (defined or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the field has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Flat vertex index of `(region, step)`.
    #[inline]
    pub fn vertex(&self, region: usize, step: usize) -> usize {
        debug_assert!(region < self.n_regions && step < self.n_steps);
        step * self.n_regions + region
    }

    /// Inverse of [`ScalarField::vertex`].
    #[inline]
    pub fn region_step(&self, vertex: usize) -> (usize, usize) {
        (vertex % self.n_regions, vertex / self.n_regions)
    }

    /// Value at `(region, step)`.
    #[inline]
    pub fn value(&self, region: usize, step: usize) -> f64 {
        self.values[self.vertex(region, step)]
    }

    /// Sets the value at `(region, step)`.
    #[inline]
    pub fn set(&mut self, region: usize, step: usize, v: f64) {
        let idx = self.vertex(region, step);
        self.values[idx] = v;
    }

    /// Contiguous time slice for step `z`.
    pub fn slice(&self, step: usize) -> &[f64] {
        let start = step * self.n_regions;
        &self.values[start..start + self.n_regions]
    }

    /// Timestamp at which time step `z` begins.
    pub fn step_start(&self, step: usize) -> Timestamp {
        self.resolution
            .temporal
            .bucket_start(self.start_bucket + step as i64)
    }

    /// Number of defined (non-NaN) points.
    pub fn defined_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }

    /// Minimum and maximum over defined values, or an error if none exist.
    pub fn range(&self) -> Result<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut any = false;
        for &v in &self.values {
            if !v.is_nan() {
                any = true;
                min = min.min(v);
                max = max.max(v);
            }
        }
        if any {
            Ok((min, max))
        } else {
            Err(Error::EmptyDomain)
        }
    }

    /// Applies a missing-data policy in place.
    pub fn apply_missing(&mut self, policy: MissingPolicy) {
        match policy {
            MissingPolicy::Zero => {
                for v in &mut self.values {
                    if v.is_nan() {
                        *v = 0.0;
                    }
                }
            }
            MissingPolicy::Exclude => {}
            MissingPolicy::InterpolateTime => self.interpolate_time(),
        }
    }

    fn interpolate_time(&mut self) {
        for region in 0..self.n_regions {
            let mut last_defined: Option<usize> = None;
            let mut z = 0;
            while z < self.n_steps {
                if !self.value(region, z).is_nan() {
                    if let Some(lo) = last_defined {
                        if z > lo + 1 {
                            let v0 = self.value(region, lo);
                            let v1 = self.value(region, z);
                            let span = (z - lo) as f64;
                            for k in (lo + 1)..z {
                                let t = (k - lo) as f64 / span;
                                self.set(region, k, v0 + (v1 - v0) * t);
                            }
                        }
                    }
                    last_defined = Some(z);
                }
                z += 1;
            }
        }
    }

    /// Extracts the city-aggregate time series from this field, summing
    /// (`sum=true`) or averaging across regions at each step. Undefined
    /// points are skipped; a step with no defined region is NaN.
    pub fn collapse_space(&self, sum: bool) -> Vec<f64> {
        (0..self.n_steps)
            .map(|z| {
                let slice = self.slice(z);
                let mut acc = 0.0;
                let mut cnt = 0usize;
                for &v in slice {
                    if !v.is_nan() {
                        acc += v;
                        cnt += 1;
                    }
                }
                if cnt == 0 {
                    f64::NAN
                } else if sum {
                    acc
                } else {
                    acc / cnt as f64
                }
            })
            .collect()
    }

    /// Approximate serialized size in bytes (the paper's Section 5.4 space
    /// accounting: one float per vertex).
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::SpatialResolution;
    use crate::temporal::TemporalResolution;

    fn res() -> Resolution {
        Resolution::new(SpatialResolution::Neighborhood, TemporalResolution::Hour)
    }

    #[test]
    fn indexing_roundtrip() {
        let f = ScalarField::undefined(res(), 5, 0, 7);
        for z in 0..7 {
            for x in 0..5 {
                let v = f.vertex(x, z);
                assert_eq!(f.region_step(v), (x, z));
            }
        }
        assert_eq!(f.len(), 35);
    }

    #[test]
    fn set_get_slice() {
        let mut f = ScalarField::filled(res(), 3, 10, 2, 0.0);
        f.set(1, 1, 42.0);
        assert_eq!(f.value(1, 1), 42.0);
        assert_eq!(f.slice(1), &[0.0, 42.0, 0.0]);
        assert_eq!(f.defined_count(), 6);
    }

    #[test]
    fn step_start_uses_bucket_numbering() {
        let f = ScalarField::undefined(res(), 1, 100, 3);
        assert_eq!(f.step_start(0), 100 * 3600);
        assert_eq!(f.step_start(2), 102 * 3600);
    }

    #[test]
    fn missing_zero() {
        let mut f = ScalarField::undefined(res(), 2, 0, 2);
        f.set(0, 0, 5.0);
        f.apply_missing(MissingPolicy::Zero);
        assert_eq!(f.defined_count(), 4);
        assert_eq!(f.value(1, 1), 0.0);
        assert_eq!(f.value(0, 0), 5.0);
    }

    #[test]
    fn missing_interpolate_time() {
        let mut f = ScalarField::undefined(res(), 1, 0, 6);
        // [NaN, 2, NaN, NaN, 8, NaN] -> [NaN, 2, 4, 6, 8, NaN]
        f.set(0, 1, 2.0);
        f.set(0, 4, 8.0);
        f.apply_missing(MissingPolicy::InterpolateTime);
        assert!(f.value(0, 0).is_nan());
        assert_eq!(f.value(0, 2), 4.0);
        assert_eq!(f.value(0, 3), 6.0);
        assert!(f.value(0, 5).is_nan());
    }

    #[test]
    fn range_and_empty() {
        let mut f = ScalarField::undefined(res(), 2, 0, 2);
        assert!(f.range().is_err());
        f.set(0, 0, -1.0);
        f.set(1, 1, 3.0);
        assert_eq!(f.range().unwrap(), (-1.0, 3.0));
    }

    #[test]
    fn collapse_space_modes() {
        let mut f = ScalarField::undefined(res(), 2, 0, 2);
        f.set(0, 0, 1.0);
        f.set(1, 0, 3.0);
        f.set(0, 1, 5.0);
        assert_eq!(f.collapse_space(true), vec![4.0, 5.0]);
        assert_eq!(f.collapse_space(false), vec![2.0, 5.0]);
    }
}

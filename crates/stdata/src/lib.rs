//! # polygamy-stdata — spatio-temporal data substrate
//!
//! This crate provides the data model that the Data Polygamy framework
//! (SIGMOD 2016) operates on:
//!
//! * [`Dataset`] — a columnar collection of spatio-temporal records, each
//!   record carrying a spatial point, a timestamp, an optional identifier key
//!   and any number of numeric attribute values;
//! * [`SpatialResolution`] / [`TemporalResolution`] and the compatibility DAG
//!   of the paper's Figure 6 ([`resolution`]);
//! * [`SpatialPartition`] — a set of polygons partitioning a city, with
//!   adjacency and an accelerated point-in-polygon index ([`spatial`]);
//! * civil-calendar temporal bucketing without external dependencies
//!   ([`temporal`]);
//! * [`ScalarField`] — the discrete representation of a time-varying scalar
//!   function `f : S × T → R` (paper Section 2.1), and the aggregation
//!   machinery that derives *count* and *attribute* functions from raw
//!   records (paper Section 5.1) ([`mod@aggregate`]).
//!
//! The substrate is deliberately self-contained: the topology and framework
//! crates consume only [`ScalarField`]s and partition adjacency, never raw
//! records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod dataset;
pub mod error;
pub mod field;
pub mod resolution;
pub mod spatial;
pub mod temporal;
pub mod value;

pub use aggregate::{aggregate, coarsen_spatial, coarsen_temporal, AggregateKind, FunctionKind};
pub use dataset::{AttributeMeta, Dataset, DatasetBuilder, DatasetMeta, Record};
pub use error::{Error, Result};
pub use field::{MissingPolicy, ScalarField};
pub use resolution::{Resolution, ResolutionDag};
pub use spatial::{GeoPoint, Polygon, SpatialPartition, SpatialResolution};
pub use temporal::{CivilDate, TemporalResolution, Timestamp, SECS_PER_DAY, SECS_PER_HOUR};
pub use value::Value;

//! Spatial resolutions, polygons and city partitions.
//!
//! The paper represents the spatial domain of a data set as a set of regions
//! `{s1, …, sn}` that partition the spatial extent (Section 2.1, "Feature
//! Representation"). At the lowest resolution the whole city is one region;
//! higher resolutions partition it into zip-code- or neighborhood-sized
//! polygons; raw GPS data is assigned to regions by point-in-polygon tests.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The spatial resolutions of the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpatialResolution {
    /// Raw GPS coordinates (never evaluated directly; always aggregated).
    Gps,
    /// Zip-code polygons.
    Zip,
    /// Neighborhood polygons.
    Neighborhood,
    /// The whole city as a single region.
    City,
}

impl SpatialResolution {
    /// Resolutions at which relationships are evaluated (GPS is excluded:
    /// Figure 6 marks only zip, neighborhood and city with solid lines).
    pub const EVALUABLE: [SpatialResolution; 3] = [
        SpatialResolution::Zip,
        SpatialResolution::Neighborhood,
        SpatialResolution::City,
    ];

    /// True if data at this resolution can be converted to `coarser`.
    ///
    /// GPS converts to everything; zip and neighborhood are mutually
    /// incompatible and both convert to city; city only to itself.
    pub fn convertible_to(self, coarser: SpatialResolution) -> bool {
        use SpatialResolution::*;
        match (self, coarser) {
            (a, b) if a == b => true,
            (Gps, _) => true,
            (Zip, City) | (Neighborhood, City) => true,
            _ => false,
        }
    }

    /// Short lowercase label matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            SpatialResolution::Gps => "gps",
            SpatialResolution::Zip => "zip",
            SpatialResolution::Neighborhood => "neighborhood",
            SpatialResolution::City => "city",
        }
    }

    /// Stable one-byte wire code for on-disk persistence. Codes are part of
    /// the store format and must never be renumbered; add new variants with
    /// fresh codes instead.
    pub fn code(self) -> u8 {
        match self {
            SpatialResolution::Gps => 0,
            SpatialResolution::Zip => 1,
            SpatialResolution::Neighborhood => 2,
            SpatialResolution::City => 3,
        }
    }

    /// Inverse of [`SpatialResolution::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(SpatialResolution::Gps),
            1 => Some(SpatialResolution::Zip),
            2 => Some(SpatialResolution::Neighborhood),
            3 => Some(SpatialResolution::City),
            _ => None,
        }
    }
}

impl fmt::Display for SpatialResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A point in planar city coordinates (we work in a local projected frame,
/// so Euclidean geometry is exact enough; units are kilometres in datagen).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Easting.
    pub x: f64,
    /// Northing.
    pub y: f64,
}

impl GeoPoint {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(self, other: GeoPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner.
    pub min: GeoPoint,
    /// Maximum corner.
    pub max: GeoPoint,
}

impl BoundingBox {
    /// The empty box (inverted), suitable as a fold identity.
    pub fn empty() -> Self {
        Self {
            min: GeoPoint::new(f64::INFINITY, f64::INFINITY),
            max: GeoPoint::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Expands the box to include `p`.
    pub fn include(&mut self, p: GeoPoint) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// True if `p` lies inside or on the box.
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Box width (0 for empty boxes).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Box height (0 for empty boxes).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }
}

/// A simple polygon given as a ring of vertices (implicitly closed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    /// Ring vertices in order; the last vertex connects back to the first.
    pub ring: Vec<GeoPoint>,
}

impl Polygon {
    /// Creates a polygon, validating that the ring has at least 3 vertices.
    pub fn new(ring: Vec<GeoPoint>) -> Result<Self> {
        if ring.len() < 3 {
            return Err(Error::InvalidGeometry(format!(
                "polygon ring needs >= 3 vertices, got {}",
                ring.len()
            )));
        }
        Ok(Self { ring })
    }

    /// Axis-aligned rectangle helper.
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            ring: vec![
                GeoPoint::new(x0, y0),
                GeoPoint::new(x1, y0),
                GeoPoint::new(x1, y1),
                GeoPoint::new(x0, y1),
            ],
        }
    }

    /// Bounding box of the ring.
    pub fn bbox(&self) -> BoundingBox {
        let mut bb = BoundingBox::empty();
        for &p in &self.ring {
            bb.include(p);
        }
        bb
    }

    /// Ray-casting point-in-polygon test (boundary points count as inside
    /// for one of the two polygons sharing the edge, which is all the
    /// partition assignment needs).
    pub fn contains(&self, p: GeoPoint) -> bool {
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.ring[i];
            let pj = self.ring[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let slope_x = (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x;
                if p.x < slope_x {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Signed area via the shoelace formula (positive when counterclockwise).
    pub fn signed_area(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Area centroid.
    pub fn centroid(&self) -> GeoPoint {
        let n = self.ring.len();
        let a = self.signed_area();
        if a.abs() < f64::EPSILON {
            // Degenerate: fall back to vertex mean.
            let (sx, sy) = self
                .ring
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return GeoPoint::new(sx / n as f64, sy / n as f64);
        }
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        GeoPoint::new(cx / (6.0 * a), cy / (6.0 * a))
    }
}

/// A partition of a city into polygons with region adjacency.
///
/// Supplies both halves of what the topology layer needs: the number of
/// regions `n` and the spatial edges `ES` (paper Section 3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpatialPartition {
    /// Which resolution this partition represents.
    pub resolution: SpatialResolution,
    /// One polygon per region.
    pub polygons: Vec<Polygon>,
    /// Sorted adjacency lists (region index → neighbouring region indices).
    pub adjacency: Vec<Vec<u32>>,
    /// Point-location acceleration grid.
    grid: LocatorGrid,
}

/// Uniform grid over the partition bbox; each cell stores the polygons whose
/// bounding boxes overlap the cell. Point location tests only those.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LocatorGrid {
    bbox: BoundingBox,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
}

impl LocatorGrid {
    fn build(polygons: &[Polygon]) -> Self {
        let mut bbox = BoundingBox::empty();
        for poly in polygons {
            let pb = poly.bbox();
            bbox.include(pb.min);
            bbox.include(pb.max);
        }
        // Roughly one cell per polygon, at least 1.
        let side = (polygons.len() as f64).sqrt().ceil().max(1.0) as usize;
        let (nx, ny) = (side, side);
        let mut cells = vec![Vec::new(); nx * ny];
        let w = bbox.width().max(f64::MIN_POSITIVE);
        let h = bbox.height().max(f64::MIN_POSITIVE);
        for (pi, poly) in polygons.iter().enumerate() {
            let pb = poly.bbox();
            let cx0 = (((pb.min.x - bbox.min.x) / w) * nx as f64).floor() as isize;
            let cx1 = (((pb.max.x - bbox.min.x) / w) * nx as f64).floor() as isize;
            let cy0 = (((pb.min.y - bbox.min.y) / h) * ny as f64).floor() as isize;
            let cy1 = (((pb.max.y - bbox.min.y) / h) * ny as f64).floor() as isize;
            for cy in cy0.max(0)..=cy1.min(ny as isize - 1) {
                for cx in cx0.max(0)..=cx1.min(nx as isize - 1) {
                    cells[cy as usize * nx + cx as usize].push(pi as u32);
                }
            }
        }
        Self {
            bbox,
            nx,
            ny,
            cells,
        }
    }

    fn candidates(&self, p: GeoPoint) -> &[u32] {
        if !self.bbox.contains(p) {
            return &[];
        }
        let w = self.bbox.width().max(f64::MIN_POSITIVE);
        let h = self.bbox.height().max(f64::MIN_POSITIVE);
        let cx = ((((p.x - self.bbox.min.x) / w) * self.nx as f64) as usize).min(self.nx - 1);
        let cy = ((((p.y - self.bbox.min.y) / h) * self.ny as f64) as usize).min(self.ny - 1);
        &self.cells[cy * self.nx + cx]
    }
}

impl SpatialPartition {
    /// Builds a partition from polygons and an explicit adjacency relation.
    ///
    /// Adjacency lists are deduplicated, symmetrised and sorted.
    pub fn new(
        resolution: SpatialResolution,
        polygons: Vec<Polygon>,
        adjacency: Vec<Vec<u32>>,
    ) -> Result<Self> {
        if polygons.is_empty() {
            return Err(Error::InvalidGeometry("partition has no polygons".into()));
        }
        if adjacency.len() != polygons.len() {
            return Err(Error::InvalidGeometry(format!(
                "adjacency has {} entries for {} polygons",
                adjacency.len(),
                polygons.len()
            )));
        }
        let n = polygons.len() as u32;
        let mut sym = vec![Vec::new(); polygons.len()];
        for (i, nbrs) in adjacency.iter().enumerate() {
            for &j in nbrs {
                if j >= n {
                    return Err(Error::InvalidGeometry(format!(
                        "adjacency references region {j} out of {n}"
                    )));
                }
                if j as usize != i {
                    sym[i].push(j);
                    sym[j as usize].push(i as u32);
                }
            }
        }
        for list in &mut sym {
            list.sort_unstable();
            list.dedup();
        }
        let grid = LocatorGrid::build(&polygons);
        Ok(Self {
            resolution,
            polygons,
            adjacency: sym,
            grid,
        })
    }

    /// A one-region "city" partition covering the given rectangle.
    pub fn city(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self::new(
            SpatialResolution::City,
            vec![Polygon::rect(x0, y0, x1, y1)],
            vec![vec![]],
        )
        .expect("city partition is always valid")
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.polygons.len()
    }

    /// True if the partition has no regions (never for valid partitions).
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// Assigns a point to its region, if any.
    pub fn locate(&self, p: GeoPoint) -> Option<u32> {
        self.grid
            .candidates(p)
            .iter()
            .copied()
            .find(|&pi| self.polygons[pi as usize].contains(p))
    }

    /// Total number of undirected spatial adjacency edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Iterates undirected edges as `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, nbrs)| {
            nbrs.iter()
                .filter(move |&&j| (i as u32) < j)
                .map(move |&j| (i as u32, j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_roundtrip() {
        for s in [
            SpatialResolution::Gps,
            SpatialResolution::Zip,
            SpatialResolution::Neighborhood,
            SpatialResolution::City,
        ] {
            assert_eq!(SpatialResolution::from_code(s.code()), Some(s));
        }
        assert_eq!(SpatialResolution::from_code(200), None);
    }

    #[test]
    fn rect_contains() {
        let poly = Polygon::rect(0.0, 0.0, 2.0, 1.0);
        assert!(poly.contains(GeoPoint::new(1.0, 0.5)));
        assert!(!poly.contains(GeoPoint::new(3.0, 0.5)));
        assert!(!poly.contains(GeoPoint::new(1.0, 2.0)));
    }

    #[test]
    fn nonconvex_contains() {
        // An L-shape: the notch (1.5, 1.5) is outside.
        let poly = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(2.0, 0.0),
            GeoPoint::new(2.0, 1.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(poly.contains(GeoPoint::new(0.5, 1.5)));
        assert!(poly.contains(GeoPoint::new(1.5, 0.5)));
        assert!(!poly.contains(GeoPoint::new(1.5, 1.5)));
    }

    #[test]
    fn area_and_centroid() {
        let poly = Polygon::rect(0.0, 0.0, 2.0, 1.0);
        assert!((poly.signed_area().abs() - 2.0).abs() < 1e-12);
        let c = poly.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polygon_needs_three_vertices() {
        assert!(Polygon::new(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 0.0)]).is_err());
    }

    fn two_by_two() -> SpatialPartition {
        // 2x2 grid of unit squares, 4-adjacency.
        let polys = vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(1.0, 0.0, 2.0, 1.0),
            Polygon::rect(0.0, 1.0, 1.0, 2.0),
            Polygon::rect(1.0, 1.0, 2.0, 2.0),
        ];
        let adj = vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]];
        SpatialPartition::new(SpatialResolution::Neighborhood, polys, adj).unwrap()
    }

    #[test]
    fn partition_locate() {
        let part = two_by_two();
        assert_eq!(part.locate(GeoPoint::new(0.5, 0.5)), Some(0));
        assert_eq!(part.locate(GeoPoint::new(1.5, 0.5)), Some(1));
        assert_eq!(part.locate(GeoPoint::new(0.5, 1.5)), Some(2));
        assert_eq!(part.locate(GeoPoint::new(1.5, 1.5)), Some(3));
        assert_eq!(part.locate(GeoPoint::new(5.0, 5.0)), None);
    }

    #[test]
    fn partition_adjacency_symmetric_sorted() {
        let part = two_by_two();
        assert_eq!(part.edge_count(), 4);
        for (i, nbrs) in part.adjacency.iter().enumerate() {
            for &j in nbrs {
                assert!(part.adjacency[j as usize].contains(&(i as u32)));
            }
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, nbrs);
        }
    }

    #[test]
    fn adjacency_is_symmetrised_from_one_sided_input() {
        let polys = vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(1.0, 0.0, 2.0, 1.0),
        ];
        // Only one direction listed.
        let part =
            SpatialPartition::new(SpatialResolution::Zip, polys, vec![vec![1], vec![]]).unwrap();
        assert_eq!(part.adjacency[1], vec![0]);
    }

    #[test]
    fn adjacency_out_of_range_rejected() {
        let polys = vec![Polygon::rect(0.0, 0.0, 1.0, 1.0)];
        assert!(SpatialPartition::new(SpatialResolution::Zip, polys, vec![vec![7]]).is_err());
    }

    #[test]
    fn city_partition() {
        let city = SpatialPartition::city(0.0, 0.0, 10.0, 10.0);
        assert_eq!(city.len(), 1);
        assert_eq!(city.locate(GeoPoint::new(5.0, 5.0)), Some(0));
        assert_eq!(city.edge_count(), 0);
    }

    #[test]
    fn spatial_convertibility_matches_figure6() {
        use SpatialResolution::*;
        assert!(Gps.convertible_to(Zip));
        assert!(Gps.convertible_to(Neighborhood));
        assert!(Gps.convertible_to(City));
        assert!(Zip.convertible_to(City));
        assert!(Neighborhood.convertible_to(City));
        assert!(!Zip.convertible_to(Neighborhood));
        assert!(!Neighborhood.convertible_to(Zip));
        assert!(!City.convertible_to(Zip));
    }
}

//! Spatio-temporal resolutions and the compatibility DAG (paper Figure 6).
//!
//! Resolutions form a DAG whose edges point from a higher (finer) resolution
//! to a compatible lower (coarser) one. GPS converts to zip, neighborhood
//! and city; zip and neighborhood are mutually incompatible and only convert
//! to city. Hour converts to day, week and month; day to week and month;
//! week and month are mutually incompatible.

use crate::spatial::SpatialResolution;
use crate::temporal::TemporalResolution;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A (spatial, temporal) resolution pair, written `(temporal, spatial)` in
/// the paper's prose (e.g. "(hour, city)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Resolution {
    /// Spatial half.
    pub spatial: SpatialResolution,
    /// Temporal half.
    pub temporal: TemporalResolution,
}

impl Resolution {
    /// Creates a resolution pair.
    pub fn new(spatial: SpatialResolution, temporal: TemporalResolution) -> Self {
        Self { spatial, temporal }
    }

    /// `(hour, city)` etc. — the paper's display convention.
    pub fn label(&self) -> String {
        format!("({}, {})", self.temporal.label(), self.spatial.label())
    }

    /// True if data at this resolution can be aggregated into `coarser`.
    pub fn convertible_to(&self, coarser: Resolution) -> bool {
        self.spatial.convertible_to(coarser.spatial)
            && self.temporal.convertible_to(coarser.temporal)
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Helpers for walking the resolution DAG.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolutionDag;

impl ResolutionDag {
    /// All evaluable resolutions reachable from a native resolution,
    /// ordered finest-first (spatial-major).
    ///
    /// This is the set of resolutions for which scalar functions are
    /// computed during indexing (paper Section 5.2): e.g. a GPS/second data
    /// set yields 3 spatial × 4 temporal = 12 resolutions.
    pub fn reachable(native: Resolution) -> Vec<Resolution> {
        let mut out = Vec::new();
        for &s in &SpatialResolution::EVALUABLE {
            if !native.spatial.convertible_to(s) {
                continue;
            }
            for &t in &TemporalResolution::ALL {
                if native.temporal.convertible_to(t) {
                    out.push(Resolution::new(s, t));
                }
            }
        }
        out
    }

    /// Resolutions at which a pair of functions with the given native
    /// resolutions can be jointly evaluated, finest-first.
    ///
    /// Per Section 5.3: when spatial resolutions are neighborhood and zip,
    /// the pair is evaluated at city scale; evaluation covers every common
    /// reachable resolution starting from the highest.
    pub fn common(a: Resolution, b: Resolution) -> Vec<Resolution> {
        let ra = Self::reachable(a);
        let rb = Self::reachable(b);
        ra.into_iter().filter(|r| rb.contains(r)).collect()
    }

    /// The single highest (finest) common resolution, if any.
    pub fn highest_common(a: Resolution, b: Resolution) -> Option<Resolution> {
        Self::common(a, b).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SpatialResolution::*;
    use TemporalResolution::*;

    #[test]
    fn gps_second_yields_twelve_resolutions() {
        // Paper Section 5.2: GPS + second → 3 spatial × 4 temporal = 12.
        let native = Resolution::new(Gps, Hour); // finest temporal we model
        assert_eq!(ResolutionDag::reachable(native).len(), 12);
    }

    #[test]
    fn city_week_native() {
        // Gas Prices: city/week native → only (week, city).
        let native = Resolution::new(City, Week);
        assert_eq!(
            ResolutionDag::reachable(native),
            vec![Resolution::new(City, Week)]
        );
    }

    #[test]
    fn city_hour_native() {
        // Weather: city/hour native → city × {hour, day, week, month}.
        let native = Resolution::new(City, Hour);
        let r = ResolutionDag::reachable(native);
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|x| x.spatial == City));
    }

    #[test]
    fn zip_and_neighborhood_meet_at_city() {
        // Paper Section 5.3's example: neighborhood × zip → city scale.
        let a = Resolution::new(Neighborhood, Hour);
        let b = Resolution::new(Zip, Hour);
        let common = ResolutionDag::common(a, b);
        assert!(!common.is_empty());
        assert!(common.iter().all(|r| r.spatial == City));
        assert_eq!(
            ResolutionDag::highest_common(a, b),
            Some(Resolution::new(City, Hour))
        );
    }

    #[test]
    fn week_month_incompatible() {
        let a = Resolution::new(City, Week);
        let b = Resolution::new(City, Month);
        assert!(ResolutionDag::common(a, b).is_empty());
    }

    #[test]
    fn finest_first_ordering() {
        let native = Resolution::new(Gps, Hour);
        let r = ResolutionDag::reachable(native);
        assert_eq!(r[0], Resolution::new(Zip, Hour));
        assert_eq!(*r.last().unwrap(), Resolution::new(City, Month));
    }

    #[test]
    fn labels() {
        assert_eq!(Resolution::new(City, Hour).label(), "(hour, city)");
        assert_eq!(
            Resolution::new(Neighborhood, Day).label(),
            "(day, neighborhood)"
        );
    }
}

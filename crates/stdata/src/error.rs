//! Error type shared by the stdata substrate.

use std::fmt;

/// Errors raised by the spatio-temporal data substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An attribute name was looked up that the data set does not define.
    UnknownAttribute(String),
    /// Records were added whose attribute count does not match the schema.
    SchemaMismatch {
        /// Attribute count the data set schema declares.
        expected: usize,
        /// Attribute count the offending record carried.
        found: usize,
    },
    /// A resolution conversion was requested that the DAG does not permit.
    IncompatibleResolution {
        /// Label of the source resolution.
        from: String,
        /// Label of the requested target resolution.
        to: String,
    },
    /// A data set contained no records inside the requested window.
    EmptyDomain,
    /// A polygon or partition was structurally invalid.
    InvalidGeometry(String),
    /// A time range was empty or inverted.
    InvalidTimeRange {
        /// Inclusive start timestamp.
        start: i64,
        /// Exclusive end timestamp.
        end: i64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            Error::SchemaMismatch { expected, found } => {
                write!(
                    f,
                    "schema mismatch: expected {expected} attributes, found {found}"
                )
            }
            Error::IncompatibleResolution { from, to } => {
                write!(f, "cannot convert resolution {from} to {to}")
            }
            Error::EmptyDomain => write!(f, "data set has no records in the requested domain"),
            Error::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            Error::InvalidTimeRange { start, end } => {
                write!(f, "invalid time range: [{start}, {end})")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, Error>;

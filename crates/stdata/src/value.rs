//! Attribute values.
//!
//! The framework operates on numerical attributes (paper Section 5.1);
//! non-numerical attributes are mapped to numbers upstream (Section 8).
//! Inside a [`crate::Dataset`], attribute columns are stored as `f64` with
//! `NaN` encoding nulls; [`Value`] is the typed view used at the API surface.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value of a record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// A numeric value.
    Num(f64),
}

impl Value {
    /// The column encoding: `NaN` for null, the number otherwise.
    pub fn encode(self) -> f64 {
        match self {
            Value::Null => f64::NAN,
            Value::Num(v) => v,
        }
    }

    /// Decodes the column encoding back into a typed value.
    pub fn decode(raw: f64) -> Self {
        if raw.is_nan() {
            Value::Null
        } else {
            Value::Num(raw)
        }
    }

    /// Returns the numeric payload, if present.
    pub fn as_num(self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Num(v) => Some(v),
        }
    }

    /// True if the value is missing.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Num(v)
        }
    }
}

impl From<Option<f64>> for Value {
    fn from(v: Option<f64>) -> Self {
        match v {
            Some(v) => Value::from(v),
            None => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Num(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(Value::decode(Value::Num(3.5).encode()), Value::Num(3.5));
        assert_eq!(Value::decode(Value::Null.encode()), Value::Null);
        assert_eq!(Value::from(f64::NAN), Value::Null);
        assert_eq!(Value::from(Some(2.0)), Value::Num(2.0));
        assert_eq!(Value::from(None), Value::Null);
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Num(1.0).as_num(), Some(1.0));
        assert_eq!(Value::Null.as_num(), None);
    }
}

//! Columnar spatio-temporal data sets.
//!
//! A data set `D` has attributes `{K, S, T, A1, …, Ak}` (paper Section 5.1):
//! an optional unique identifier `K`, spatial attribute `S`, temporal
//! attribute `T` and numerical attributes `Ai`. We store records columnar:
//! one vector per component, so aggregation jobs stream cache-friendly.

use crate::error::{Error, Result};
use crate::spatial::{GeoPoint, SpatialResolution};
use crate::temporal::{TemporalResolution, Timestamp};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Metadata describing one numerical attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeMeta {
    /// Attribute name (unique within the data set).
    pub name: String,
    /// Unit hint for display purposes.
    pub unit: Option<String>,
}

impl AttributeMeta {
    /// Creates attribute metadata with no unit.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            unit: None,
        }
    }
}

/// Descriptive metadata for a data set (the columns of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Data set name (unique within a corpus).
    pub name: String,
    /// Native spatial resolution of the raw records.
    pub spatial_resolution: SpatialResolution,
    /// Native temporal resolution of the raw records.
    pub temporal_resolution: TemporalResolution,
    /// Free-text description.
    pub description: String,
}

/// An owned view of one record, produced by [`Dataset::get`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Optional unique identifier (e.g. a taxi medallion).
    pub key: Option<u64>,
    /// Spatial location. For city-resolution data this is the city centroid.
    pub location: GeoPoint,
    /// Pre-assigned region index at the native resolution, if known.
    pub region: Option<u32>,
    /// Event timestamp.
    pub time: Timestamp,
    /// Attribute values, aligned with [`Dataset::attributes`].
    pub values: Vec<f64>,
}

/// A columnar spatio-temporal data set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Descriptive metadata.
    pub meta: DatasetMeta,
    /// Numerical attribute schema.
    pub attributes: Vec<AttributeMeta>,
    keys: Option<Vec<u64>>,
    locations: Vec<GeoPoint>,
    regions: Option<Vec<u32>>,
    times: Vec<Timestamp>,
    /// One column per attribute, each `len() == times.len()`.
    columns: Vec<Vec<f64>>,
}

impl Dataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the data set has no records.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of numerical attributes.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// True if records carry a unique identifier key.
    pub fn has_keys(&self) -> bool {
        self.keys.is_some()
    }

    /// Resolves an attribute name to its column index.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// Immutable view of an attribute column (NaN encodes null).
    pub fn column(&self, index: usize) -> &[f64] {
        &self.columns[index]
    }

    /// Record timestamps.
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// Record locations.
    pub fn locations(&self) -> &[GeoPoint] {
        &self.locations
    }

    /// Record keys, when present.
    pub fn keys(&self) -> Option<&[u64]> {
        self.keys.as_deref()
    }

    /// Pre-assigned native region indices, when present.
    pub fn regions(&self) -> Option<&[u32]> {
        self.regions.as_deref()
    }

    /// The half-open time range `[min, max+1)` covered by the records.
    pub fn time_range(&self) -> Result<(Timestamp, Timestamp)> {
        if self.is_empty() {
            return Err(Error::EmptyDomain);
        }
        let mut min = Timestamp::MAX;
        let mut max = Timestamp::MIN;
        for &t in &self.times {
            min = min.min(t);
            max = max.max(t);
        }
        Ok((min, max + 1))
    }

    /// Value of attribute `attr` for record `i`.
    pub fn value_at(&self, i: usize, attr: usize) -> Value {
        Value::decode(self.columns[attr][i])
    }

    /// Materialises record `i` as an owned [`Record`].
    pub fn get(&self, i: usize) -> Record {
        Record {
            key: self.keys.as_ref().map(|k| k[i]),
            location: self.locations[i],
            region: self.regions.as_ref().map(|r| r[i]),
            time: self.times[i],
            values: self.columns.iter().map(|c| c[i]).collect(),
        }
    }

    /// Rough in-memory size in bytes, used for the Table 1 analogue.
    pub fn approx_bytes(&self) -> usize {
        let n = self.len();
        let mut bytes = n * (std::mem::size_of::<GeoPoint>() + 8);
        if self.keys.is_some() {
            bytes += n * 8;
        }
        if self.regions.is_some() {
            bytes += n * 4;
        }
        bytes += self.columns.len() * n * 8;
        bytes
    }

    /// Splits this data set into per-calendar-year data sets, preserving the
    /// schema. Used by the correctness experiment (paper Section 6.2), which
    /// compares the 2011 and 2012 taxi density functions.
    pub fn split_by_year(&self) -> Vec<(i32, Dataset)> {
        use crate::temporal::date_of;
        let mut out: Vec<(i32, DatasetBuilder)> = Vec::new();
        for i in 0..self.len() {
            let year = date_of(self.times[i]).year;
            let builder = match out.iter_mut().find(|(y, _)| *y == year) {
                Some((_, b)) => b,
                None => {
                    let mut meta = self.meta.clone();
                    meta.name = format!("{}-{}", meta.name, year);
                    let mut b = DatasetBuilder::new(meta);
                    for a in &self.attributes {
                        b = b.attribute(a.clone());
                    }
                    if self.has_keys() {
                        b = b.with_keys();
                    }
                    out.push((year, b));
                    &mut out.last_mut().expect("just pushed").1
                }
            };
            let values: Vec<f64> = self.columns.iter().map(|c| c[i]).collect();
            builder.push_raw(
                self.keys.as_ref().map(|k| k[i]),
                self.locations[i],
                self.regions.as_ref().map(|r| r[i]),
                self.times[i],
                &values,
            );
        }
        let mut datasets: Vec<(i32, Dataset)> = out
            .into_iter()
            .map(|(y, b)| (y, b.build().expect("schema preserved")))
            .collect();
        datasets.sort_by_key(|(y, _)| *y);
        datasets
    }
}

/// Builder for [`Dataset`], enforcing schema consistency as records arrive.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    meta: DatasetMeta,
    attributes: Vec<AttributeMeta>,
    keys: Option<Vec<u64>>,
    locations: Vec<GeoPoint>,
    regions: Option<Vec<u32>>,
    times: Vec<Timestamp>,
    columns: Vec<Vec<f64>>,
}

impl DatasetBuilder {
    /// Starts a builder with the given metadata and no attributes.
    pub fn new(meta: DatasetMeta) -> Self {
        Self {
            meta,
            attributes: Vec::new(),
            keys: None,
            locations: Vec::new(),
            regions: None,
            times: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Declares a numerical attribute. Must be called before any `push`.
    pub fn attribute(mut self, meta: AttributeMeta) -> Self {
        debug_assert!(
            self.times.is_empty(),
            "attributes must be declared before records"
        );
        self.attributes.push(meta);
        self.columns.push(Vec::new());
        self
    }

    /// Declares that records carry identifier keys.
    pub fn with_keys(mut self) -> Self {
        debug_assert!(
            self.times.is_empty(),
            "keys must be declared before records"
        );
        self.keys = Some(Vec::new());
        self
    }

    /// Declares that records carry pre-assigned native region indices
    /// (for data published directly at zip/neighborhood resolution).
    pub fn with_regions(mut self) -> Self {
        debug_assert!(
            self.times.is_empty(),
            "regions must be declared before records"
        );
        self.regions = Some(Vec::new());
        self
    }

    /// Reserves capacity for `n` additional records.
    pub fn reserve(&mut self, n: usize) {
        self.locations.reserve(n);
        self.times.reserve(n);
        if let Some(k) = &mut self.keys {
            k.reserve(n);
        }
        if let Some(r) = &mut self.regions {
            r.reserve(n);
        }
        for c in &mut self.columns {
            c.reserve(n);
        }
    }

    /// Appends a record with GPS location.
    pub fn push(&mut self, location: GeoPoint, time: Timestamp, values: &[f64]) -> Result<()> {
        self.push_record(None, location, None, time, values)
    }

    /// Appends a record with an identifier key.
    pub fn push_keyed(
        &mut self,
        key: u64,
        location: GeoPoint,
        time: Timestamp,
        values: &[f64],
    ) -> Result<()> {
        self.push_record(Some(key), location, None, time, values)
    }

    /// Appends a record that is already assigned to a native region.
    pub fn push_in_region(
        &mut self,
        region: u32,
        location: GeoPoint,
        time: Timestamp,
        values: &[f64],
    ) -> Result<()> {
        self.push_record(None, location, Some(region), time, values)
    }

    /// Full-control append.
    pub fn push_record(
        &mut self,
        key: Option<u64>,
        location: GeoPoint,
        region: Option<u32>,
        time: Timestamp,
        values: &[f64],
    ) -> Result<()> {
        if values.len() != self.attributes.len() {
            return Err(Error::SchemaMismatch {
                expected: self.attributes.len(),
                found: values.len(),
            });
        }
        match (&mut self.keys, key) {
            (Some(ks), Some(k)) => ks.push(k),
            (Some(ks), None) => ks.push(0),
            (None, Some(_)) => {
                return Err(Error::SchemaMismatch {
                    expected: self.attributes.len(),
                    found: values.len(),
                })
            }
            (None, None) => {}
        }
        if let Some(rs) = &mut self.regions {
            rs.push(region.unwrap_or(0));
        }
        self.locations.push(location);
        self.times.push(time);
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    fn push_raw(
        &mut self,
        key: Option<u64>,
        location: GeoPoint,
        region: Option<u32>,
        time: Timestamp,
        values: &[f64],
    ) {
        self.push_record(key, location, region, time, values)
            .expect("raw push uses matching schema");
    }

    /// Finalises the data set.
    pub fn build(self) -> Result<Dataset> {
        Ok(Dataset {
            meta: self.meta,
            attributes: self.attributes,
            keys: self.keys,
            locations: self.locations,
            regions: self.regions,
            times: self.times,
            columns: self.columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::CivilDate;

    fn meta(name: &str) -> DatasetMeta {
        DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::Gps,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        }
    }

    #[test]
    fn build_and_read() {
        let mut b = DatasetBuilder::new(meta("taxi"))
            .attribute(AttributeMeta::named("fare"))
            .attribute(AttributeMeta::named("miles"))
            .with_keys();
        b.push_keyed(7, GeoPoint::new(1.0, 2.0), 100, &[12.5, 3.1])
            .unwrap();
        b.push_keyed(9, GeoPoint::new(2.0, 3.0), 200, &[8.0, f64::NAN])
            .unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.attribute_count(), 2);
        assert_eq!(d.attribute_index("miles").unwrap(), 1);
        assert!(d.attribute_index("nope").is_err());
        assert_eq!(d.value_at(0, 0), Value::Num(12.5));
        assert_eq!(d.value_at(1, 1), Value::Null);
        assert_eq!(d.keys().unwrap(), &[7, 9]);
        assert_eq!(d.time_range().unwrap(), (100, 201));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut b = DatasetBuilder::new(meta("d")).attribute(AttributeMeta::named("a"));
        let err = b.push(GeoPoint::new(0.0, 0.0), 0, &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            Error::SchemaMismatch {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn key_without_declaration_rejected() {
        let mut b = DatasetBuilder::new(meta("d")).attribute(AttributeMeta::named("a"));
        assert!(b.push_keyed(1, GeoPoint::new(0.0, 0.0), 0, &[1.0]).is_err());
    }

    #[test]
    fn empty_time_range_is_error() {
        let d = DatasetBuilder::new(meta("d")).build().unwrap();
        assert!(d.time_range().is_err());
    }

    #[test]
    fn split_by_year() {
        let mut b = DatasetBuilder::new(meta("taxi")).attribute(AttributeMeta::named("fare"));
        b.push(
            GeoPoint::new(0.0, 0.0),
            CivilDate::new(2011, 6, 1).timestamp(),
            &[1.0],
        )
        .unwrap();
        b.push(
            GeoPoint::new(0.0, 0.0),
            CivilDate::new(2012, 6, 1).timestamp(),
            &[2.0],
        )
        .unwrap();
        b.push(
            GeoPoint::new(0.0, 0.0),
            CivilDate::new(2011, 7, 1).timestamp(),
            &[3.0],
        )
        .unwrap();
        let parts = b.build().unwrap().split_by_year();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 2011);
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].0, 2012);
        assert_eq!(parts[1].1.len(), 1);
        assert_eq!(parts[0].1.meta.name, "taxi-2011");
    }
}

//! Planted ground-truth events.
//!
//! The paper's motivating example (Figure 1) hinges on hurricanes Irene
//! (August 2011) and Sandy (October 2012). We plant analogous events — plus
//! winter snowstorms and activity-suppressing holidays — with known windows
//! and intensities, giving every generated coupling a verifiable cause.

use polygamy_stdata::{CivilDate, Timestamp};
use serde::{Deserialize, Serialize};

/// What kind of disruption an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Extreme wind + rain; crushes outdoor activity.
    Hurricane,
    /// Heavy snowfall; suppresses biking, slows traffic.
    Snowstorm,
    /// Reduced city activity (Thanksgiving, Christmas, New Year).
    Holiday,
}

/// One event with a half-open time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventWindow {
    /// Name for reports ("Irene-like", …).
    pub name: String,
    /// Kind.
    pub kind: EventKind,
    /// Window start (inclusive).
    pub start: Timestamp,
    /// Window end (exclusive).
    pub end: Timestamp,
    /// Peak intensity in `[0, 1]`.
    pub intensity: f64,
}

impl EventWindow {
    /// True if `ts` falls inside the window.
    pub fn contains(&self, ts: Timestamp) -> bool {
        ts >= self.start && ts < self.end
    }

    /// Intensity at `ts`: a triangular ramp peaking mid-window (0 outside).
    pub fn intensity_at(&self, ts: Timestamp) -> f64 {
        if !self.contains(ts) {
            return 0.0;
        }
        let span = (self.end - self.start) as f64;
        let pos = (ts - self.start) as f64 / span; // [0, 1)
        let tri = 1.0 - (2.0 * pos - 1.0).abs();
        self.intensity * tri
    }
}

/// The full planted-event calendar.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UrbanEvents {
    /// All events, chronological.
    pub events: Vec<EventWindow>,
}

impl UrbanEvents {
    /// The default calendar covering `[start_year, start_year + n_years)`:
    /// an Irene-like hurricane in the first August, a Sandy-like hurricane
    /// in the second October (when covered), two snowstorms per winter and
    /// the usual holidays.
    pub fn default_calendar(start_year: i32, n_years: usize) -> Self {
        let mut events = Vec::new();
        for (i, year) in (start_year..start_year + n_years as i32).enumerate() {
            if i == 0 {
                events.push(EventWindow {
                    name: format!("Irene-like-{year}"),
                    kind: EventKind::Hurricane,
                    start: CivilDate::new(year, 8, 27).at_hour(12),
                    end: CivilDate::new(year, 8, 29).at_hour(12),
                    intensity: 0.9,
                });
            }
            if i == 1 {
                events.push(EventWindow {
                    name: format!("Sandy-like-{year}"),
                    kind: EventKind::Hurricane,
                    start: CivilDate::new(year, 10, 28).at_hour(18),
                    end: CivilDate::new(year, 10, 31).at_hour(6),
                    intensity: 1.0,
                });
            }
            // Two snowstorms each winter (January + February).
            events.push(EventWindow {
                name: format!("snowstorm-jan-{year}"),
                kind: EventKind::Snowstorm,
                start: CivilDate::new(year, 1, 22).at_hour(6),
                end: CivilDate::new(year, 1, 24).at_hour(0),
                intensity: 0.8,
            });
            events.push(EventWindow {
                name: format!("snowstorm-feb-{year}"),
                kind: EventKind::Snowstorm,
                start: CivilDate::new(year, 2, 9).at_hour(0),
                end: CivilDate::new(year, 2, 10).at_hour(12),
                intensity: 0.6,
            });
            // Holidays.
            events.push(EventWindow {
                name: format!("thanksgiving-{year}"),
                kind: EventKind::Holiday,
                start: thanksgiving(year).at_hour(0),
                end: thanksgiving(year)
                    .at_hour(0)
                    .checked_add(86_400 * 2)
                    .expect("no overflow"),
                intensity: 0.5,
            });
            events.push(EventWindow {
                name: format!("christmas-{year}"),
                kind: EventKind::Holiday,
                start: CivilDate::new(year, 12, 24).at_hour(12),
                end: CivilDate::new(year, 12, 26).at_hour(12),
                intensity: 0.6,
            });
            events.push(EventWindow {
                name: format!("new-year-{year}"),
                kind: EventKind::Holiday,
                start: CivilDate::new(year, 1, 1).at_hour(0),
                end: CivilDate::new(year, 1, 2).at_hour(0),
                intensity: 0.4,
            });
        }
        events.sort_by_key(|e| e.start);
        Self { events }
    }

    /// Total intensity of events of `kind` at `ts`.
    pub fn intensity(&self, kind: EventKind, ts: Timestamp) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.intensity_at(ts))
            .fold(0.0, f64::max)
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &EventWindow> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

/// Fourth Thursday of November.
fn thanksgiving(year: i32) -> CivilDate {
    let first = CivilDate::new(year, 11, 1);
    // weekday(): 0 = Monday … 3 = Thursday.
    let offset = (3 + 7 - i64::from(first.weekday())) % 7;
    CivilDate::new(year, 11, 1 + offset as u8 + 21)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_has_expected_events() {
        let ev = UrbanEvents::default_calendar(2011, 2);
        assert!(ev.events.iter().any(|e| e.name.contains("Irene")));
        assert!(ev.events.iter().any(|e| e.name.contains("Sandy")));
        assert_eq!(ev.of_kind(EventKind::Hurricane).count(), 2);
        assert_eq!(ev.of_kind(EventKind::Snowstorm).count(), 4);
        // Sorted chronologically.
        for w in ev.events.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn intensity_ramp() {
        let e = EventWindow {
            name: "x".into(),
            kind: EventKind::Hurricane,
            start: 0,
            end: 100,
            intensity: 1.0,
        };
        assert_eq!(e.intensity_at(-1), 0.0);
        assert_eq!(e.intensity_at(100), 0.0);
        assert!(e.intensity_at(50) > 0.9);
        assert!(e.intensity_at(10) < e.intensity_at(40));
    }

    #[test]
    fn hurricane_intensity_peaks_during_sandy() {
        let ev = UrbanEvents::default_calendar(2011, 2);
        let sandy_peak = CivilDate::new(2012, 10, 29).at_hour(18);
        assert!(ev.intensity(EventKind::Hurricane, sandy_peak) > 0.5);
        let calm = CivilDate::new(2012, 6, 1).at_hour(12);
        assert_eq!(ev.intensity(EventKind::Hurricane, calm), 0.0);
    }

    #[test]
    fn thanksgiving_is_fourth_thursday() {
        // 2011-11-24 and 2012-11-22 were the US Thanksgivings.
        assert_eq!(thanksgiving(2011), CivilDate::new(2011, 11, 24));
        assert_eq!(thanksgiving(2012), CivilDate::new(2012, 11, 22));
        assert_eq!(thanksgiving(2011).weekday(), 3);
    }
}

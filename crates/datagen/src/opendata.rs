//! The NYC-Open analogue corpus (paper Section 6, "NYC Open").
//!
//! N small spatio-temporal data sets, ~8 attributes each, at mixed native
//! resolutions. A known subset of *planted pairs* shares latent event
//! signals (their attribute 0 spikes together); every other data set is
//! independent AR noise with its own diurnal dressing. Ground truth — which
//! pairs are genuinely related — is returned alongside, so pruning
//! experiments can measure recall and false positives, which the paper
//! could only eyeball.

use crate::util::{gaussian, Ar1};
use polygamy_stdata::{
    AttributeMeta, CivilDate, Dataset, DatasetBuilder, DatasetMeta, GeoPoint, SpatialResolution,
    TemporalResolution, Timestamp, SECS_PER_HOUR,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Corpus parameters.
#[derive(Debug, Clone, Copy)]
pub struct OpenConfig {
    /// Number of data sets.
    pub n_datasets: usize,
    /// Attributes per data set.
    pub n_attrs: usize,
    /// Number of planted related pairs (`2 × n_planted ≤ n_datasets`).
    pub n_planted: usize,
    /// First simulated year.
    pub start_year: i32,
    /// Days of data per data set.
    pub n_days: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for OpenConfig {
    fn default() -> Self {
        Self {
            n_datasets: 40,
            n_attrs: 8,
            n_planted: 6,
            start_year: 2013,
            n_days: 120,
            seed: 0x0BE2,
        }
    }
}

/// The generated corpus plus ground truth.
pub struct OpenCollection {
    /// The data sets (`open-000`, `open-001`, …).
    pub datasets: Vec<Dataset>,
    /// Ground-truth related pairs, as indices into `datasets`.
    pub planted_pairs: Vec<(usize, usize)>,
}

impl OpenCollection {
    /// True if `(a, b)` (either order) is a planted pair.
    pub fn is_planted(&self, a: usize, b: usize) -> bool {
        self.planted_pairs
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

/// Generates the corpus.
pub fn open_collection(config: OpenConfig) -> OpenCollection {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let start = CivilDate::new(config.start_year, 1, 1).timestamp();
    let n_hours = config.n_days * 24;

    // Latent event trains for the planted pairs: sparse spike hours.
    let n_pairs = config.n_planted.min(config.n_datasets / 2);
    let latents: Vec<Vec<usize>> = (0..n_pairs)
        .map(|_| {
            let n_events = rng.gen_range(8..20);
            let mut hours: Vec<usize> = (0..n_events).map(|_| rng.gen_range(0..n_hours)).collect();
            hours.sort_unstable();
            hours.dedup();
            hours
        })
        .collect();

    let mut planted_pairs = Vec::new();
    let mut datasets = Vec::with_capacity(config.n_datasets);
    for i in 0..config.n_datasets {
        // First 2×n_pairs data sets pair up; the rest are independent.
        let latent = if i < 2 * n_pairs {
            if i % 2 == 0 {
                planted_pairs.push((i, i + 1));
            }
            Some(&latents[i / 2])
        } else {
            None
        };
        let temporal = match i % 3 {
            0 => TemporalResolution::Hour,
            1 => TemporalResolution::Day,
            _ => TemporalResolution::Hour,
        };
        let seed = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
        datasets.push(open_dataset(
            &format!("open-{i:03}"),
            start,
            n_hours,
            config.n_attrs,
            temporal,
            latent,
            seed,
        ));
    }
    OpenCollection {
        datasets,
        planted_pairs,
    }
}

/// One small city-resolution data set; attribute 0 carries the latent
/// spikes when present, the rest are independent AR noise.
fn open_dataset(
    name: &str,
    start: Timestamp,
    n_hours: usize,
    n_attrs: usize,
    temporal: TemporalResolution,
    latent: Option<&Vec<usize>>,
    seed: u64,
) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: temporal,
        description: "NYC-Open-analogue small data set".into(),
    };
    let mut builder = DatasetBuilder::new(meta);
    for a in 0..n_attrs {
        builder = builder.attribute(AttributeMeta::named(format!("a{a}")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ars: Vec<Ar1> = (0..n_attrs)
        .map(|_| Ar1::new(0.7 + 0.25 * rng.gen::<f64>(), 1.0))
        .collect();
    let step_hours = match temporal {
        TemporalResolution::Hour => 1usize,
        TemporalResolution::Day => 24,
        TemporalResolution::Week => 24 * 7,
        TemporalResolution::Month => 24 * 30,
    };
    let amp = 6.0 + 4.0 * rng.gen::<f64>();
    let mut values = vec![0.0f64; n_attrs];
    for h in (0..n_hours).step_by(step_hours) {
        let ts = start + h as i64 * SECS_PER_HOUR;
        for (a, ar) in ars.iter_mut().enumerate() {
            values[a] = ar.step(&mut rng);
        }
        if let Some(latent) = latent {
            // Spike when any latent hour falls in this record's bucket.
            let hit = latent.iter().any(|&lh| lh >= h && lh < h + step_hours);
            if hit {
                values[0] += amp * (1.0 + 0.2 * gaussian(&mut rng).abs());
            }
        }
        builder
            .push(GeoPoint::new(0.5, 0.5), ts, &values)
            .expect("schema matches");
    }
    builder.build().expect("open dataset builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape() {
        let c = open_collection(OpenConfig::default());
        assert_eq!(c.datasets.len(), 40);
        assert_eq!(c.planted_pairs.len(), 6);
        for d in &c.datasets {
            assert!(!d.is_empty());
            assert_eq!(d.attribute_count(), 8);
        }
    }

    #[test]
    fn planted_pairs_are_disjoint_and_in_range() {
        let c = open_collection(OpenConfig::default());
        let mut seen = Vec::new();
        for &(a, b) in &c.planted_pairs {
            assert!(a < c.datasets.len() && b < c.datasets.len());
            assert!(!seen.contains(&a) && !seen.contains(&b));
            seen.push(a);
            seen.push(b);
        }
        assert!(c.is_planted(0, 1));
        assert!(c.is_planted(1, 0));
        assert!(!c.is_planted(0, 2));
    }

    #[test]
    fn planted_partners_spike_together() {
        let c = open_collection(OpenConfig {
            n_datasets: 4,
            n_planted: 2,
            ..OpenConfig::default()
        });
        let (a, b) = c.planted_pairs[0];
        let (da, db) = (&c.datasets[a], &c.datasets[b]);
        // Find the spike hours of each (attribute 0 well above AR noise).
        let spikes = |d: &Dataset| -> Vec<i64> {
            let col = d.column(0);
            (0..d.len())
                .filter(|&i| col[i] > 5.0)
                .map(|i| d.times()[i] / SECS_PER_HOUR)
                .collect()
        };
        let sa = spikes(da);
        let sb = spikes(db);
        assert!(!sa.is_empty() && !sb.is_empty());
        // At hourly/daily mixing spikes align within a day.
        let mut matched = 0;
        for x in &sa {
            if sb.iter().any(|y| (x - y).abs() <= 24) {
                matched += 1;
            }
        }
        assert!(
            matched * 2 >= sa.len(),
            "planted spikes should align: {matched}/{}",
            sa.len()
        );
    }

    #[test]
    fn mixed_resolutions_present() {
        let c = open_collection(OpenConfig::default());
        let hourly = c
            .datasets
            .iter()
            .filter(|d| d.meta.temporal_resolution == TemporalResolution::Hour)
            .count();
        let daily = c
            .datasets
            .iter()
            .filter(|d| d.meta.temporal_resolution == TemporalResolution::Day)
            .count();
        assert!(hourly > 0 && daily > 0);
    }

    #[test]
    fn deterministic() {
        let a = open_collection(OpenConfig::default());
        let b = open_collection(OpenConfig::default());
        assert_eq!(a.datasets[3].column(0), b.datasets[3].column(0));
    }
}

//! The NYC-Urban analogue collection (paper Table 1).
//!
//! Assembles the nine data sets over one shared city, weather trace and
//! event calendar. The `scale` knob trades record volume for speed: tests
//! run at `scale ≈ 0.02`, experiments at `0.2–1.0`.

use crate::activity::{
    bike_dataset, calls911_dataset, collisions_dataset, complaints311_dataset, taxi_dataset,
    traffic_dataset, twitter_dataset, GasTrace,
};
use crate::city::{CityConfig, CityModel};
use crate::events::UrbanEvents;
use crate::weather::{WeatherConfig, WeatherTrace};
use polygamy_core::framework::CityGeometry;
use polygamy_stdata::Dataset;

/// Collection-level parameters.
#[derive(Debug, Clone, Copy)]
pub struct UrbanConfig {
    /// First simulated year.
    pub start_year: i32,
    /// Number of simulated years.
    pub n_years: usize,
    /// Record-volume scale (1.0 ≈ hundreds of thousands of taxi trips).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Extra filler attributes on the weather data set (NCEI has 228
    /// columns; filler columns exercise the same indexing paths).
    pub extra_weather_attrs: usize,
}

impl Default for UrbanConfig {
    fn default() -> Self {
        Self {
            start_year: 2011,
            n_years: 2,
            scale: 0.2,
            seed: 0x0B57_11C5,
            extra_weather_attrs: 8,
        }
    }
}

/// The assembled collection.
pub struct UrbanCollection {
    /// City model (geometry + hotspots).
    pub city: CityModel,
    /// Shared weather simulation.
    pub trace: WeatherTrace,
    /// Planted ground-truth events.
    pub events: UrbanEvents,
    /// Weekly gas-price trace.
    pub gas: GasTrace,
    /// The nine data sets, in the indexing order used by the experiments:
    /// gas-prices, collisions, complaints-311, calls-911, citibike,
    /// weather, traffic-speed, taxi, twitter (small → large, echoing the
    /// paper's Figure 8 ordering).
    pub datasets: Vec<Dataset>,
}

impl UrbanCollection {
    /// A data set by name.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.meta.name == name)
    }

    /// The geometry shared by all data sets.
    pub fn geometry(&self) -> &CityGeometry {
        &self.city.geometry
    }
}

/// Generates the full collection.
pub fn urban_collection(config: UrbanConfig) -> UrbanCollection {
    let city = CityModel::generate(CityConfig {
        seed: config.seed ^ 0xC171,
        ..CityConfig::default()
    });
    let events = UrbanEvents::default_calendar(config.start_year, config.n_years);
    let trace = WeatherTrace::generate(
        WeatherConfig {
            start_year: config.start_year,
            n_years: config.n_years,
            seed: config.seed ^ 0x7EA7,
            extra_attrs: config.extra_weather_attrs,
        },
        &events,
    );
    let n_weeks = (trace.len() / (24 * 7)) + 2;
    let gas = GasTrace::generate(trace.start, n_weeks, config.seed ^ 0x6A5);
    let s = config.seed;
    let burst_seed = s ^ 0xB0057;
    let center = city.center();
    let datasets = vec![
        gas.dataset(&city),
        collisions_dataset(&city, &trace, &events, config.scale, s ^ 1),
        complaints311_dataset(&city, &trace, &events, burst_seed, config.scale, s ^ 2),
        calls911_dataset(&city, &trace, &events, burst_seed, config.scale, s ^ 3),
        bike_dataset(&city, &trace, &events, config.scale, s ^ 4),
        trace.dataset(center, config.extra_weather_attrs, s ^ 5),
        traffic_dataset(&city, &trace, &events, config.scale, s ^ 6),
        taxi_dataset(&city, &trace, &events, &gas, config.scale, s ^ 7),
        twitter_dataset(&city, &trace, config.scale, s ^ 8),
    ];
    UrbanCollection {
        city,
        trace,
        events,
        gas,
        datasets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UrbanCollection {
        urban_collection(UrbanConfig {
            n_years: 1,
            scale: 0.02,
            ..UrbanConfig::default()
        })
    }

    #[test]
    fn nine_datasets_with_expected_names() {
        let c = tiny();
        assert_eq!(c.datasets.len(), 9);
        for name in [
            "gas-prices",
            "collisions",
            "complaints-311",
            "calls-911",
            "citibike",
            "weather",
            "traffic-speed",
            "taxi",
            "twitter",
        ] {
            assert!(c.dataset(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn all_nonempty_and_within_window() {
        let c = tiny();
        let (start, end) = (c.trace.start, c.trace.end());
        // Weekly gas records align to Monday buckets, which can precede
        // January 1 and overrun the final week — allow that slack.
        let slack = 14 * 24 * 3_600;
        for d in &c.datasets {
            assert!(!d.is_empty(), "{} is empty", d.meta.name);
            let (lo, hi) = d.time_range().unwrap();
            assert!(
                lo >= start - slack && hi <= end + slack,
                "{} outside window",
                d.meta.name
            );
        }
    }

    #[test]
    fn geometry_has_all_partitions() {
        let c = tiny();
        let g = c.geometry();
        assert!(g.zip.is_some());
        assert!(g.neighborhood.is_some());
        assert_eq!(g.city.len(), 1);
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        for (da, db) in a.datasets.iter().zip(&b.datasets) {
            assert_eq!(da.len(), db.len(), "{}", da.meta.name);
            assert_eq!(da.times().first(), db.times().first());
        }
    }
}

//! Activity data sets: the eight non-weather members of the NYC-Urban
//! analogue (taxi, Citi Bike, vehicle collisions, 311, 911, traffic speed,
//! gas prices, Twitter).
//!
//! Every generator is a pure function of the city model, the weather
//! trace, the planted event calendar and a seed, so the couplings between
//! data sets flow only through those shared inputs — exactly the causal
//! structure the framework is supposed to recover:
//!
//! * **taxi** — diurnal/weekly demand, suppressed by rain and crushed by
//!   hurricanes; fares carry a rain surge and a gas-price drift; medallion
//!   keys thin out in bad weather (unique-count couplings);
//! * **bike** — commuter double-peak, strongly weather-suppressed; trip
//!   duration stretches in snow; station keys idle as snow accumulates;
//! * **collisions** — frequency tracks traffic volume (not rain), but
//!   severity attributes (injured/killed) worsen with rain — reproducing
//!   the paper's "severity, not frequency" finding;
//! * **311/911** — share latent per-(neighborhood, day) incident bursts
//!   with collisions (common cause);
//! * **traffic** — speed anti-correlated with taxi volume, reduced by low
//!   visibility and snow;
//! * **gas** — weekly random-walk price whose level leaks into taxi fares;
//! * **twitter** — diurnal but otherwise independent: the spurious-pair
//!   bait that significance testing must prune.

use crate::city::CityModel;
use crate::events::{EventKind, UrbanEvents};
use crate::util::{gaussian, poisson, weighted_index, Ar1};
use crate::weather::WeatherTrace;
use polygamy_stdata::temporal::{date_of, SECS_PER_DAY, SECS_PER_HOUR};
use polygamy_stdata::{
    AttributeMeta, Dataset, DatasetBuilder, DatasetMeta, SpatialResolution, TemporalResolution,
    Timestamp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hour-of-day demand multiplier for taxi-like activity (0..24).
fn taxi_diurnal(hod: f64) -> f64 {
    // Night trough ~4am, morning rise, evening peak ~19h.
    let morning = (-((hod - 9.0) / 3.0).powi(2)).exp();
    let evening = (-((hod - 19.0) / 3.5).powi(2)).exp();
    0.2 + 0.5 * morning + 0.9 * evening
}

/// Commuter double-peak for bikes.
fn bike_diurnal(hod: f64) -> f64 {
    let am = (-((hod - 8.5) / 1.8).powi(2)).exp();
    let pm = (-((hod - 17.5) / 2.0).powi(2)).exp();
    0.08 + am + pm
}

/// Day-of-week multiplier (Monday = 0).
fn weekday_factor(weekday: u8) -> f64 {
    match weekday {
        5 => 0.9, // Saturday
        6 => 0.8, // Sunday
        _ => 1.0,
    }
}

/// Deterministic per-(neighborhood, day) incident burst shared by the
/// collisions/311/911 generators (the common cause behind their mutual
/// relationships). Returns 1.0 normally, 3.0 on burst days.
fn incident_burst(seed: u64, neighborhood: usize, day: i64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(neighborhood as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(day as u64);
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 29;
    if h % 23 == 0 {
        3.0
    } else {
        1.0
    }
}

/// Expected city-wide taxi trips for one hour (before `scale`).
pub fn taxi_lambda(trace: &WeatherTrace, events: &UrbanEvents, ts: Timestamp) -> f64 {
    let w = trace.at(ts);
    let hod = (ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64;
    let weekday = date_of(ts).weekday();
    let rain = (w.precipitation / 8.0).min(1.0);
    let snow = (w.snow_fall / 4.0).min(1.0);
    let hurricane = events.intensity(EventKind::Hurricane, ts);
    let holiday = events.intensity(EventKind::Holiday, ts);
    60.0 * taxi_diurnal(hod)
        * weekday_factor(weekday)
        * (1.0 - 0.45 * rain)
        * (1.0 - 0.35 * snow)
        * (1.0 - 0.94 * hurricane)
        * (1.0 - 0.55 * holiday)
}

/// Weekly gas-price trace (random walk with a slow seasonal drift).
#[derive(Debug, Clone)]
pub struct GasTrace {
    /// First week bucket's start timestamp.
    pub start: Timestamp,
    /// One price per week (USD/gallon).
    pub weekly: Vec<f64>,
}

impl GasTrace {
    /// Simulates `n_weeks` starting at the week containing `start`.
    pub fn generate(start: Timestamp, n_weeks: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let week0 = TemporalResolution::Week.bucket_of(start);
        let aligned = TemporalResolution::Week.bucket_start(week0);
        let mut price = 3.4;
        let mut weekly = Vec::with_capacity(n_weeks);
        for w in 0..n_weeks {
            let seasonal = 0.15 * ((w as f64 / 52.0) * std::f64::consts::TAU).sin();
            price = (price + 0.03 * gaussian(&mut rng) + 0.004).clamp(2.2, 5.2);
            weekly.push(price + seasonal);
        }
        Self {
            start: aligned,
            weekly,
        }
    }

    /// Price at a timestamp (clamped).
    pub fn price_at(&self, ts: Timestamp) -> f64 {
        let w0 = TemporalResolution::Week.bucket_of(self.start);
        let w = TemporalResolution::Week.bucket_of(ts) - w0;
        let idx = w.clamp(0, self.weekly.len() as i64 - 1) as usize;
        self.weekly[idx]
    }

    /// Materialises the gas-prices data set (city/week native).
    pub fn dataset(&self, city: &CityModel) -> Dataset {
        let meta = DatasetMeta {
            name: "gas-prices".into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Week,
            description: "Average synthetic gasoline price (USD/gallon)".into(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("price"));
        let center = city.center();
        let w0 = TemporalResolution::Week.bucket_of(self.start);
        for (i, &p) in self.weekly.iter().enumerate() {
            let ts = TemporalResolution::Week.bucket_start(w0 + i as i64) + 12 * SECS_PER_HOUR;
            b.push(center, ts, &[p]).expect("schema matches");
        }
        b.build().expect("gas dataset builds")
    }
}

/// Taxi trips (GPS/second native; medallion keys; fare/miles/tip/duration).
pub fn taxi_dataset(
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    gas: &GasTrace,
    scale: f64,
    seed: u64,
) -> Dataset {
    let meta = DatasetMeta {
        name: "taxi".into(),
        spatial_resolution: SpatialResolution::Gps,
        temporal_resolution: TemporalResolution::Hour,
        description: "Synthetic taxi trip records (TLC analogue)".into(),
    };
    let mut b = DatasetBuilder::new(meta)
        .attribute(AttributeMeta::named("fare"))
        .attribute(AttributeMeta::named("miles"))
        .attribute(AttributeMeta::named("tip"))
        .attribute(AttributeMeta::named("duration-min"))
        .with_keys();
    let mut rng = SmallRng::seed_from_u64(seed);
    let fleet = 400usize;
    let n_hours = trace.len();
    for h in 0..n_hours {
        let ts = trace.start + h as i64 * SECS_PER_HOUR;
        let w = trace.at(ts);
        let lambda = taxi_lambda(trace, events, ts) * scale;
        let n_trips = poisson(&mut rng, lambda);
        // Bad weather thins the active fleet (unique-count couplings).
        let rain = (w.precipitation / 8.0).min(1.0);
        let fog = 1.0 - w.visibility / 10.0;
        let snow_gr = (w.snow_depth / 12.0).min(1.0);
        let hurricane = events.intensity(EventKind::Hurricane, ts);
        let active = ((fleet as f64)
            * (1.0 - 0.5 * rain)
            * (1.0 - 0.35 * fog)
            * (1.0 - 0.45 * snow_gr)
            * (1.0 - 0.9 * hurricane))
            .max(4.0) as u64;
        let surge = 1.0 + 0.45 * rain;
        let gas_price = gas.price_at(ts);
        for _ in 0..n_trips {
            let nbhd = city.sample_neighborhood(&mut rng);
            let pickup = city.sample_point(&mut rng, nbhd);
            let miles = (gaussian(&mut rng).abs() * 2.2 + 0.8).min(25.0);
            // The metered per-mile rate tracks gas prices (paper Appendix E.2:
            // fare ~ gas price at monthly resolution).
            let fare =
                (2.0 + 0.6 * gas_price + 2.4 * miles * (0.55 + 0.35 * gas_price / 3.4)) * surge;
            let tip = fare * (0.12 + 0.05 * rng.gen::<f64>());
            let congestion = 1.0
                + 0.8 * taxi_diurnal((ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64)
                + 0.4 * fog;
            let duration = miles / 16.0 * 60.0 * congestion;
            let medallion = rng.gen_range(0..active);
            let t = ts + rng.gen_range(0..SECS_PER_HOUR);
            b.push_keyed(medallion, pickup, t, &[fare, miles, tip, duration])
                .expect("schema matches");
        }
    }
    b.build().expect("taxi dataset builds")
}

/// Citi Bike trips (GPS/second native; station keys; duration/distance).
pub fn bike_dataset(
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    scale: f64,
    seed: u64,
) -> Dataset {
    let meta = DatasetMeta {
        name: "citibike".into(),
        spatial_resolution: SpatialResolution::Gps,
        temporal_resolution: TemporalResolution::Hour,
        description: "Synthetic bike-share trips (Citi Bike analogue)".into(),
    };
    let mut b = DatasetBuilder::new(meta)
        .attribute(AttributeMeta::named("duration-min"))
        .attribute(AttributeMeta::named("distance-km"))
        .with_keys();
    let mut rng = SmallRng::seed_from_u64(seed);
    let stations_per_nbhd = 3u64;
    for h in 0..trace.len() {
        let ts = trace.start + h as i64 * SECS_PER_HOUR;
        let w = trace.at(ts);
        let hod = (ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64;
        let warmth = ((w.temperature + 2.0) / 22.0).clamp(0.05, 1.2);
        let rain = (w.precipitation / 6.0).min(1.0);
        let snowfall = (w.snow_fall / 4.0).min(1.0);
        let depth = (w.snow_depth / 12.0).min(1.0);
        let hurricane = events.intensity(EventKind::Hurricane, ts);
        let lambda = 30.0
            * scale
            * bike_diurnal(hod)
            * weekday_factor(date_of(ts).weekday())
            * warmth
            * (1.0 - 0.7 * rain)
            * (1.0 - 0.6 * snowfall)
            * (1.0 - 0.75 * depth)
            * (1.0 - 0.97 * hurricane);
        let n_trips = poisson(&mut rng, lambda);
        // Snow on the ground idles stations: only a prefix of each
        // neighborhood's stations stays active.
        let active_per_nbhd = ((stations_per_nbhd as f64) * (1.0 - 0.7 * depth))
            .ceil()
            .max(1.0) as u64;
        for _ in 0..n_trips {
            let nbhd = city.sample_neighborhood(&mut rng);
            let start_point = city.sample_point(&mut rng, nbhd);
            // Snowy conditions stretch trips (paper: longer trips when it
            // snows).
            let duration =
                (14.0 + 5.0 * gaussian(&mut rng).abs()) * (1.0 + 0.8 * snowfall + 0.35 * depth);
            let distance = duration / 60.0 * 12.0 * (1.0 - 0.3 * snowfall);
            let station = nbhd as u64 * stations_per_nbhd + rng.gen_range(0..active_per_nbhd);
            let t = ts + rng.gen_range(0..SECS_PER_HOUR);
            b.push_keyed(station, start_point, t, &[duration, distance])
                .expect("schema matches");
        }
    }
    b.build().expect("bike dataset builds")
}

/// Vehicle collisions (GPS/second native; severity attributes).
pub fn collisions_dataset(
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    scale: f64,
    seed: u64,
) -> Dataset {
    let meta = DatasetMeta {
        name: "collisions".into(),
        spatial_resolution: SpatialResolution::Gps,
        temporal_resolution: TemporalResolution::Hour,
        description: "Synthetic traffic collision records (NYPD analogue)".into(),
    };
    let mut b = DatasetBuilder::new(meta)
        .attribute(AttributeMeta::named("motorists-injured"))
        .attribute(AttributeMeta::named("motorists-killed"))
        .attribute(AttributeMeta::named("pedestrians-injured"))
        .with_keys();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut key = 0u64;
    for h in 0..trace.len() {
        let ts = trace.start + h as i64 * SECS_PER_HOUR;
        let w = trace.at(ts);
        let hod = (ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64;
        let day = ts.div_euclid(SECS_PER_DAY);
        let rain = (w.precipitation / 8.0).min(1.0);
        // Frequency follows traffic volume, NOT rain — the paper's finding.
        // Hurricanes empty the streets, so frequency does drop with them.
        let hurricane = events.intensity(EventKind::Hurricane, ts);
        let lambda_city = 6.0
            * scale
            * taxi_diurnal(hod)
            * weekday_factor(date_of(ts).weekday())
            * (1.0 - 0.85 * hurricane);
        let n = poisson(&mut rng, lambda_city);
        for _ in 0..n {
            // Weight neighborhoods by popularity × shared incident bursts.
            let weights: Vec<f64> = (0..city.n_neighborhoods())
                .map(|k| city.popularity[k] * incident_burst(seed, k, day))
                .collect();
            let nbhd = weighted_index(&mut rng, &weights);
            let p = city.sample_point(&mut rng, nbhd);
            // Severity worsens sharply with rain.
            let injured = poisson(&mut rng, 0.15 + 1.6 * rain) as f64;
            let killed = f64::from(rng.gen_bool((0.01 + 0.10 * rain).min(1.0)));
            let pedestrians = poisson(&mut rng, 0.10 + 1.1 * rain) as f64;
            let t = ts + rng.gen_range(0..SECS_PER_HOUR);
            b.push_keyed(key, p, t, &[injured, killed, pedestrians])
                .expect("schema matches");
            key += 1;
        }
    }
    b.build().expect("collisions dataset builds")
}

/// Shared generator for the 311/911 call data sets.
// Internal helper shared by exactly two call sites; every argument is a
// distinct knob of the planted coupling, so a struct would just rename them.
#[allow(clippy::too_many_arguments)]
fn calls_dataset(
    name: &str,
    description: &str,
    base_rate: f64,
    hurricane_boost: f64,
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    burst_seed: u64,
    scale: f64,
    seed: u64,
) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::Gps,
        temporal_resolution: TemporalResolution::Hour,
        description: description.into(),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("response-min"));
    let mut rng = SmallRng::seed_from_u64(seed);
    let pop_total: f64 = city.popularity.iter().sum();
    for h in 0..trace.len() {
        let ts = trace.start + h as i64 * SECS_PER_HOUR;
        let hod = (ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64;
        let day = ts.div_euclid(SECS_PER_DAY);
        let daytime = 0.35 + 0.65 * (-((hod - 14.0) / 5.0).powi(2)).exp();
        let hurricane = events.intensity(EventKind::Hurricane, ts);
        for nbhd in 0..city.n_neighborhoods() {
            let burst = incident_burst(burst_seed, nbhd, day);
            let lambda = base_rate
                * scale
                * daytime
                * burst
                * (city.popularity[nbhd] / pop_total)
                * (1.0 + hurricane_boost * hurricane);
            let n = poisson(&mut rng, lambda);
            for _ in 0..n {
                let p = city.sample_point(&mut rng, nbhd);
                let response = 10.0 + 20.0 * rng.gen::<f64>() + 30.0 * hurricane;
                let t = ts + rng.gen_range(0..SECS_PER_HOUR);
                b.push(p, t, &[response]).expect("schema matches");
            }
        }
    }
    b.build().expect("calls dataset builds")
}

/// 311 non-emergency complaints. `burst_seed` couples it to collisions/911.
pub fn complaints311_dataset(
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    burst_seed: u64,
    scale: f64,
    seed: u64,
) -> Dataset {
    calls_dataset(
        "complaints-311",
        "Synthetic 311 non-emergency service requests",
        18.0,
        1.5,
        city,
        trace,
        events,
        burst_seed,
        scale,
        seed,
    )
}

/// 911 emergency calls, sharing incident bursts with 311 and collisions.
pub fn calls911_dataset(
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    burst_seed: u64,
    scale: f64,
    seed: u64,
) -> Dataset {
    calls_dataset(
        "calls-911",
        "Synthetic 911 emergency calls",
        12.0,
        3.0,
        city,
        trace,
        events,
        burst_seed,
        scale,
        seed,
    )
}

/// Traffic speed readings (GPS/hour native): per popular neighborhood, one
/// reading per hour, anti-correlated with taxi volume.
pub fn traffic_dataset(
    city: &CityModel,
    trace: &WeatherTrace,
    events: &UrbanEvents,
    scale: f64,
    seed: u64,
) -> Dataset {
    let meta = DatasetMeta {
        name: "traffic-speed".into(),
        spatial_resolution: SpatialResolution::Gps,
        temporal_resolution: TemporalResolution::Hour,
        description: "Synthetic average street speed readings".into(),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("speed-kmh"));
    let mut rng = SmallRng::seed_from_u64(seed);
    // Cover the most popular neighborhoods (sensor-equipped streets).
    let mut order: Vec<usize> = (0..city.n_neighborhoods()).collect();
    order.sort_by(|&a, &b| city.popularity[b].total_cmp(&city.popularity[a]));
    let n_covered = ((order.len() as f64) * (0.25 + 0.25 * scale.min(1.0)))
        .ceil()
        .max(3.0) as usize;
    let covered = &order[..n_covered.min(order.len())];
    let lambda_peak = taxi_lambda(
        trace,
        events,
        trace.start + 19 * SECS_PER_HOUR, // evening peak of day 1
    );
    for h in 0..trace.len() {
        let ts = trace.start + h as i64 * SECS_PER_HOUR;
        let w = trace.at(ts);
        let volume_norm = (taxi_lambda(trace, events, ts) / lambda_peak).min(1.5);
        let fog = 1.0 - w.visibility / 10.0;
        let snow = (w.snow_depth / 12.0).min(1.0);
        for &nbhd in covered {
            let p = city.sample_point(&mut rng, nbhd);
            let congestion = 1.0 + 2.2 * volume_norm * (city.popularity[nbhd] / 1.5);
            let speed = (48.0 / congestion) * (1.0 - 0.25 * fog) * (1.0 - 0.2 * snow)
                + 1.5 * gaussian(&mut rng);
            b.push(p, ts + 1_800, &[speed.max(3.0)])
                .expect("schema matches");
        }
    }
    b.build().expect("traffic dataset builds")
}

/// Tweets (GPS/second native): diurnal + population structure, but
/// independent of weather and events — the spurious-relationship bait.
pub fn twitter_dataset(city: &CityModel, trace: &WeatherTrace, scale: f64, seed: u64) -> Dataset {
    let meta = DatasetMeta {
        name: "twitter".into(),
        spatial_resolution: SpatialResolution::Gps,
        temporal_resolution: TemporalResolution::Hour,
        description: "Synthetic geo-tagged tweet stream".into(),
    };
    let mut b = DatasetBuilder::new(meta)
        .attribute(AttributeMeta::named("retweets"))
        .attribute(AttributeMeta::named("sentiment"))
        .with_keys();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut topic_ar = Ar1::new(0.92, 0.4);
    for h in 0..trace.len() {
        let ts = trace.start + h as i64 * SECS_PER_HOUR;
        let hod = (ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64;
        // Social rhythm: late-evening heavy, early-morning quiet.
        let rhythm = 0.25
            + 0.75 * (-((hod - 21.0) / 4.0).powi(2)).exp()
            + 0.4 * (-((hod - 13.0) / 3.0).powi(2)).exp();
        let topic = topic_ar.step(&mut rng);
        let lambda = 45.0 * scale * rhythm * (1.0 + 0.3 * topic.tanh());
        let n = poisson(&mut rng, lambda);
        for _ in 0..n {
            let nbhd = city.sample_neighborhood(&mut rng);
            let p = city.sample_point(&mut rng, nbhd);
            let retweets = poisson(&mut rng, 1.2) as f64;
            let sentiment = (0.1 + 0.4 * gaussian(&mut rng)).clamp(-1.0, 1.0);
            let user = rng.gen_range(0..50_000u64);
            let t = ts + rng.gen_range(0..SECS_PER_HOUR);
            b.push_keyed(user, p, t, &[retweets, sentiment])
                .expect("schema matches");
        }
    }
    b.build().expect("twitter dataset builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use crate::weather::WeatherConfig;
    use polygamy_stdata::CivilDate;

    fn small_world() -> (CityModel, WeatherTrace, UrbanEvents, GasTrace) {
        let city = CityModel::generate(CityConfig::default());
        let events = UrbanEvents::default_calendar(2011, 1);
        let trace = WeatherTrace::generate(
            WeatherConfig {
                n_years: 1,
                ..WeatherConfig::default()
            },
            &events,
        );
        let gas = GasTrace::generate(trace.start, 53, 5);
        (city, trace, events, gas)
    }

    #[test]
    fn taxi_lambda_reacts_to_hurricane() {
        let (_, trace, events, _) = small_world();
        let irene = events
            .events
            .iter()
            .find(|e| e.name.contains("Irene"))
            .unwrap();
        let mid = (irene.start + irene.end) / 2;
        let calm = mid - 14 * SECS_PER_DAY;
        assert!(taxi_lambda(&trace, &events, mid) < 0.25 * taxi_lambda(&trace, &events, calm));
    }

    #[test]
    fn taxi_dataset_has_structure() {
        let (city, trace, events, gas) = small_world();
        let d = taxi_dataset(&city, &trace, &events, &gas, 0.05, 1);
        assert!(d.len() > 3_000, "too few trips: {}", d.len());
        assert!(d.has_keys());
        assert_eq!(d.attribute_count(), 4);
        // Fares are positive and plausible.
        let fares = d.column(0);
        assert!(fares.iter().all(|&f| f > 0.0 && f < 400.0));
    }

    #[test]
    fn bike_trips_longer_in_snowstorm() {
        let (city, trace, events, _) = small_world();
        let d = bike_dataset(&city, &trace, &events, 0.3, 2);
        let storm = events.of_kind(EventKind::Snowstorm).next().unwrap();
        let durations = d.column(0);
        let (mut storm_sum, mut storm_n, mut calm_sum, mut calm_n) = (0.0, 0usize, 0.0, 0usize);
        for (&t, &dur) in d.times().iter().zip(durations.iter()) {
            if storm.contains(t) {
                storm_sum += dur;
                storm_n += 1;
            } else {
                calm_sum += dur;
                calm_n += 1;
            }
        }
        assert!(storm_n > 0, "no trips during storm at all");
        let storm_avg = storm_sum / storm_n as f64;
        let calm_avg = calm_sum / calm_n as f64;
        assert!(
            storm_avg > calm_avg * 1.2,
            "storm {storm_avg:.1} vs calm {calm_avg:.1}"
        );
    }

    #[test]
    fn collision_severity_tracks_rain_but_frequency_does_not() {
        let (city, trace, events, _) = small_world();
        let d = collisions_dataset(&city, &trace, &events, 1.0, 3);
        let injured = d.column(0);
        let (mut wet_inj, mut wet_n, mut dry_inj, mut dry_n) = (0.0, 0usize, 0.0, 0usize);
        for (&t, &inj) in d.times().iter().zip(injured.iter()) {
            let w = trace.at(t);
            if w.precipitation > 4.0 {
                wet_inj += inj;
                wet_n += 1;
            } else if w.precipitation < 0.1 {
                dry_inj += inj;
                dry_n += 1;
            }
        }
        assert!(wet_n > 20 && dry_n > 200);
        let wet_avg = wet_inj / wet_n as f64;
        let dry_avg = dry_inj / dry_n as f64;
        assert!(
            wet_avg > 2.0 * dry_avg,
            "wet {wet_avg:.2} vs dry {dry_avg:.2}"
        );
        // Frequency per hour roughly independent: wet rate within 50% of
        // the overall mean (diurnal mixing makes exact equality unneeded).
        let hours_wet = trace.hours.iter().filter(|w| w.precipitation > 4.0).count();
        let frac_records_wet = wet_n as f64 / d.len() as f64;
        let frac_hours_wet = hours_wet as f64 / trace.len() as f64;
        assert!(
            frac_records_wet < 2.0 * frac_hours_wet,
            "frequency should not blow up with rain: {frac_records_wet} vs {frac_hours_wet}"
        );
    }

    #[test]
    fn calls_share_bursts() {
        let (city, trace, events, _) = small_world();
        let c311 = complaints311_dataset(&city, &trace, &events, 77, 0.4, 4);
        let c911 = calls911_dataset(&city, &trace, &events, 77, 0.4, 5);
        assert!(c311.len() > 500);
        assert!(c911.len() > 300);
        // Daily counts should correlate (shared bursts + shared rhythm).
        let day0 = trace.start / SECS_PER_DAY;
        let n_days = (trace.len() / 24) + 1;
        let daily = |d: &Dataset| -> Vec<f64> {
            let mut v = vec![0.0; n_days];
            for &t in d.times() {
                let idx = (t / SECS_PER_DAY - day0) as usize;
                if idx < v.len() {
                    v[idx] += 1.0;
                }
            }
            v
        };
        let a = daily(&c311);
        let b = daily(&c911);
        let corr = polygamy_corr(&a, &b);
        assert!(corr > 0.3, "daily 311/911 correlation too low: {corr}");
    }

    fn polygamy_corr(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut dx = 0.0;
        let mut dy = 0.0;
        for i in 0..x.len() {
            num += (x[i] - mx) * (y[i] - my);
            dx += (x[i] - mx).powi(2);
            dy += (y[i] - my).powi(2);
        }
        num / (dx.sqrt() * dy.sqrt())
    }

    #[test]
    fn traffic_slow_at_rush_hour() {
        let (city, trace, events, _) = small_world();
        let d = traffic_dataset(&city, &trace, &events, 0.5, 6);
        assert!(!d.is_empty());
        let speeds = d.column(0);
        let (mut rush, mut rush_n, mut night, mut night_n) = (0.0, 0usize, 0.0, 0usize);
        for (&t, &speed) in d.times().iter().zip(speeds.iter()) {
            let hod = t.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR;
            if hod == 19 {
                rush += speed;
                rush_n += 1;
            } else if hod == 4 {
                night += speed;
                night_n += 1;
            }
        }
        let rush_avg = rush / rush_n as f64;
        let night_avg = night / night_n as f64;
        assert!(
            night_avg > rush_avg * 1.3,
            "night {night_avg:.1} vs rush {rush_avg:.1}"
        );
    }

    #[test]
    fn gas_trace_plausible_and_weekly() {
        let (city, trace, _, _) = small_world();
        let gas = GasTrace::generate(trace.start, 53, 5);
        assert!(gas.weekly.iter().all(|&p| (2.0..6.0).contains(&p)));
        let d = gas.dataset(&city);
        assert_eq!(d.len(), 53);
        assert_eq!(d.meta.temporal_resolution, TemporalResolution::Week);
        // price_at is piecewise constant per week.
        let ts = CivilDate::new(2011, 5, 4).timestamp();
        assert_eq!(gas.price_at(ts), gas.price_at(ts + SECS_PER_DAY));
    }

    #[test]
    fn twitter_ignores_hurricanes() {
        let (city, trace, events, _) = small_world();
        let d = twitter_dataset(&city, &trace, 0.1, 8);
        assert!(d.len() > 5_000);
        let irene = events
            .events
            .iter()
            .find(|e| e.name.contains("Irene"))
            .unwrap();
        let storm_tweets = d.times().iter().filter(|&&t| irene.contains(t)).count() as f64;
        let storm_hours = ((irene.end - irene.start) / SECS_PER_HOUR) as f64;
        let rate_storm = storm_tweets / storm_hours;
        let rate_all = d.len() as f64 / trace.len() as f64;
        assert!(
            (rate_storm / rate_all) > 0.4 && (rate_storm / rate_all) < 2.5,
            "tweets should not react strongly to hurricanes: {rate_storm} vs {rate_all}"
        );
    }
}

//! IQR-bounded Gaussian noise injection (paper Section 6.2, Figure 12).
//!
//! The robustness experiment perturbs every spatio-temporal point of a
//! scalar function with random Gaussian noise whose *amount is bounded by a
//! fraction of the inter-quartile range* of the function. We draw from
//! `N(0, (frac·IQR/2)²)` and clamp to `±frac·IQR`, which realises exactly
//! that bound.

use polygamy_stats::descriptive::Summary;
use polygamy_stdata::ScalarField;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Returns a copy of `field` with bounded Gaussian noise added to every
/// defined point. `fraction` is the bound as a fraction of the field's IQR
/// (e.g. 0.05 = 5%); undefined (NaN) points stay undefined.
pub fn add_iqr_noise(field: &ScalarField, fraction: f64, seed: u64) -> ScalarField {
    let summary = Summary::of(&field.values);
    let bound = fraction * summary.iqr;
    let sigma = bound / 2.0;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut noisy = field.clone();
    if bound <= 0.0 {
        return noisy;
    }
    for v in &mut noisy.values {
        if !v.is_nan() {
            let n = (crate::util::gaussian(&mut rng) * sigma).clamp(-bound, bound);
            *v += n;
        }
    }
    noisy
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{Resolution, SpatialResolution, TemporalResolution};

    fn field() -> ScalarField {
        let res = Resolution::new(SpatialResolution::City, TemporalResolution::Hour);
        let values: Vec<f64> = (0..5_000).map(|i| ((i % 100) as f64) / 10.0).collect();
        ScalarField::time_series(res, 0, values)
    }

    #[test]
    fn noise_is_bounded() {
        let f = field();
        let iqr = Summary::of(&f.values).iqr;
        for frac in [0.01, 0.05, 0.10] {
            let noisy = add_iqr_noise(&f, frac, 42);
            let max_dev = f
                .values
                .iter()
                .zip(&noisy.values)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(max_dev <= frac * iqr + 1e-12, "frac {frac}: dev {max_dev}");
            assert!(max_dev > 0.0, "noise must actually perturb");
        }
    }

    #[test]
    fn zero_fraction_is_identity() {
        let f = field();
        assert_eq!(add_iqr_noise(&f, 0.0, 1), f);
    }

    #[test]
    fn nan_points_preserved() {
        let mut f = field();
        f.values[17] = f64::NAN;
        let noisy = add_iqr_noise(&f, 0.1, 9);
        assert!(noisy.values[17].is_nan());
        assert!(!noisy.values[18].is_nan());
    }

    #[test]
    fn deterministic_per_seed() {
        let f = field();
        assert_eq!(add_iqr_noise(&f, 0.05, 7), add_iqr_noise(&f, 0.05, 7));
        assert_ne!(add_iqr_noise(&f, 0.05, 7), add_iqr_noise(&f, 0.05, 8));
    }
}

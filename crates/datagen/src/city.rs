//! Synthetic city geometry.
//!
//! An irregular, non-convex city (the property that motivates the paper's
//! graph-generalised toroidal shifts) built from a jittered occupancy mask
//! over a rectangular grid: neighborhood polygons are the kept grid cells,
//! zip polygons are coarser blocks of kept cells, and the whole bounding
//! region is the city partition. Point-location, adjacency and GPS
//! sampling all come for free from the grid structure.

use crate::util::weighted_index;
use polygamy_core::framework::CityGeometry;
use polygamy_stdata::{GeoPoint, Polygon, SpatialPartition, SpatialResolution};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// City-shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct CityConfig {
    /// Neighborhood grid width.
    pub nx: usize,
    /// Neighborhood grid height.
    pub ny: usize,
    /// Cell edge length (km).
    pub cell_km: f64,
    /// Zip block size in cells (zip = `block × block` neighborhoods).
    pub zip_block: usize,
    /// RNG seed for the mask and hotspots.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            nx: 9,
            ny: 7,
            cell_km: 2.0,
            zip_block: 2,
            seed: 0xC17E,
        }
    }
}

/// A generated city: geometry plus activity hotspots.
#[derive(Debug, Clone)]
pub struct CityModel {
    /// Partitions at city/neighborhood/zip resolution.
    pub geometry: CityGeometry,
    /// Kept-cell grid coordinates per neighborhood (aligned with the
    /// neighborhood partition's polygon order).
    pub cells: Vec<(usize, usize)>,
    /// Activity weight per neighborhood (downtown hotspot structure).
    pub popularity: Vec<f64>,
    cell_km: f64,
}

impl CityModel {
    /// Generates a city.
    pub fn generate(config: CityConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let (nx, ny) = (config.nx, config.ny);
        // Non-convex mask: start from the full grid, carve two corner bites
        // and a notch, then drop a few random edge cells.
        let mut keep = vec![true; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let corner_a = x + y < nx / 3; // lower-left diagonal bite
                let corner_b = (nx - 1 - x) + (ny - 1 - y) < ny / 3; // upper-right bite
                let notch = x == nx / 2 && y >= ny - ny / 3; // harbour notch
                if corner_a || corner_b || notch {
                    keep[y * nx + x] = false;
                }
            }
        }
        for y in 0..ny {
            for x in 0..nx {
                let edge = x == 0 || y == 0 || x == nx - 1 || y == ny - 1;
                if edge && rng.gen_bool(0.15) {
                    keep[y * nx + x] = false;
                }
            }
        }
        // Keep the largest connected component so adjacency is connected.
        retain_largest_component(&mut keep, nx, ny);

        let cells: Vec<(usize, usize)> = (0..ny)
            .flat_map(|y| (0..nx).map(move |x| (x, y)))
            .filter(|&(x, y)| keep[y * nx + x])
            .collect();
        assert!(!cells.is_empty(), "city mask must keep at least one cell");
        let cell_index = |x: usize, y: usize| -> Option<u32> {
            cells
                .iter()
                .position(|&(cx, cy)| cx == x && cy == y)
                .map(|i| i as u32)
        };

        let km = config.cell_km;
        let polygons: Vec<Polygon> = cells
            .iter()
            .map(|&(x, y)| {
                Polygon::rect(
                    x as f64 * km,
                    y as f64 * km,
                    (x + 1) as f64 * km,
                    (y + 1) as f64 * km,
                )
            })
            .collect();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); cells.len()];
        for (i, &(x, y)) in cells.iter().enumerate() {
            if x + 1 < nx {
                if let Some(j) = cell_index(x + 1, y) {
                    adjacency[i].push(j);
                }
            }
            if y + 1 < ny {
                if let Some(j) = cell_index(x, y + 1) {
                    adjacency[i].push(j);
                }
            }
        }
        let neighborhood =
            SpatialPartition::new(SpatialResolution::Neighborhood, polygons, adjacency)
                .expect("generated neighborhood partition is valid");

        // Zip partition: blocks of kept cells.
        let b = config.zip_block.max(1);
        let (znx, zny) = (nx.div_ceil(b), ny.div_ceil(b));
        let mut zip_cells: Vec<(usize, usize)> = Vec::new();
        for zy in 0..zny {
            for zx in 0..znx {
                let any_kept = cells.iter().any(|&(x, y)| x / b == zx && y / b == zy);
                if any_kept {
                    zip_cells.push((zx, zy));
                }
            }
        }
        let zip_index = |zx: usize, zy: usize| -> Option<u32> {
            zip_cells
                .iter()
                .position(|&(cx, cy)| cx == zx && cy == zy)
                .map(|i| i as u32)
        };
        let zip_polys: Vec<Polygon> = zip_cells
            .iter()
            .map(|&(zx, zy)| {
                Polygon::rect(
                    (zx * b) as f64 * km,
                    (zy * b) as f64 * km,
                    (((zx + 1) * b).min(nx)) as f64 * km,
                    (((zy + 1) * b).min(ny)) as f64 * km,
                )
            })
            .collect();
        let mut zip_adj: Vec<Vec<u32>> = vec![Vec::new(); zip_cells.len()];
        for (i, &(zx, zy)) in zip_cells.iter().enumerate() {
            if let Some(j) = zip_index(zx + 1, zy) {
                zip_adj[i].push(j);
            }
            if let Some(j) = zip_index(zx, zy + 1) {
                zip_adj[i].push(j);
            }
        }
        let zip = SpatialPartition::new(SpatialResolution::Zip, zip_polys, zip_adj)
            .expect("generated zip partition is valid");

        let city = SpatialPartition::city(0.0, 0.0, nx as f64 * km, ny as f64 * km);

        // Popularity: primary hotspot near the centre, secondary off-axis.
        let (cx1, cy1) = (nx as f64 * 0.45 * km, ny as f64 * 0.5 * km);
        let (cx2, cy2) = (nx as f64 * 0.75 * km, ny as f64 * 0.25 * km);
        let popularity: Vec<f64> = cells
            .iter()
            .map(|&(x, y)| {
                let px = (x as f64 + 0.5) * km;
                let py = (y as f64 + 0.5) * km;
                let d1 = ((px - cx1).powi(2) + (py - cy1).powi(2)) / (3.0 * km).powi(2);
                let d2 = ((px - cx2).powi(2) + (py - cy2).powi(2)) / (2.0 * km).powi(2);
                0.15 + (-d1).exp() + 0.5 * (-d2).exp()
            })
            .collect();

        Self {
            geometry: CityGeometry {
                zip: Some(zip),
                neighborhood: Some(neighborhood),
                city,
            },
            cells,
            popularity,
            cell_km: km,
        }
    }

    /// Number of neighborhoods.
    pub fn n_neighborhoods(&self) -> usize {
        self.cells.len()
    }

    /// Samples a neighborhood index proportional to popularity.
    pub fn sample_neighborhood<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        weighted_index(rng, &self.popularity)
    }

    /// Samples a uniform GPS point inside a neighborhood.
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R, neighborhood: usize) -> GeoPoint {
        let (x, y) = self.cells[neighborhood];
        GeoPoint::new(
            (x as f64 + rng.gen::<f64>()) * self.cell_km,
            (y as f64 + rng.gen::<f64>()) * self.cell_km,
        )
    }

    /// Centre of the city (used as the location of city-scale records).
    pub fn center(&self) -> GeoPoint {
        let bbox_poly = &self.geometry.city.polygons[0];
        bbox_poly.centroid()
    }
}

/// Keeps only the largest 4-connected component of the mask.
fn retain_largest_component(keep: &mut [bool], nx: usize, ny: usize) {
    let mut label = vec![usize::MAX; keep.len()];
    let mut sizes: Vec<usize> = Vec::new();
    for start in 0..keep.len() {
        if !keep[start] || label[start] != usize::MAX {
            continue;
        }
        let id = sizes.len();
        let mut size = 0usize;
        let mut stack = vec![start];
        label[start] = id;
        while let Some(i) = stack.pop() {
            size += 1;
            let (x, y) = (i % nx, i / nx);
            let mut try_push = |j: usize| {
                if keep[j] && label[j] == usize::MAX {
                    label[j] = id;
                    stack.push(j);
                }
            };
            if x > 0 {
                try_push(i - 1);
            }
            if x + 1 < nx {
                try_push(i + 1);
            }
            if y > 0 {
                try_push(i - nx);
            }
            if y + 1 < ny {
                try_push(i + nx);
            }
        }
        sizes.push(size);
    }
    if let Some(best) = (0..sizes.len()).max_by_key(|&i| sizes[i]) {
        for i in 0..keep.len() {
            if keep[i] && label[i] != best {
                keep[i] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_partitions() {
        let city = CityModel::generate(CityConfig::default());
        let nbhd = city.geometry.neighborhood.as_ref().unwrap();
        let zip = city.geometry.zip.as_ref().unwrap();
        assert!(nbhd.len() >= 20, "too few neighborhoods: {}", nbhd.len());
        assert!(zip.len() >= 6, "too few zips: {}", zip.len());
        assert!(zip.len() < nbhd.len());
        // Non-convexity: fewer cells than the full grid.
        assert!(nbhd.len() < 9 * 7);
    }

    #[test]
    fn adjacency_is_connected() {
        let city = CityModel::generate(CityConfig::default());
        let nbhd = city.geometry.neighborhood.as_ref().unwrap();
        let n = nbhd.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &u in &nbhd.adjacency[v] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u as usize);
                }
            }
        }
        assert_eq!(count, n, "neighborhood adjacency must be connected");
    }

    #[test]
    fn sampled_points_locate_in_their_neighborhood() {
        let city = CityModel::generate(CityConfig::default());
        let nbhd = city.geometry.neighborhood.as_ref().unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..300 {
            let k = city.sample_neighborhood(&mut rng);
            let p = city.sample_point(&mut rng, k);
            assert_eq!(nbhd.locate(p), Some(k as u32), "point {p:?}");
        }
    }

    #[test]
    fn popularity_positive_and_varied() {
        let city = CityModel::generate(CityConfig::default());
        assert!(city.popularity.iter().all(|&w| w > 0.0));
        let max = city.popularity.iter().cloned().fold(0.0, f64::max);
        let min = city
            .popularity
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "hotspots should dominate: {max} / {min}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CityModel::generate(CityConfig::default());
        let b = CityModel::generate(CityConfig::default());
        assert_eq!(a.cells, b.cells);
        let c = CityModel::generate(CityConfig {
            seed: 999,
            ..CityConfig::default()
        });
        // Different seed may change the mask (edge cells are random).
        let _ = c;
    }
}

//! Small sampling utilities shared by the generators.

use rand::Rng;

/// Standard normal sample via Box–Muller (we avoid the rand_distr
/// dependency; two uniforms per call, second discarded for simplicity).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Poisson sample: Knuth's method for small λ, normal approximation above.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let v = lambda + lambda.sqrt() * gaussian(rng);
        v.max(0.0).round() as u64
    }
}

/// First-order autoregressive process generator.
#[derive(Debug, Clone)]
pub struct Ar1 {
    /// Autocorrelation in `[0, 1)`.
    pub phi: f64,
    /// Innovation standard deviation.
    pub sigma: f64,
    state: f64,
}

impl Ar1 {
    /// New process starting at 0.
    pub fn new(phi: f64, sigma: f64) -> Self {
        Self {
            phi,
            sigma,
            state: 0.0,
        }
    }

    /// Advances one step and returns the new value.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.state = self.phi * self.state + self.sigma * gaussian(rng);
        self.state
    }
}

/// Weighted index sampling (linear scan; weights need not normalise).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = SmallRng::seed_from_u64(2);
        for lambda in [0.5, 5.0, 80.0] {
            let n = 5_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn ar1_is_stationary_ish() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ar = Ar1::new(0.9, 1.0);
        let samples: Vec<f64> = (0..20_000).map(|_| ar.step(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Stationary variance = sigma^2 / (1 - phi^2) ≈ 5.26.
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var - 5.26).abs() < 1.0, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(4);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }
}

//! Weather trace and weather data set (the NCEI analogue of Table 1).
//!
//! Weather is the *common cause* behind most of the paper's reported
//! relationships, so it is generated first as an hourly [`WeatherTrace`]
//! that every activity generator consults: rain suppresses taxis and
//! bikes, hurricanes crush them, snow accumulates and idles bike stations,
//! low visibility slows traffic. The published data set is city-resolution
//! hourly with the physical attributes plus any number of `misc-*` filler
//! attributes standing in for NCEI's 228 columns.

use crate::events::{EventKind, UrbanEvents};
use crate::util::{gaussian, Ar1};
use polygamy_stdata::{
    AttributeMeta, CivilDate, Dataset, DatasetBuilder, DatasetMeta, GeoPoint, SpatialResolution,
    TemporalResolution, Timestamp, SECS_PER_HOUR,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use polygamy_stdata::temporal::SECS_PER_DAY;

/// Weather generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct WeatherConfig {
    /// First simulated year.
    pub start_year: i32,
    /// Number of simulated years.
    pub n_years: usize,
    /// RNG seed.
    pub seed: u64,
    /// Extra `misc-*` attributes appended to the weather data set.
    pub extra_attrs: usize,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        Self {
            start_year: 2011,
            n_years: 2,
            seed: 0x7EA7,
            extra_attrs: 8,
        }
    }
}

/// One simulated hour of weather.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HourWeather {
    /// Air temperature (°C).
    pub temperature: f64,
    /// Rainfall (mm/h).
    pub precipitation: f64,
    /// Wind speed (km/h).
    pub wind_speed: f64,
    /// Snow on the ground (cm).
    pub snow_depth: f64,
    /// Snowfall (cm/h).
    pub snow_fall: f64,
    /// Visibility (km).
    pub visibility: f64,
    /// Relative humidity (%).
    pub humidity: f64,
    /// Sea-level pressure (hPa).
    pub pressure: f64,
}

/// An hourly weather simulation over a multi-year window.
#[derive(Debug, Clone)]
pub struct WeatherTrace {
    /// Timestamp of hour 0.
    pub start: Timestamp,
    /// One entry per hour.
    pub hours: Vec<HourWeather>,
}

impl WeatherTrace {
    /// Simulates the trace, honouring the planted event calendar.
    pub fn generate(config: WeatherConfig, events: &UrbanEvents) -> Self {
        let start = CivilDate::new(config.start_year, 1, 1).timestamp();
        let end = CivilDate::new(config.start_year + config.n_years as i32, 1, 1).timestamp();
        let n_hours = ((end - start) / SECS_PER_HOUR) as usize;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut temp_ar = Ar1::new(0.95, 0.5);
        let mut wind_ar = Ar1::new(0.9, 1.2);
        let mut pressure_ar = Ar1::new(0.98, 0.6);

        // Rain arrives in storms: exponential inter-arrival, random length.
        let mut rain_left = 0usize; // hours of rain remaining
        let mut rain_strength = 0.0f64;
        let mut next_rain_in = (-(rng.gen::<f64>().max(1e-9)).ln() * 60.0).ceil() as usize;

        let mut hours = Vec::with_capacity(n_hours);
        let mut snow_depth = 0.0f64;
        for h in 0..n_hours {
            let ts = start + h as i64 * SECS_PER_HOUR;
            let date = polygamy_stdata::temporal::date_of(ts);
            let doy =
                (ts - CivilDate::new(date.year, 1, 1).timestamp()) as f64 / SECS_PER_DAY as f64;
            let hod = (ts.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as f64;

            let seasonal = 12.0 + 14.0 * ((doy - 105.0) / 365.25 * std::f64::consts::TAU).sin();
            let diurnal = 4.0 * ((hod - 9.0) / 24.0 * std::f64::consts::TAU).sin();
            let temperature = seasonal + diurnal + temp_ar.step(&mut rng);

            // Storm scheduling.
            if rain_left == 0 {
                if next_rain_in == 0 {
                    rain_left = rng.gen_range(3..18);
                    rain_strength = (gaussian(&mut rng).abs() * 3.0 + 1.0).min(15.0);
                    next_rain_in = (-(rng.gen::<f64>().max(1e-9)).ln() * 60.0).ceil() as usize;
                } else {
                    next_rain_in -= 1;
                }
            }
            let hurricane = events.intensity(EventKind::Hurricane, ts);
            let snowstorm = events.intensity(EventKind::Snowstorm, ts);
            let mut precipitation = 0.0;
            let mut snow_fall = 0.0;
            if rain_left > 0 {
                rain_left -= 1;
                let burst = rain_strength * (0.5 + 0.5 * rng.gen::<f64>());
                if temperature < 0.5 {
                    snow_fall += burst * 0.6;
                } else {
                    precipitation += burst;
                }
            }
            // Hurricanes bring torrential rain regardless of season.
            precipitation += 25.0 * hurricane;
            // Trace drizzle/mist keeps dry hours off an exact-zero plateau
            // (real hourly gauges report small nonzero values), so the
            // split tree sees genuine low-persistence minima there instead
            // of one giant zero-sea component.
            precipitation += 0.03 * gaussian(&mut rng).abs();
            // Snowstorms dump snow.
            snow_fall += 6.0 * snowstorm;

            snow_depth =
                (snow_depth + snow_fall - 0.12 * temperature.max(0.0) - 0.02 * snow_depth).max(0.0);

            let wind_speed = (9.0 + wind_ar.step(&mut rng).abs() * 2.0 + 85.0 * hurricane).max(0.0);
            let visibility = (10.0
                - 6.0 * (precipitation / 10.0).min(1.0)
                - 5.0 * (snow_fall / 4.0).min(1.0)
                - 3.0 * hurricane
                + 0.3 * gaussian(&mut rng))
            .clamp(0.4, 10.0);
            let humidity = (52.0
                + 35.0 * (precipitation / 6.0).min(1.0)
                + 20.0 * (snow_fall / 4.0).min(1.0)
                + 4.0 * gaussian(&mut rng))
            .clamp(10.0, 100.0);
            let pressure = 1013.0 + pressure_ar.step(&mut rng) - 28.0 * hurricane;

            hours.push(HourWeather {
                temperature,
                precipitation,
                wind_speed,
                snow_depth,
                snow_fall,
                visibility,
                humidity,
                pressure,
            });
        }
        Self { start, hours }
    }

    /// Number of simulated hours.
    pub fn len(&self) -> usize {
        self.hours.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.hours.is_empty()
    }

    /// Weather at a timestamp (clamped to the simulated window).
    pub fn at(&self, ts: Timestamp) -> &HourWeather {
        let idx =
            ((ts - self.start) / SECS_PER_HOUR).clamp(0, self.hours.len() as i64 - 1) as usize;
        &self.hours[idx]
    }

    /// End timestamp (exclusive).
    pub fn end(&self) -> Timestamp {
        self.start + self.hours.len() as i64 * SECS_PER_HOUR
    }

    /// Materialises the published weather data set: one record per hour at
    /// city resolution with the 8 physical attributes plus `extra_attrs`
    /// AR(1) filler attributes.
    pub fn dataset(&self, center: GeoPoint, extra_attrs: usize, seed: u64) -> Dataset {
        let meta = DatasetMeta {
            name: "weather".into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: "Comprehensive synthetic weather data (NCEI analogue)".into(),
        };
        let mut builder = DatasetBuilder::new(meta)
            .attribute(AttributeMeta::named("temperature"))
            .attribute(AttributeMeta::named("precipitation"))
            .attribute(AttributeMeta::named("wind-speed"))
            .attribute(AttributeMeta::named("snow-depth"))
            .attribute(AttributeMeta::named("snow-fall"))
            .attribute(AttributeMeta::named("visibility"))
            .attribute(AttributeMeta::named("humidity"))
            .attribute(AttributeMeta::named("pressure"));
        for i in 0..extra_attrs {
            builder = builder.attribute(AttributeMeta::named(format!("misc-{i:03}")));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fillers: Vec<Ar1> = (0..extra_attrs)
            .map(|_| Ar1::new(0.8 + 0.15 * rng.gen::<f64>(), 1.0))
            .collect();
        builder.reserve(self.hours.len());
        let mut values = Vec::with_capacity(8 + extra_attrs);
        for (h, w) in self.hours.iter().enumerate() {
            values.clear();
            values.extend_from_slice(&[
                w.temperature,
                w.precipitation,
                w.wind_speed,
                w.snow_depth,
                w.snow_fall,
                w.visibility,
                w.humidity,
                w.pressure,
            ]);
            for f in &mut fillers {
                values.push(f.step(&mut rng));
            }
            builder
                .push(center, self.start + h as i64 * SECS_PER_HOUR, &values)
                .expect("schema matches");
        }
        builder.build().expect("weather dataset builds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> (WeatherTrace, UrbanEvents) {
        let events = UrbanEvents::default_calendar(2011, 2);
        let cfg = WeatherConfig::default();
        (WeatherTrace::generate(cfg, &events), events)
    }

    #[test]
    fn trace_covers_two_years() {
        let (t, _) = trace();
        // 2011 (365 d) + 2012 (366 d) = 731 days.
        assert_eq!(t.len(), 731 * 24);
        assert_eq!(t.end() - t.start, 731 * SECS_PER_DAY);
    }

    #[test]
    fn seasons_visible_in_temperature() {
        let (t, _) = trace();
        let july_noon = CivilDate::new(2011, 7, 15).at_hour(12);
        let jan_noon = CivilDate::new(2011, 1, 15).at_hour(12);
        assert!(t.at(july_noon).temperature > t.at(jan_noon).temperature + 10.0);
    }

    #[test]
    fn hurricanes_dominate_wind() {
        let (t, ev) = trace();
        let sandy = ev.events.iter().find(|e| e.name.contains("Sandy")).unwrap();
        let mid = (sandy.start + sandy.end) / 2;
        let storm_wind = t.at(mid).wind_speed;
        // Typical wind is ~9-15; the hurricane must be an extreme outlier.
        let typical: f64 = (0..1000)
            .map(|i| t.hours[i * 7 % t.len()].wind_speed)
            .sum::<f64>()
            / 1000.0;
        assert!(
            storm_wind > typical + 50.0,
            "storm {storm_wind} vs typical {typical}"
        );
        assert!(t.at(mid).precipitation > 10.0);
    }

    #[test]
    fn snow_accumulates_in_storms() {
        let (t, ev) = trace();
        let storm = ev.of_kind(EventKind::Snowstorm).next().unwrap();
        let after = storm.end + 6 * SECS_PER_HOUR;
        assert!(
            t.at(after).snow_depth > 1.0,
            "depth {}",
            t.at(after).snow_depth
        );
        // Snow melts by mid-summer.
        let july = CivilDate::new(2011, 7, 20).at_hour(12);
        assert_eq!(t.at(july).snow_depth, 0.0);
    }

    #[test]
    fn it_rains_sometimes_but_not_always() {
        let (t, _) = trace();
        let rainy = t.hours.iter().filter(|w| w.precipitation > 0.1).count();
        let frac = rainy as f64 / t.len() as f64;
        assert!(frac > 0.02 && frac < 0.5, "rain fraction {frac}");
    }

    #[test]
    fn dataset_shape() {
        let (t, _) = trace();
        let d = t.dataset(GeoPoint::new(5.0, 5.0), 8, 7);
        assert_eq!(d.len(), t.len());
        assert_eq!(d.attribute_count(), 16);
        assert_eq!(d.meta.spatial_resolution, SpatialResolution::City);
        assert_eq!(d.attribute_index("wind-speed").unwrap(), 2);
        assert!(d.attribute_index("misc-000").is_ok());
    }

    #[test]
    fn deterministic() {
        let events = UrbanEvents::default_calendar(2011, 1);
        let a = WeatherTrace::generate(
            WeatherConfig {
                n_years: 1,
                ..Default::default()
            },
            &events,
        );
        let b = WeatherTrace::generate(
            WeatherConfig {
                n_years: 1,
                ..Default::default()
            },
            &events,
        );
        assert_eq!(a.hours[1000], b.hours[1000]);
    }
}

//! # polygamy-datagen — synthetic urban data substrate
//!
//! The paper evaluates on two corpora we cannot redistribute: the *NYC
//! Urban* collection (Table 1: taxi, weather, 311, 911, Citi Bike, vehicle
//! collisions, traffic speed, gas prices, Twitter) and *NYC Open* (300
//! small public data sets). This crate builds statistical analogues with
//! **planted, ground-truth couplings** mirroring the relationships the
//! paper reports:
//!
//! | planted coupling | paper finding |
//! |---|---|
//! | hurricanes crush taxi activity | wind ↔ trips, extreme, τ=−1 |
//! | rain suppresses taxi activity | precipitation ↔ taxis, τ=−0.62 |
//! | rain raises fares (surge) | precipitation ↔ fare, τ=0.73 |
//! | snow lengthens bike trips / idles stations | snow ↔ Citi Bike |
//! | rain worsens collision severity, not frequency | rain ↔ injuries |
//! | taxi volume slows traffic | trips ↔ speed, τ=−0.90 |
//! | collisions drive 311/911 calls | collisions ↔ 311/911 |
//! | gas prices drift into fares | gas ↔ fare (month) |
//! | Twitter independent of bikes | spurious pair the tests must prune |
//!
//! Ground truth lets us quantify what the paper could only argue
//! qualitatively: recall of planted relationships and pruning of spurious
//! ones.

#![forbid(unsafe_code)]

pub mod activity;
pub mod city;
pub mod events;
pub mod noise;
pub mod opendata;
pub mod urban;
pub mod util;
pub mod weather;

pub use city::{CityConfig, CityModel};
pub use events::{EventKind, EventWindow, UrbanEvents};
pub use noise::add_iqr_noise;
pub use opendata::{open_collection, OpenCollection, OpenConfig};
pub use urban::{urban_collection, UrbanCollection, UrbanConfig};
pub use weather::{WeatherConfig, WeatherTrace};

//! Fault injection for sharded stores (this PR's acceptance criteria):
//!
//! * a missing, truncated or manifest-corrupted shard file makes **only
//!   the queries whose footprint touches that shard** fail, with the typed
//!   [`StoreError::ShardUnavailable`] naming the shard and file — and they
//!   keep failing with the same error on every retry;
//! * queries confined to healthy shards keep serving, before and after a
//!   failed query, with results byte-identical to the monolithic baseline;
//! * segment-level corruption *inside* an otherwise healthy shard keeps
//!   the narrower contract: the shard stays available and only queries
//!   reaching the corrupt segment see [`StoreError::ChecksumMismatch`];
//! * eager sharded opens fail up front when the filter's footprint
//!   touches a broken shard, and succeed when a load filter keeps the
//!   footprint on healthy shards.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_store::{shard_store, LoadFilter, SourceBackend, Store, StoreError, StoreSession};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("polygamy-shard-fault-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spiky_dataset(name: &str, level: f64, bump_at: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("shard-fault data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..480i64 {
        let v = if h == bump_at || h == bump_at + 91 {
            40.0
        } else {
            level + (h % 24) as f64 * 0.05
        };
        b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v])
            .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

/// Five data sets over three shards (round-robin): shard 0 = {alpha,
/// delta}, shard 1 = {beta, epsilon}, shard 2 = {gamma}.
fn build_sharded(dir: &std::path::Path) -> (DataPolygamy, PathBuf) {
    let datasets = vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 333),
        spiky_dataset("delta", 3.0, 210),
        spiky_dataset("epsilon", -0.5, 210),
    ];
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::fast_test(),
    );
    for d in &datasets {
        dp.add_dataset(d.clone());
    }
    dp.build_index();
    let monolith = dir.join("corpus-mono.plst");
    Store::save(&monolith, dp.geometry(), dp.index().unwrap()).unwrap();
    let catalog_path = dir.join("corpus.plst");
    shard_store(&monolith, &catalog_path, 3).unwrap();
    (dp, catalog_path)
}

fn test_clause() -> Clause {
    Clause::default().permutations(40).include_insignificant()
}

fn between(a: &str, b: &str) -> RelationshipQuery {
    RelationshipQuery::between(&[a], &[b]).with_clause(test_clause())
}

fn open_lazy(path: &std::path::Path, backend: SourceBackend) -> StoreSession {
    StoreSession::open_lazy_with(path, Config::fast_test(), &LoadFilter::all(), backend).unwrap()
}

/// Asserts `result` is the typed unavailability error for `shard`.
fn assert_unavailable(result: Result<Vec<Relationship>, StoreError>, shard: usize) {
    match result {
        Err(StoreError::ShardUnavailable { shard: s, file, .. }) => {
            assert_eq!(s, shard);
            assert!(
                file.contains(&format!("shard{shard}")),
                "error names the shard file: {file}"
            );
        }
        other => panic!("expected ShardUnavailable for shard {shard}, got {other:?}"),
    }
}

#[test]
fn missing_shard_fails_only_touching_queries_repeatably() {
    let dir = tmp_dir("missing");
    let _cleanup = Cleanup(dir.clone());
    let (dp, catalog_path) = build_sharded(&dir);

    // Kill shard 2 (gamma) outright.
    std::fs::remove_file(dir.join("corpus.shard2.plst")).unwrap();

    for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
        // Degraded open still succeeds...
        let session = open_lazy(&catalog_path, backend);
        assert_eq!(session.n_shards(), 3);
        let lazy = session.sharded_lazy().expect("sharded lazy session");
        assert!(lazy.unavailable_reason(0).is_none(), "{backend:?}");
        assert!(lazy.unavailable_reason(1).is_none(), "{backend:?}");
        assert!(lazy.unavailable_reason(2).is_some(), "{backend:?}");

        // ...and queries that stay on shards 0/1 serve the monolithic
        // bytes (alpha–beta crosses shards, alpha–delta stays on one).
        for q in [between("alpha", "beta"), between("alpha", "delta")] {
            assert_eq!(
                session.query(&q).unwrap(),
                dp.query(&q).unwrap(),
                "{backend:?}"
            );
        }

        // Queries touching gamma fail with the typed error — repeatably.
        for _ in 0..2 {
            assert_unavailable(session.query(&between("alpha", "gamma")), 2);
        }
        // Whole-corpus footprints touch every shard, so they fail too.
        assert_unavailable(
            session.query(&RelationshipQuery::all().with_clause(test_clause())),
            2,
        );

        // Clean shards keep serving after the failures.
        let q = between("beta", "epsilon");
        assert_eq!(
            session.query(&q).unwrap(),
            dp.query(&q).unwrap(),
            "{backend:?}"
        );
        // A batch confined to healthy shards works end to end.
        let healthy = [between("alpha", "beta"), between("delta", "epsilon")];
        let batched = session.query_many(&healthy).unwrap();
        for (q, rels) in healthy.iter().zip(&batched) {
            assert_eq!(rels, &dp.query(q).unwrap(), "{backend:?}");
        }
    }
}

#[test]
fn truncated_and_corrupted_shards_degrade_the_same_way() {
    let dir = tmp_dir("truncate");
    let _cleanup = Cleanup(dir.clone());
    let (dp, catalog_path) = build_sharded(&dir);

    // Truncate shard 1 (beta, epsilon) to half its size: its tail manifest
    // is gone, so it cannot open.
    let shard1 = dir.join("corpus.shard1.plst");
    let bytes = std::fs::read(&shard1).unwrap();
    std::fs::write(&shard1, &bytes[..bytes.len() / 2]).unwrap();

    // Flip a byte inside shard 2's manifest so its checksum fails.
    let shard2 = dir.join("corpus.shard2.plst");
    let mut bytes = std::fs::read(&shard2).unwrap();
    let last = bytes.len() - 5;
    bytes[last] ^= 0x10;
    std::fs::write(&shard2, &bytes).unwrap();

    let session = open_lazy(&catalog_path, SourceBackend::PositionedRead);
    let lazy = session.sharded_lazy().unwrap();
    assert!(lazy.unavailable_reason(0).is_none());
    assert!(lazy.unavailable_reason(1).unwrap().contains("truncated"));
    assert!(lazy.unavailable_reason(2).unwrap().contains("checksum"));

    // Shard 0's pair still answers with monolithic bytes.
    let q = between("alpha", "delta");
    assert_eq!(session.query(&q).unwrap(), dp.query(&q).unwrap());
    // Each broken shard rejects with its own index.
    assert_unavailable(session.query(&between("alpha", "beta")), 1);
    assert_unavailable(session.query(&between("alpha", "gamma")), 2);
    // Verification fails fast on the first broken shard.
    assert!(lazy.verify_all().is_err());
}

#[test]
fn segment_corruption_inside_a_healthy_shard_stays_segment_scoped() {
    let dir = tmp_dir("segment");
    let _cleanup = Cleanup(dir.clone());
    let (dp, catalog_path) = build_sharded(&dir);

    // Flip one byte inside a *segment* of shard 2 (gamma): the manifest
    // still verifies, so the shard opens and stays available.
    let shard2 = dir.join("corpus.shard2.plst");
    let store = Store::open(&shard2).unwrap();
    let seg = store.manifest().segments[0].loc;
    drop(store);
    let mut bytes = std::fs::read(&shard2).unwrap();
    bytes[seg.offset as usize + 3] ^= 0x40;
    std::fs::write(&shard2, &bytes).unwrap();

    let session = open_lazy(&catalog_path, SourceBackend::PositionedRead);
    let lazy = session.sharded_lazy().unwrap();
    assert!(lazy.unavailable_reason(2).is_none(), "shard itself is fine");

    // Only queries reaching the corrupt segment fail — with the narrower
    // checksum error naming gamma, twice (the verdict is sticky).
    for _ in 0..2 {
        match session.query(&between("alpha", "gamma")) {
            Err(StoreError::ChecksumMismatch { what }) => assert!(what.contains("gamma")),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }
    let q = between("alpha", "beta");
    assert_eq!(session.query(&q).unwrap(), dp.query(&q).unwrap());
}

#[test]
fn eager_open_honors_shard_availability_through_the_filter() {
    let dir = tmp_dir("eager");
    let _cleanup = Cleanup(dir.clone());
    let (dp, catalog_path) = build_sharded(&dir);
    std::fs::remove_file(dir.join("corpus.shard2.plst")).unwrap();

    // A full eager open needs every shard: typed failure up front.
    match StoreSession::open_with(&catalog_path, Config::fast_test(), &LoadFilter::all()) {
        Err(StoreError::ShardUnavailable { shard: 2, .. }) => {}
        other => panic!("expected ShardUnavailable for shard 2, got {other:?}"),
    }

    // Filtered to data sets on healthy shards, the eager open succeeds and
    // matches the monolithic baseline.
    let session = StoreSession::open_with(
        &catalog_path,
        Config::fast_test(),
        &LoadFilter::all().datasets(&["alpha", "beta", "delta", "epsilon"]),
    )
    .unwrap();
    assert_eq!(session.n_shards(), 3);
    assert!(!session.is_lazy() && session.index().is_some());
    let q = between("alpha", "epsilon");
    assert_eq!(session.query(&q).unwrap(), dp.query(&q).unwrap());
    // Cataloged-but-unloaded gamma keeps the session's typed refusal.
    assert!(matches!(
        session.query(&between("alpha", "gamma")),
        Err(StoreError::DatasetNotLoaded(name)) if name == "gamma"
    ));
}

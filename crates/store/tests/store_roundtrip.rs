//! End-to-end store invariants (the PR's acceptance criteria):
//!
//! * save → load → `StoreSession::query` returns results identical to the
//!   in-memory `DataPolygamy::query` for the same corpus and clause;
//! * incremental upsert of one data set into an existing store matches a
//!   from-scratch rebuild of the same corpus;
//! * selective loading materializes only the requested segments;
//! * corrupted/truncated/mis-versioned files yield typed errors;
//! * one session serves concurrent readers.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_store::{LoadFilter, Store, StoreError, StoreSession};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "polygamy-store-test-{}-{tag}.plst",
        std::process::id()
    ))
}

/// Removes the file when dropped, so failures don't litter the temp dir.
struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn spiky_dataset(name: &str, level: f64, bump_at: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("store-test data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..600i64 {
        let v = if h == bump_at || h == bump_at + 137 {
            40.0
        } else {
            level + (h % 24) as f64 * 0.05
        };
        b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v])
            .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn corpus() -> Vec<Dataset> {
    vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 333),
    ]
}

fn build_framework(datasets: &[Dataset]) -> DataPolygamy {
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::fast_test(),
    );
    for d in datasets {
        dp.add_dataset(d.clone());
    }
    dp.build_index();
    dp
}

fn test_clause() -> Clause {
    Clause::default().permutations(40).include_insignificant()
}

#[test]
fn session_query_matches_in_memory_framework() {
    let path = tmp_path("roundtrip");
    let _cleanup = Cleanup(path.clone());
    let dp = build_framework(&corpus());
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();

    let session = StoreSession::open_with(&path, Config::fast_test(), &LoadFilter::all()).unwrap();
    // The materialized index is byte-for-byte the one that was saved.
    assert_eq!(
        session.index().unwrap().to_json().unwrap(),
        dp.index().unwrap().to_json().unwrap()
    );
    // And every query form answers identically.
    for query in [
        RelationshipQuery::all().with_clause(test_clause()),
        RelationshipQuery::of("alpha").with_clause(test_clause()),
        RelationshipQuery::between(&["beta"], &["gamma"]).with_clause(test_clause()),
    ] {
        let from_store = session.query(&query).unwrap();
        let in_memory = dp.query(&query).unwrap();
        assert_eq!(from_store, in_memory);
        assert!(!from_store.is_empty() || query.left.is_some());
    }
    assert!(session.cache_len() > 0, "results were cached");
}

#[test]
fn incremental_upsert_matches_scratch_rebuild() {
    let incremental = tmp_path("upsert-inc");
    let scratch = tmp_path("upsert-scratch");
    let _c1 = Cleanup(incremental.clone());
    let _c2 = Cleanup(scratch.clone());
    let datasets = corpus();
    let config = Config::fast_test();

    // Store over {alpha, beta}, then upsert gamma incrementally.
    let two = build_framework(&datasets[..2]);
    Store::save(&incremental, two.geometry(), two.index().unwrap()).unwrap();
    Store::upsert_dataset(&incremental, &datasets[2], &config).unwrap();

    // From-scratch store over {alpha, beta, gamma}.
    let three = build_framework(&datasets);
    Store::save(&scratch, three.geometry(), three.index().unwrap()).unwrap();

    let inc_index = Store::open(&incremental).unwrap().load().unwrap();
    let scr_index = Store::open(&scratch).unwrap().load().unwrap();
    assert_eq!(inc_index.to_json().unwrap(), scr_index.to_json().unwrap());

    // Queries agree too (and with the in-memory framework).
    let q = RelationshipQuery::all().with_clause(test_clause());
    let inc_session = StoreSession::open_with(&incremental, config, &LoadFilter::all()).unwrap();
    assert_eq!(inc_session.query(&q).unwrap(), three.query(&q).unwrap());
}

#[test]
fn upsert_replaces_existing_dataset() {
    let path = tmp_path("upsert-replace");
    let scratch = tmp_path("upsert-replace-scratch");
    let _c1 = Cleanup(path.clone());
    let _c2 = Cleanup(scratch.clone());
    let config = Config::fast_test();
    let datasets = corpus();
    let dp = build_framework(&datasets);
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();

    // Replace beta with a reshaped version, in place.
    let beta2 = spiky_dataset("beta", 3.0, 200);
    Store::upsert_dataset(&path, &beta2, &config).unwrap();

    let replaced = vec![datasets[0].clone(), beta2, datasets[2].clone()];
    let expect = build_framework(&replaced);
    Store::save(&scratch, expect.geometry(), expect.index().unwrap()).unwrap();
    assert_eq!(
        Store::open(&path)
            .unwrap()
            .load()
            .unwrap()
            .to_json()
            .unwrap(),
        Store::open(&scratch)
            .unwrap()
            .load()
            .unwrap()
            .to_json()
            .unwrap()
    );
}

#[test]
fn remove_dataset_matches_scratch_rebuild() {
    let path = tmp_path("remove");
    let _cleanup = Cleanup(path.clone());
    let datasets = corpus();
    let dp = build_framework(&datasets);
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
    let store = Store::remove_dataset(&path, "beta").unwrap();
    assert_eq!(store.manifest().datasets.len(), 2);

    let kept = vec![datasets[0].clone(), datasets[2].clone()];
    let expect = build_framework(&kept);
    assert_eq!(
        store.load().unwrap().to_json().unwrap(),
        expect.index().unwrap().to_json().unwrap()
    );
    // Removing a data set not in the catalog is a typed error.
    assert!(matches!(
        Store::remove_dataset(&path, "beta"),
        Err(StoreError::UnknownDataset(_))
    ));
}

#[test]
fn selective_loading_materializes_only_requested_segments() {
    let path = tmp_path("selective");
    let _cleanup = Cleanup(path.clone());
    let dp = build_framework(&corpus());
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
    let store = Store::open(&path).unwrap();

    let full = store.load().unwrap();
    let partial = store
        .load_filtered(&LoadFilter::all().datasets(&["alpha", "gamma"]))
        .unwrap();
    // Catalog always loads in full; functions only for the admitted sets.
    assert_eq!(partial.datasets.len(), 3);
    assert!(partial.functions.len() < full.functions.len());
    assert!(partial.functions.iter().all(|f| f.dataset_index != 1));
    assert_eq!(
        partial.functions.len(),
        full.functions
            .iter()
            .filter(|f| f.dataset_index != 1)
            .count()
    );
    // A partial session still answers queries over its loaded data sets.
    let session = StoreSession::from_store(
        &store,
        Config::fast_test(),
        &LoadFilter::all().datasets(&["alpha", "gamma"]),
    )
    .unwrap();
    let q = RelationshipQuery::between(&["alpha"], &["gamma"]).with_clause(test_clause());
    assert_eq!(session.query(&q).unwrap(), dp.query(&q).unwrap());
    // Unknown names in the filter are typed errors, not empty loads.
    assert!(matches!(
        store.load_filtered(&LoadFilter::all().datasets(&["nope"])),
        Err(StoreError::UnknownDataset(_))
    ));
    // Querying a cataloged-but-unloaded data set is a typed refusal, never
    // a silently empty result.
    assert_eq!(session.loaded_datasets(), ["alpha", "gamma"]);
    assert!(matches!(
        session.query(
            &RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(test_clause())
        ),
        Err(StoreError::DatasetNotLoaded(name)) if name == "beta"
    ));
    // A name unknown to the whole catalog keeps its UnknownDataset error.
    assert!(matches!(
        session
            .query(&RelationshipQuery::between(&["alpha"], &["nope"]).with_clause(test_clause())),
        Err(StoreError::Query(polygamy_core::Error::UnknownDataset(_)))
    ));
    // Whole-corpus queries range over the loaded subset: identical to the
    // explicit pair, with no silently dropped pairs involving beta.
    assert_eq!(
        session
            .query(&RelationshipQuery::all().with_clause(test_clause()))
            .unwrap(),
        session.query(&q).unwrap()
    );
}

#[test]
fn corruption_yields_typed_errors() {
    let path = tmp_path("corruption");
    let _cleanup = Cleanup(path.clone());
    let dp = build_framework(&corpus()[..2]);
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let store = Store::open(&path).unwrap();
    let first_segment = store.manifest().segments[0].loc;

    // Truncated inside the manifest tail: open() fails with Truncated.
    std::fs::write(&path, &pristine[..pristine.len() - 10]).unwrap();
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::Truncated { .. })
    ));

    // Truncated to a partial header.
    std::fs::write(&path, &pristine[..20]).unwrap();
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::Truncated { .. })
    ));

    // A flipped byte inside a segment payload: open() succeeds (manifest is
    // intact), loading that segment reports a checksum mismatch.
    let mut flipped = pristine.clone();
    flipped[first_segment.offset as usize + 3] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let reopened = Store::open(&path).unwrap();
    assert!(matches!(
        reopened.load(),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    // Maintenance refuses to copy the corruption forward: removing beta
    // would copy alpha's (corrupted) segments verbatim, so it must fail.
    assert!(matches!(
        Store::remove_dataset(&path, "beta"),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // A flipped byte in the stored manifest checksum field of the header.
    let mut bad_sum = pristine.clone();
    bad_sum[32] ^= 0xFF; // header bytes 32..40 = manifest checksum
    std::fs::write(&path, &bad_sum).unwrap();
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // Wrong version.
    let mut bad_version = pristine.clone();
    bad_version[8] = 0x7F;
    std::fs::write(&path, &bad_version).unwrap();
    assert!(matches!(
        Store::open(&path),
        Err(StoreError::UnsupportedVersion {
            found: 0x7F,
            supported: 1
        })
    ));

    // Wrong magic.
    let mut bad_magic = pristine.clone();
    bad_magic[0] = b'X';
    std::fs::write(&path, &bad_magic).unwrap();
    assert!(matches!(Store::open(&path), Err(StoreError::BadMagic)));

    // And the pristine bytes still load fine (the tests above really were
    // exercising the corruption, not some unrelated breakage).
    std::fs::write(&path, &pristine).unwrap();
    Store::open(&path).unwrap().load().unwrap();
}

#[test]
fn session_query_many_matches_single_queries() {
    let path = tmp_path("query-many");
    let _cleanup = Cleanup(path.clone());
    let dp = build_framework(&corpus());
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
    let queries = vec![
        RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(test_clause()),
        RelationshipQuery::all().with_clause(test_clause()),
        RelationshipQuery::of("gamma").with_clause(test_clause()),
    ];

    let batch_session =
        StoreSession::open_with(&path, Config::fast_test(), &LoadFilter::all()).unwrap();
    let batched = batch_session.query_many(&queries).unwrap();
    assert_eq!(batched.len(), queries.len());
    // The batch evaluated each canonical pair exactly once.
    assert_eq!(batch_session.cache_len(), 3);

    let single_session =
        StoreSession::open_with(&path, Config::fast_test(), &LoadFilter::all()).unwrap();
    for (q, batch_result) in queries.iter().zip(&batched) {
        assert_eq!(batch_result, &single_session.query(q).unwrap());
    }

    // Load-filter scoping applies per batched query too.
    let filtered = StoreSession::open_with(
        &path,
        Config::fast_test(),
        &LoadFilter::all().datasets(&["alpha", "gamma"]),
    )
    .unwrap();
    assert!(matches!(
        filtered.query_many(&queries),
        Err(StoreError::DatasetNotLoaded(name)) if name == "beta"
    ));
}

#[test]
fn geometry_missing_an_indexed_resolution_is_a_typed_error() {
    use polygamy_core::function::FunctionSpec;
    use polygamy_core::index::{DatasetEntry, FunctionEntry, PolygamyIndex};
    use polygamy_topology::{FeatureSet, FeatureSets, SeasonalThresholds, Thresholds};

    let path = tmp_path("missing-geometry");
    let _cleanup = Cleanup(path.clone());
    // A store whose segments sit at zip resolution while its geometry blob
    // only carries the city partition (Store::save trusts its caller, so a
    // mismatched pair of artifacts can reach disk).
    let entry = |di: usize, name: &str| {
        let (n_regions, n_steps) = (2usize, 4usize);
        FunctionEntry {
            spec: FunctionSpec::density(name),
            dataset_index: di,
            resolution: Resolution::new(SpatialResolution::Zip, TemporalResolution::Hour),
            n_regions,
            start_bucket: 0,
            n_steps,
            features: FeatureSets {
                salient: FeatureSet::empty(n_regions * n_steps),
                extreme: FeatureSet::empty(n_regions * n_steps),
            },
            thresholds: SeasonalThresholds {
                interval_of_step: vec![0; n_steps],
                interval_ids: vec![0],
                per_interval: vec![Thresholds::none()],
            },
            field: None,
            tree_nodes: 0,
        }
    };
    let catalog = |name: &str| DatasetEntry {
        meta: DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::Zip,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        },
        n_records: 4,
        raw_bytes: 64,
        n_specs: 1,
    };
    let index = PolygamyIndex {
        datasets: vec![catalog("a"), catalog("b")],
        functions: vec![entry(0, "a"), entry(1, "b")],
    };
    Store::save(&path, &CityGeometry::city_only(0.0, 0.0, 1.0, 1.0), &index).unwrap();

    let session = StoreSession::open_with(&path, Config::fast_test(), &LoadFilter::all()).unwrap();
    let err = session
        .query(&RelationshipQuery::all().with_clause(test_clause()))
        .unwrap_err();
    assert!(matches!(
        err,
        StoreError::Query(polygamy_core::Error::MissingGeometry(
            SpatialResolution::Zip
        ))
    ));
    assert!(err.to_string().contains("zip"), "{err}");
}

#[test]
fn one_session_serves_concurrent_readers() {
    let path = tmp_path("concurrent");
    let _cleanup = Cleanup(path.clone());
    let dp = build_framework(&corpus());
    Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
    let session = StoreSession::open_with(&path, Config::fast_test(), &LoadFilter::all()).unwrap();
    let expected = dp
        .query(&RelationshipQuery::all().with_clause(test_clause()))
        .unwrap();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..3 {
                    let got = session
                        .query(&RelationshipQuery::all().with_clause(test_clause()))
                        .unwrap();
                    assert_eq!(got, expected);
                }
            });
        }
    });
    // All threads hit the same pair/clause keys: the cache stays bounded
    // and small.
    assert!(session.cache_len() >= 1);
}

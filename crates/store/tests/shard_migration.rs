//! Migration round-trips between monolithic and sharded stores:
//!
//! * monolith → N shards → monolith reproduces the original file
//!   **byte-for-byte** — manifest, geometry and segment bytes — for every
//!   shard count, including the degenerate 1-shard layout;
//! * [`save_sharded`] (index → shards directly) produces the exact shard
//!   files [`shard_store`] (monolith → shards) produces, so the two build
//!   paths can never drift;
//! * sharded maintenance rewrites **exactly one shard file**: after an
//!   upsert or removal every other shard's bytes are untouched, and the
//!   rewritten layout still merges back to the byte-identical monolith a
//!   monolithic maintenance pass would have produced.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_store::{
    is_sharded, merge_shards, remove_dataset_sharded, save_sharded, shard_store,
    upsert_dataset_sharded, ShardCatalog, Store, StoreSession,
};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "polygamy-shard-migrate-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spiky_dataset(name: &str, level: f64, bump_at: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("migration data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..480i64 {
        let v = if h == bump_at {
            40.0
        } else {
            level + (h % 24) as f64 * 0.05
        };
        b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v])
            .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn build_framework(datasets: &[Dataset]) -> DataPolygamy {
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::fast_test(),
    );
    for d in datasets {
        dp.add_dataset(d.clone());
    }
    dp.build_index();
    dp
}

fn corpus() -> Vec<Dataset> {
    vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 333),
        spiky_dataset("delta", 3.0, 210),
    ]
}

#[test]
fn shard_then_merge_reproduces_the_monolith_byte_for_byte() {
    let dir = tmp_dir("roundtrip");
    let _cleanup = Cleanup(dir.clone());
    let dp = build_framework(&corpus());
    let monolith = dir.join("mono.plst");
    Store::save(&monolith, dp.geometry(), dp.index().unwrap()).unwrap();
    let original = std::fs::read(&monolith).unwrap();
    assert!(!is_sharded(&monolith).unwrap());

    for n_shards in [1usize, 2, 5] {
        let catalog_path = dir.join(format!("sharded-{n_shards}.plst"));
        let catalog = shard_store(&monolith, &catalog_path, n_shards).unwrap();
        assert!(is_sharded(&catalog_path).unwrap());
        assert_eq!(catalog.n_shards(), n_shards);
        // Round-robin assignment, one owner per data set.
        for di in 0..catalog.datasets.len() {
            assert_eq!(catalog.shard_of[di], di % n_shards);
        }
        // The catalog survives its own disk round-trip.
        assert_eq!(ShardCatalog::read(&catalog_path).unwrap(), catalog);

        let merged = dir.join(format!("merged-{n_shards}.plst"));
        merge_shards(&catalog_path, &merged).unwrap();
        assert_eq!(
            std::fs::read(&merged).unwrap(),
            original,
            "merge of {n_shards} shards must reproduce the monolith bit-for-bit"
        );
    }
}

#[test]
fn save_sharded_matches_shard_store_output_exactly() {
    let dir = tmp_dir("buildpaths");
    let _cleanup = Cleanup(dir.clone());
    let dp = build_framework(&corpus());

    // Path A: monolith on disk, then migrate.
    let monolith = dir.join("mono.plst");
    Store::save(&monolith, dp.geometry(), dp.index().unwrap()).unwrap();
    let via_migrate = dir.join("migrated.plst");
    shard_store(&monolith, &via_migrate, 3).unwrap();

    // Path B: straight from the in-memory index.
    let via_save = dir.join("direct.plst");
    save_sharded(&via_save, dp.geometry(), dp.index().unwrap(), 3).unwrap();

    for i in 0..3 {
        assert_eq!(
            std::fs::read(dir.join(format!("migrated.shard{i}.plst"))).unwrap(),
            std::fs::read(dir.join(format!("direct.shard{i}.plst"))).unwrap(),
            "shard {i} must be identical from both build paths"
        );
    }
}

#[test]
fn sharded_upsert_rewrites_exactly_one_shard() {
    let dir = tmp_dir("upsert");
    let _cleanup = Cleanup(dir.clone());
    let dp = build_framework(&corpus());
    let monolith = dir.join("mono.plst");
    Store::save(&monolith, dp.geometry(), dp.index().unwrap()).unwrap();
    let catalog_path = dir.join("sharded.plst");
    shard_store(&monolith, &catalog_path, 3).unwrap();
    // Round-robin over 4 data sets: shard 0 = {alpha, delta},
    // shard 1 = {beta}, shard 2 = {gamma}.
    let before: Vec<Vec<u8>> = (0..3)
        .map(|i| std::fs::read(dir.join(format!("sharded.shard{i}.plst"))).unwrap())
        .collect();

    // Replace beta (shard 1) with different data.
    let replacement = spiky_dataset("beta", -5.0, 42);
    let catalog =
        upsert_dataset_sharded(&catalog_path, &replacement, &Config::fast_test()).unwrap();
    assert_eq!(catalog.shard_of, vec![0, 1, 2, 0]);
    let after: Vec<Vec<u8>> = (0..3)
        .map(|i| std::fs::read(dir.join(format!("sharded.shard{i}.plst"))).unwrap())
        .collect();
    assert_eq!(after[0], before[0], "shard 0 untouched");
    assert_ne!(after[1], before[1], "shard 1 rewritten");
    assert_eq!(after[2], before[2], "shard 2 untouched");

    // The rewritten layout merges to the byte-identical monolith a
    // monolithic upsert would have produced.
    Store::upsert_dataset(&monolith, &replacement, &Config::fast_test()).unwrap();
    let merged = dir.join("merged.plst");
    merge_shards(&catalog_path, &merged).unwrap();
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        std::fs::read(&monolith).unwrap()
    );

    // A brand-new data set lands on the least-loaded shard (shard 1 or 2
    // hold one each; ties go lowest → shard 1) and queries still match.
    let fresh = spiky_dataset("zeta", 2.0, 77);
    let catalog = upsert_dataset_sharded(&catalog_path, &fresh, &Config::fast_test()).unwrap();
    assert_eq!(catalog.shard_of, vec![0, 1, 2, 0, 1]);
    Store::upsert_dataset(&monolith, &fresh, &Config::fast_test()).unwrap();
    let merged2 = dir.join("merged2.plst");
    merge_shards(&catalog_path, &merged2).unwrap();
    assert_eq!(
        std::fs::read(&merged2).unwrap(),
        std::fs::read(&monolith).unwrap()
    );
}

#[test]
fn sharded_removal_rewrites_exactly_one_shard_and_keeps_assignments() {
    let dir = tmp_dir("remove");
    let _cleanup = Cleanup(dir.clone());
    let dp = build_framework(&corpus());
    let monolith = dir.join("mono.plst");
    Store::save(&monolith, dp.geometry(), dp.index().unwrap()).unwrap();
    let catalog_path = dir.join("sharded.plst");
    shard_store(&monolith, &catalog_path, 3).unwrap();
    let before: Vec<Vec<u8>> = (0..3)
        .map(|i| std::fs::read(dir.join(format!("sharded.shard{i}.plst"))).unwrap())
        .collect();

    // Remove alpha (shard 0). The explicit assignment means beta, gamma
    // and delta keep their shards — no cascade.
    let catalog = remove_dataset_sharded(&catalog_path, "alpha").unwrap();
    assert_eq!(
        catalog
            .datasets
            .iter()
            .map(|d| d.meta.name.as_str())
            .collect::<Vec<_>>(),
        ["beta", "gamma", "delta"]
    );
    assert_eq!(catalog.shard_of, vec![1, 2, 0]);
    let after: Vec<Vec<u8>> = (0..3)
        .map(|i| std::fs::read(dir.join(format!("sharded.shard{i}.plst"))).unwrap())
        .collect();
    assert_ne!(after[0], before[0], "shard 0 rewritten");
    assert_eq!(after[1], before[1], "shard 1 untouched");
    assert_eq!(after[2], before[2], "shard 2 untouched");

    // Removal merges to the monolithic removal's exact bytes, and the
    // degraded layout still serves correct query results.
    Store::remove_dataset(&monolith, "alpha").unwrap();
    let merged = dir.join("merged.plst");
    merge_shards(&catalog_path, &merged).unwrap();
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        std::fs::read(&monolith).unwrap()
    );

    let clause = Clause::default().permutations(40).include_insignificant();
    let q = RelationshipQuery::between(&["beta"], &["gamma"]).with_clause(clause);
    let sharded = StoreSession::open(&catalog_path).unwrap();
    let mono = StoreSession::open(&monolith).unwrap();
    assert_eq!(sharded.query(&q).unwrap(), mono.query(&q).unwrap());
}

//! Demand-paged serving invariants (this PR's acceptance criteria):
//!
//! * a lazy open plus the first single-pair query reads **strictly fewer
//!   bytes** than an eager load — asserted through the `SegmentSource`
//!   byte counter, not inferred from timings;
//! * lazy and eager sessions return byte-identical results for every
//!   query form, on both I/O backends;
//! * corruption surfaces lazily: a flipped byte in one segment leaves the
//!   open and queries over other data sets untouched, and only a query
//!   whose footprint reaches the corrupt segment errors — repeatably,
//!   thanks to the sticky per-segment verification verdict;
//! * the single pinned handle keeps a session consistent when a writer
//!   replaces the store file mid-session.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_store::{LoadFilter, SourceBackend, Store, StoreError, StoreSession};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "polygamy-lazy-test-{}-{tag}.plst",
        std::process::id()
    ))
}

struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn spiky_dataset(name: &str, level: f64, bump_at: i64) -> Dataset {
    let meta = DatasetMeta {
        name: name.into(),
        spatial_resolution: SpatialResolution::City,
        temporal_resolution: TemporalResolution::Hour,
        description: format!("lazy-test data set {name}"),
    };
    let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
    for h in 0..600i64 {
        let v = if h == bump_at || h == bump_at + 137 {
            40.0
        } else {
            level + (h % 24) as f64 * 0.05
        };
        b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v])
            .expect("schema matches");
    }
    b.build().expect("dataset builds")
}

fn corpus() -> Vec<Dataset> {
    vec![
        spiky_dataset("alpha", 1.0, 100),
        spiky_dataset("beta", -2.0, 100),
        spiky_dataset("gamma", 0.5, 333),
    ]
}

fn build_framework(datasets: &[Dataset]) -> DataPolygamy {
    let mut dp = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        Config::fast_test(),
    );
    for d in datasets {
        dp.add_dataset(d.clone());
    }
    dp.build_index();
    dp
}

fn save_corpus(path: &PathBuf) -> DataPolygamy {
    let dp = build_framework(&corpus());
    Store::save(path, dp.geometry(), dp.index().unwrap()).unwrap();
    dp
}

fn test_clause() -> Clause {
    Clause::default().permutations(40).include_insignificant()
}

fn open_lazy(path: &PathBuf, backend: SourceBackend) -> StoreSession {
    StoreSession::open_lazy_with(path, Config::fast_test(), &LoadFilter::all(), backend).unwrap()
}

/// Bytes read so far by a lazy session's pinned source.
fn lazy_bytes(session: &StoreSession) -> u64 {
    session
        .lazy_index()
        .expect("lazy session")
        .store()
        .source()
        .bytes_fetched()
}

#[test]
fn lazy_open_plus_first_query_reads_strictly_fewer_bytes_than_eager() {
    let path = tmp_path("bytes");
    let _cleanup = Cleanup(path.clone());
    save_corpus(&path);

    // Eager baseline: open + full load, counted at the source.
    let eager_store = Store::open(&path).unwrap();
    eager_store.load().unwrap();
    eager_store.load_geometry().unwrap();
    let eager_bytes = eager_store.source().bytes_fetched();

    // Lazy: open is O(header + manifest + geometry)...
    let session = open_lazy(&path, SourceBackend::PositionedRead);
    let open_bytes = lazy_bytes(&session);
    assert!(open_bytes > 0);
    assert!(
        open_bytes < eager_bytes / 2,
        "lazy open read {open_bytes} of eager's {eager_bytes} bytes"
    );

    // ...and the first single-pair query faults in only alpha's and beta's
    // segments, never gamma's.
    let q = RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(test_clause());
    session.query(&q).unwrap();
    let after_query = lazy_bytes(&session);
    assert!(after_query > open_bytes, "the query faulted segments in");
    assert!(
        after_query < eager_bytes,
        "lazy open + first query read {after_query} bytes, eager load read \
         {eager_bytes} — laziness must read strictly fewer"
    );

    // Re-running the query faults nothing new: segment + result caches hold.
    session.query(&q).unwrap();
    assert_eq!(lazy_bytes(&session), after_query);
}

#[test]
fn lazy_matches_eager_for_every_query_form_and_backend() {
    let path = tmp_path("equivalence");
    let _cleanup = Cleanup(path.clone());
    let dp = save_corpus(&path);

    let eager = StoreSession::open_with(&path, Config::fast_test(), &LoadFilter::all()).unwrap();
    let queries = [
        RelationshipQuery::all().with_clause(test_clause()),
        RelationshipQuery::of("alpha").with_clause(test_clause()),
        RelationshipQuery::between(&["beta"], &["gamma"]).with_clause(test_clause()),
    ];
    for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
        let lazy = open_lazy(&path, backend);
        assert!(lazy.is_lazy() && lazy.index().is_none());
        for q in &queries {
            let expect = dp.query(q).unwrap();
            assert_eq!(eager.query(q).unwrap(), expect, "{backend:?}");
            assert_eq!(lazy.query(q).unwrap(), expect, "{backend:?}");
        }
        // The batched path pins the whole footprint once and still matches
        // per-query evaluation.
        let batched = lazy.query_many(&queries).unwrap();
        for (q, rels) in queries.iter().zip(&batched) {
            assert_eq!(rels, &dp.query(q).unwrap(), "{backend:?}");
        }
    }
}

#[test]
fn lazy_session_respects_load_filter() {
    let path = tmp_path("filter");
    let _cleanup = Cleanup(path.clone());
    let dp = save_corpus(&path);

    let session = StoreSession::open_lazy_with(
        &path,
        Config::fast_test(),
        &LoadFilter::all().datasets(&["alpha", "gamma"]),
        SourceBackend::PositionedRead,
    )
    .unwrap();
    assert_eq!(session.loaded_datasets(), ["alpha", "gamma"]);
    let q = RelationshipQuery::between(&["alpha"], &["gamma"]).with_clause(test_clause());
    assert_eq!(session.query(&q).unwrap(), dp.query(&q).unwrap());
    // Cataloged-but-unloaded: the session's own typed refusal.
    assert!(matches!(
        session.query(
            &RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(test_clause())
        ),
        Err(StoreError::DatasetNotLoaded(name)) if name == "beta"
    ));
    // Unknown-anywhere names keep their UnknownDataset error.
    assert!(matches!(
        session
            .query(&RelationshipQuery::between(&["alpha"], &["nope"]).with_clause(test_clause())),
        Err(StoreError::Query(polygamy_core::Error::UnknownDataset(_)))
    ));
    // Whole-corpus queries range over the loaded subset only.
    assert_eq!(
        session
            .query(&RelationshipQuery::all().with_clause(test_clause()))
            .unwrap(),
        session.query(&q).unwrap()
    );
    // Unknown filter names are rejected at open, like the eager loader.
    assert!(matches!(
        StoreSession::open_lazy_with(
            &path,
            Config::fast_test(),
            &LoadFilter::all().datasets(&["nope"]),
            SourceBackend::PositionedRead,
        ),
        Err(StoreError::UnknownDataset(_))
    ));
}

#[test]
fn corruption_surfaces_only_for_queries_touching_the_corrupt_segment() {
    let path = tmp_path("corruption");
    let _cleanup = Cleanup(path.clone());
    save_corpus(&path);

    // Flip one byte inside a segment owned by gamma.
    let pristine = std::fs::read(&path).unwrap();
    let store = Store::open(&path).unwrap();
    let gamma = store.manifest().dataset_index("gamma").unwrap();
    let gamma_seg = store
        .manifest()
        .segments
        .iter()
        .find(|s| s.dataset_index == gamma)
        .expect("gamma has segments")
        .loc;
    drop(store);
    let mut flipped = pristine.clone();
    flipped[gamma_seg.offset as usize + 3] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();

    // The eager loader refuses the whole store...
    let reopened = Store::open(&path).unwrap();
    assert!(matches!(
        reopened.load(),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // ...the lazy session opens fine and serves every query that stays
    // away from the corrupt segment.
    for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
        let session = open_lazy(&path, backend);
        let clean = RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(test_clause());
        assert!(!session.query(&clean).unwrap().is_empty(), "{backend:?}");

        // Only the query whose footprint reaches gamma errors — with the
        // accurate typed error, naming the corrupt segment's owner.
        let touching =
            RelationshipQuery::between(&["alpha"], &["gamma"]).with_clause(test_clause());
        for _ in 0..2 {
            // Twice: the sticky verdict keeps failing without re-reading.
            match session.query(&touching) {
                Err(StoreError::ChecksumMismatch { what }) => {
                    assert!(what.contains("gamma"), "{backend:?}: {what}")
                }
                other => panic!("{backend:?}: expected checksum mismatch, got {other:?}"),
            }
        }
        // The clean query still works after the failure.
        assert!(!session.query(&clean).unwrap().is_empty(), "{backend:?}");
    }
}

#[test]
fn pinned_handle_keeps_a_session_consistent_across_file_replacement() {
    let path = tmp_path("pinned");
    let _cleanup = Cleanup(path.clone());
    save_corpus(&path);

    let session = open_lazy(&path, SourceBackend::PositionedRead);
    let q = RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(test_clause());
    let before = session.query(&q).unwrap();

    // A writer atomically replaces the store with a different corpus (the
    // same rename path `Store::save` uses in production).
    let other = build_framework(&[
        spiky_dataset("delta", 3.0, 50),
        spiky_dataset("epsilon", -1.0, 50),
    ]);
    Store::save(&path, other.geometry(), other.index().unwrap()).unwrap();

    // The open session still serves the revision it pinned — including
    // segments it has not faulted in yet (gamma) — never a torn mix of the
    // two revisions.
    assert_eq!(session.query(&q).unwrap(), before);
    let gamma_q = RelationshipQuery::between(&["alpha"], &["gamma"]).with_clause(test_clause());
    assert!(session.query(&gamma_q).is_ok());
    assert_eq!(session.loaded_datasets(), ["alpha", "beta", "gamma"]);

    // A fresh open sees the new revision.
    let fresh = open_lazy(&path, SourceBackend::PositionedRead);
    assert_eq!(fresh.loaded_datasets(), ["delta", "epsilon"]);
}

//! Demand-paged index serving: fault in only the segments a query touches.
//!
//! An eager session ([`crate::store::Store::load_filtered`]) reads and
//! decodes every admitted segment at open time — O(corpus) work even when
//! the session will only ever answer queries over two data sets. A
//! [`LazyIndex`] instead opens in O(header + manifest) and materializes
//! function segments on first touch:
//!
//! * **footprint-driven faulting** — before evaluation, the executor's
//!   footprint report ([`polygamy_core::query_datasets`]) names the catalog
//!   indices a query's task expansion can reach; combined with the clause's
//!   resolution filter
//!   ([`Clause::admits_resolution`](polygamy_core::query::Clause::admits_resolution))
//!   that bounds the exact segment set to read. The bound is tight: task
//!   expansion skips left entries at non-admitted resolutions and pairs
//!   only entries sharing a resolution, so a segment outside the set can
//!   never appear in a task;
//! * **once-only verification** — each segment's FNV-1a checksum is
//!   checked on *first* access and the verdict is recorded in an atomic
//!   per-segment cell. Re-faults after LRU eviction skip re-hashing (the
//!   pinned source revision is immutable — see [`crate::source`]), and a
//!   recorded failure keeps failing without re-reading, so a corrupt
//!   segment can never slip past verification through a concurrent
//!   re-fault;
//! * **bounded decode cache** — decoded [`FunctionEntry`]s live in the
//!   same sharded bounded-LRU structure the query cache uses, keyed by
//!   directory position, so sustained traffic over a huge corpus keeps
//!   memory flat.
//!
//! Corruption surfaces *at query time*, only for queries whose footprint
//! touches the corrupt segment — opening the store and querying other data
//! sets still succeeds. That is the deliberate trade against the eager
//! path, which pays full verification at open.

use crate::codec::decode_function_segment;
use crate::error::{Result, StoreError};
use crate::source::SegmentSource;
use crate::store::{LoadFilter, Store};
use polygamy_core::index::{DatasetEntry, FunctionEntry};
use polygamy_core::query::RelationshipQuery;
use polygamy_core::{query_datasets, ShardedLruCache};
use polygamy_obs::{names, trace, Counter};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Registry handles for the lazy-serving counters, resolved once per
/// process (handles are shared by every [`LazyIndex`]).
struct LazyMetrics {
    faults: Arc<Counter>,
    cache_hits: Arc<Counter>,
    evictions: Arc<Counter>,
    verifications: Arc<Counter>,
    verify_failures: Arc<Counter>,
}

fn lazy_metrics() -> &'static LazyMetrics {
    static M: OnceLock<LazyMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = polygamy_obs::global();
        LazyMetrics {
            faults: r.counter(names::STORE_SEGMENT_FAULTS),
            cache_hits: r.counter(names::STORE_SEGMENT_CACHE_HITS),
            evictions: r.counter(names::STORE_SEGMENT_EVICTIONS),
            verifications: r.counter(names::STORE_CHECKSUM_VERIFICATIONS),
            verify_failures: r.counter(names::STORE_CHECKSUM_FAILURES),
        }
    })
}

/// Default bound on decoded segments held in memory. Entries are a few KB
/// to a few hundred KB each; 1024 keeps typical working sets fully
/// resident while bounding memory on corpora far larger than RAM.
pub const DEFAULT_SEGMENT_CACHE_CAPACITY: usize = 1_024;

/// Per-shard observability handles, passed in by the sharded open path so
/// every fault and byte served by one shard file lands on that shard's
/// own counters (`store.shard.faults.<shard>` /
/// `store.shard.bytes_fetched.<shard>`) in addition to the process-wide
/// lazy-serving counters.
#[derive(Debug, Clone)]
pub(crate) struct ShardObs {
    pub(crate) faults: Arc<Counter>,
    pub(crate) bytes_fetched: Arc<Counter>,
}

/// Per-segment verification verdict (values of the atomic cells).
const UNVERIFIED: u8 = 0;
const VERIFIED_OK: u8 = 1;
const VERIFIED_BAD: u8 = 2;

/// A store served segment-by-segment on demand. See the module docs for
/// the faulting, verification and caching contract.
#[derive(Debug)]
pub struct LazyIndex {
    store: Store,
    /// Per-segment admission by the session's load filter, directory order.
    admitted: Vec<bool>,
    /// Per-segment checksum verdict: unverified / ok / bad.
    verified: Vec<AtomicU8>,
    /// Decoded segments keyed by directory position.
    cache: ShardedLruCache<usize, Arc<FunctionEntry>>,
    /// Local → global catalog-index remap, set when this index serves one
    /// shard of a sharded store: the shard file numbers its data sets
    /// locally (0..k), but decoded entries must carry the *global* index
    /// so expansion and routing see the monolithic catalog.
    global_of: Option<Vec<usize>>,
    /// Per-shard counters, set on sharded opens.
    shard_obs: Option<ShardObs>,
}

impl LazyIndex {
    /// Wraps an open store for demand-paged serving. Reads nothing beyond
    /// what `store` already read (header + manifest); unknown data set
    /// names in `filter` are rejected here, exactly like the eager loader.
    pub fn new(store: Store, filter: &LoadFilter) -> Result<Self> {
        if let Some(names) = &filter.datasets {
            for name in names {
                store.manifest().dataset_index(name)?;
            }
        }
        let manifest = store.manifest();
        let admitted = manifest
            .segments
            .iter()
            .map(|info| filter.admits(info, &manifest.datasets))
            .collect::<Vec<_>>();
        let verified = (0..manifest.segments.len())
            .map(|_| AtomicU8::new(UNVERIFIED))
            .collect();
        Ok(Self {
            store,
            admitted,
            verified,
            cache: ShardedLruCache::new(DEFAULT_SEGMENT_CACHE_CAPACITY),
            global_of: None,
            shard_obs: None,
        })
    }

    /// [`LazyIndex::new`] for one shard of a sharded store: decoded
    /// entries carry `global_of[local]` as their data set index (the
    /// monolithic catalog position), and faults/bytes served by this shard
    /// additionally land on its per-shard counters.
    pub(crate) fn new_sharded(
        store: Store,
        filter: &LoadFilter,
        global_of: Vec<usize>,
        shard_obs: ShardObs,
    ) -> Result<Self> {
        debug_assert_eq!(global_of.len(), store.manifest().datasets.len());
        let mut lazy = Self::new(store, filter)?;
        lazy.global_of = Some(global_of);
        lazy.shard_obs = Some(shard_obs);
        Ok(lazy)
    }

    /// The global catalog index a locally-numbered data set decodes under.
    fn global_index(&self, local: usize) -> usize {
        match &self.global_of {
            Some(map) => map[local],
            None => local,
        }
    }

    /// The underlying store (manifest, header, byte source).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The data set catalog (always fully resident — it is part of the
    /// manifest).
    pub fn catalog(&self) -> &[DatasetEntry] {
        &self.store.manifest().datasets
    }

    /// Number of segments in the store's directory.
    pub fn n_segments(&self) -> usize {
        self.admitted.len()
    }

    /// Number of segments the load filter admits for serving.
    pub fn n_admitted(&self) -> usize {
        self.admitted.iter().filter(|a| **a).count()
    }

    /// Number of decoded segments currently resident in the cache.
    pub fn n_resident(&self) -> usize {
        self.cache.len()
    }

    /// Faults in every admitted segment any of `queries` can touch,
    /// returning the decoded entries in directory (canonical) order.
    ///
    /// This is the serving path's page-in step: the returned entries back
    /// an [`polygamy_core::IndexView`] whose expansion order — and
    /// therefore whose output — is byte-identical to an eager load's,
    /// because both enumerate segments in directory order.
    pub fn pin_for(&self, queries: &[RelationshipQuery]) -> Result<Vec<Arc<FunctionEntry>>> {
        let manifest = self.store.manifest();
        let mut needed = vec![false; manifest.segments.len()];
        for query in queries {
            let touched = query_datasets(&manifest.datasets, query)?;
            for (i, info) in manifest.segments.iter().enumerate() {
                if self.admitted[i]
                    && touched.contains(&info.dataset_index)
                    && query.clause.admits_resolution(info.resolution)
                {
                    needed[i] = true;
                }
            }
        }
        needed
            .iter()
            .enumerate()
            .filter(|(_, n)| **n)
            .map(|(i, _)| self.entry(i))
            .collect()
    }

    /// Faults in one segment by directory position: cache hit, or read +
    /// (first time only) verify + decode + insert.
    pub fn entry(&self, seg_index: usize) -> Result<Arc<FunctionEntry>> {
        let metrics = lazy_metrics();
        if let Some(hit) = self.cache.get(&seg_index) {
            metrics.cache_hits.inc();
            trace::add("segment_cache_hits", 1);
            return Ok(hit);
        }
        metrics.faults.inc();
        trace::add("segment_faults", 1);
        if let Some(obs) = &self.shard_obs {
            obs.faults.inc();
        }
        let manifest = self.store.manifest();
        let info = &manifest.segments[seg_index];
        let what = format!(
            "segment {}.{}",
            manifest.datasets[info.dataset_index].meta.name, info.function
        );
        // A recorded failure keeps failing without touching the disk: no
        // concurrent re-fault may decode bytes a previous fault saw fail
        // verification.
        // ordering: Acquire pairs with the Release stores below — a thread
        // that reads a verdict also sees the verification that produced it.
        if self.verified[seg_index].load(Ordering::Acquire) == VERIFIED_BAD {
            return Err(StoreError::ChecksumMismatch { what });
        }
        let bytes = self.store.source().fetch(info.loc, &what, false)?;
        if let Some(obs) = &self.shard_obs {
            obs.bytes_fetched.add(bytes.len() as u64);
        }
        // ordering: Acquire — same pairing as the verdict check above.
        if self.verified[seg_index].load(Ordering::Acquire) == UNVERIFIED {
            metrics.verifications.inc();
            match SegmentSource::verify(&bytes, info.loc, &what) {
                // ordering: Release publishes the verdict (and the checksum
                // work that justifies it) to every later Acquire load.
                Ok(()) => self.verified[seg_index].store(VERIFIED_OK, Ordering::Release),
                Err(e) => {
                    metrics.verify_failures.inc();
                    // ordering: Release — sticky failure published the same way.
                    self.verified[seg_index].store(VERIFIED_BAD, Ordering::Release);
                    return Err(e);
                }
            }
        }
        let entry = Arc::new(decode_function_segment(
            &bytes,
            self.global_index(info.dataset_index),
            &what,
        )?);
        if self.cache.insert(seg_index, Arc::clone(&entry)) {
            metrics.evictions.inc();
        }
        Ok(entry)
    }

    /// Reads and checksum-verifies every admitted segment (and the
    /// geometry blob) without decoding or caching — the force-check behind
    /// `polygamy-store inspect --verify`. Returns the number of segments
    /// checked.
    pub fn verify_all(&self) -> Result<usize> {
        let manifest = self.store.manifest();
        self.store
            .source()
            .read(manifest.geometry, "geometry")
            .map(drop)?;
        let mut checked = 0;
        for (i, info) in manifest.segments.iter().enumerate() {
            if !self.admitted[i] {
                continue;
            }
            let what = format!(
                "segment {}.{}",
                manifest.datasets[info.dataset_index].meta.name, info.function
            );
            self.store.source().read(info.loc, &what).map(drop)?;
            // ordering: Release — publishes this force-check's verdict to
            // the Acquire loads on the fault path.
            self.verified[i].store(VERIFIED_OK, Ordering::Release);
            checked += 1;
        }
        Ok(checked)
    }
}

//! # polygamy-store — persistent index store and serving sessions
//!
//! The paper's central engineering claim (Sections 5.2/6.1) is that
//! relationship queries touch only the precomputed feature index, never the
//! raw data. This crate makes that claim pay off *across process
//! lifetimes*: the index is written once to a durable, versioned on-disk
//! form and served from then on by concurrent read sessions — no rebuild on
//! restart, no raw data at query time.
//!
//! ## On-disk format (version 1)
//!
//! The normative specification of the format lives in
//! [`docs/store-format.md`](https://github.com/paper-repro/data-polygamy/blob/main/docs/store-format.md)
//! at the repository root; this section is the summary. A store file has
//! four regions:
//!
//! ```text
//! header    40 bytes, fixed: magic "PLGYSTOR", version u32, flags u32,
//!           manifest offset/len/FNV-1a checksum (3 × u64)
//! geometry  the CityGeometry as a checksummed JSON blob
//! segments  one independently checksummed binary segment per indexed
//!           scalar function (FunctionEntry): spec, resolution, window,
//!           salient/extreme feature bit vectors, seasonal thresholds,
//!           optional scalar field, tree statistics
//! manifest  geometry location, data set catalog, and a segment directory
//!           (owner data set, function name, resolution, offset/len/
//!           checksum per segment), written at the tail
//! ```
//!
//! Everything outside the geometry blob is encoded by an explicit
//! little-endian codec ([`codec`]): integers are little-endian, floats
//! travel as IEEE-754 bit patterns (NaN-exact), strings and sequences are
//! length-prefixed, and enums use the stable one-byte wire codes from
//! `polygamy_stdata` — never compiler-assigned discriminants. Every region
//! carries a 64-bit FNV-1a checksum; a truncated, bit-flipped or
//! wrong-version file yields a typed [`StoreError`], never a panic or
//! silently wrong data.
//!
//! The manifest lives at the *tail* so incremental maintenance
//! ([`Store::upsert_dataset`] / [`Store::remove_dataset`]) can copy
//! retained segment bytes verbatim, re-index only the data set being
//! changed, and write a fresh directory. A segment's owning data set is
//! recorded in the directory — not in the segment payload — so catalog
//! renumbering never rewrites segment bytes.
//!
//! ## Versioning policy
//!
//! [`format::VERSION`] names the byte-stream contract: the codec layouts,
//! the wire codes, and the clause fingerprint used for query-cache keys
//! (64-bit FNV-1a, pinned by a regression test in `polygamy_core`). Any
//! change to those bumps the version; readers reject every version other
//! than their own with [`StoreError::UnsupportedVersion`] rather than
//! guessing. Wire codes are append-only: new enum variants take fresh
//! codes, existing codes are never renumbered.
//!
//! ## Reading
//!
//! [`Store::open`] reads header + manifest only (cheap at any corpus
//! size); [`Store::load_filtered`] materializes just the segments matching
//! a data set/resolution filter. [`StoreSession`] serves
//! `RelationshipQuery`s from a loaded index behind a sharded, bounded LRU
//! cache and is freely shared across reader threads:
//!
//! ```no_run
//! use polygamy_store::{Store, StoreSession};
//! use polygamy_core::prelude::*;
//! # fn demo() -> polygamy_store::Result<()> {
//! let session = StoreSession::open("city.plst")?;
//! let query = RelationshipQuery::all().with_clause(Clause::default().min_score(0.6));
//! for rel in session.query(&query)? {
//!     println!("{rel}");
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod format;
pub mod lazy;
pub mod pql_exec;
pub mod session;
pub mod shard;
pub mod source;
pub mod store;

pub use error::{Result, StoreError};
pub use format::{BlobLoc, Header, Manifest, SegmentInfo, VERSION};
pub use lazy::LazyIndex;
pub use pql_exec::{
    execute_pql_batch, execute_pql_batch_traced, execute_pql_query, execute_pql_query_traced,
    PqlOutcome, PqlServeError,
};
pub use session::StoreSession;
pub use shard::{
    is_sharded, merge_shards, remove_dataset_sharded, save_sharded, shard_store,
    upsert_dataset_sharded, ShardCatalog, ShardedLazy, SHARD_CATALOG_VERSION, SHARD_MAGIC,
};
pub use source::{SegmentSource, SourceBackend};
pub use store::{LoadFilter, Store};

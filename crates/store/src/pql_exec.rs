//! One shared PQL execute-and-render path for every frontend.
//!
//! The CLI `query --pql/--file`, the interactive REPL and the
//! `polygamy-serve` network daemon (see `docs/serving.md`) all speak the
//! same contract: PQL text in, relationship results out, rendered either
//! as human-readable text or as one **canonical JSON object per query**.
//! This module is that contract's single implementation — parse
//! ([`parse_query`]/[`parse_batch`]) → [`StoreSession::query_many`] →
//! render — so the frontends cannot drift apart. The byte-identity
//! guarantees the daemon documents (a coalesced network response equals
//! the offline `polygamy-store query --json` output for the same query)
//! hold *because* both sides call [`PqlOutcome::to_json`].
//!
//! ```
//! use polygamy_core::prelude::*;
//! use polygamy_core::DataPolygamy;
//! use polygamy_store::{execute_pql_batch, Store, StoreSession};
//!
//! # let meta = DatasetMeta {
//! #     name: "sensor".into(),
//! #     spatial_resolution: SpatialResolution::City,
//! #     temporal_resolution: TemporalResolution::Hour,
//! #     description: String::new(),
//! # };
//! # let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
//! # for h in 0..96i64 {
//! #     let v = if h == 30 { 9.0 } else { (h % 24) as f64 * 0.1 };
//! #     b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
//! # }
//! # let mut dp = DataPolygamy::new(
//! #     CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
//! #     Config::fast_test(),
//! # );
//! # dp.add_dataset(b.build().unwrap());
//! # dp.build_index();
//! # let path = std::env::temp_dir().join(format!("plst-exec-doc-{}.plst", std::process::id()));
//! # Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
//! let session = StoreSession::open(&path).unwrap();
//! let outcomes = execute_pql_batch(&session, "between sensor and *").unwrap();
//! assert_eq!(outcomes.len(), 1);
//! // One data set → no candidate pairs; the canonical JSON still names
//! // the query it answers.
//! assert_eq!(
//!     outcomes[0].to_json(),
//!     r#"{"query":"between sensor and *","relationships":[]}"#
//! );
//! # std::fs::remove_file(&path).unwrap();
//! ```

use crate::error::StoreError;
use crate::session::StoreSession;
use polygamy_core::pql::{parse_batch, parse_query, to_pql, PqlError};
use polygamy_core::query::RelationshipQuery;
use polygamy_core::relationship::Relationship;
use polygamy_obs::trace::{self, Trace};
use std::fmt;

/// Why a piece of PQL text could not be served.
#[derive(Debug)]
pub enum PqlServeError {
    /// The text failed to lex or parse. Render with the source at hand
    /// ([`PqlError::render`]) for the caret diagnostic every frontend
    /// shows.
    Parse(PqlError),
    /// The queries parsed but evaluation failed (unknown data set, store
    /// corruption surfacing lazily, …).
    Execute(StoreError),
}

impl fmt::Display for PqlServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqlServeError::Parse(e) => write!(f, "{e}"),
            PqlServeError::Execute(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PqlServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PqlServeError::Parse(e) => Some(e),
            PqlServeError::Execute(e) => Some(e),
        }
    }
}

/// One executed PQL query together with its results — the unit every
/// frontend renders, textually or as canonical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct PqlOutcome {
    /// The parsed query (print with [`to_pql`] for the canonical text).
    pub query: RelationshipQuery,
    /// The relationships the query matched, in the executor's
    /// deterministic order.
    pub relationships: Vec<Relationship>,
    /// The execution trace, when the frontend requested one (`--trace`,
    /// PQL `explain`). **Never** part of [`PqlOutcome::to_json`] or
    /// [`PqlOutcome::render_text`]: the normative result renderings are
    /// byte-identical with tracing on and off. Batch execution runs all
    /// queries through one dispatch, so every outcome of a traced batch
    /// carries the same whole-batch trace.
    pub trace: Option<Trace>,
}

impl PqlOutcome {
    /// Renders the canonical single-line JSON object for this outcome:
    ///
    /// ```text
    /// {"query":"<canonical PQL>","relationships":[…]}
    /// ```
    ///
    /// This is the *normative* per-query response rendering of the wire
    /// protocol (`docs/serving.md` §5): the daemon's `R` frames and the
    /// offline `polygamy-store query --json` output are both exactly this
    /// string, byte for byte.
    pub fn to_json(&self) -> String {
        let query =
            serde_json::to_string(&to_pql(&self.query)).expect("strings serialize infallibly");
        let relationships =
            serde_json::to_string(&self.relationships).expect("relationships serialize");
        format!("{{\"query\":{query},\"relationships\":{relationships}}}")
    }

    /// Renders the human-readable report the CLI and REPL print: a
    /// ``N relationship(s) for `<query>`:`` header plus one indented
    /// line per relationship.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = format!(
            "{} relationship(s) for `{}`:",
            self.relationships.len(),
            to_pql(&self.query)
        );
        for rel in &self.relationships {
            write!(out, "\n  {rel}").expect("writing to a String cannot fail");
        }
        out
    }
}

/// Parses `src` as a single PQL query (newlines and comments allowed) and
/// executes it — the REPL path.
pub fn execute_pql_query(session: &StoreSession, src: &str) -> Result<PqlOutcome, PqlServeError> {
    let query = parse_query(src).map_err(PqlServeError::Parse)?;
    let mut outcomes = run(session, vec![query])?;
    Ok(outcomes.pop().expect("one query in, one outcome out"))
}

/// [`execute_pql_query`] with a trace collector installed: the returned
/// outcome carries a [`Trace`] covering parse and execution. The
/// relationships — and their canonical renderings — are byte-identical to
/// the untraced call's.
pub fn execute_pql_query_traced(
    session: &StoreSession,
    src: &str,
) -> Result<PqlOutcome, PqlServeError> {
    let (result, trace) = trace::record(|| {
        let query = {
            let _span = trace::span("parse");
            parse_query(src).map_err(PqlServeError::Parse)?
        };
        let mut outcomes = run(session, vec![query])?;
        Ok(outcomes.pop().expect("one query in, one outcome out"))
    });
    result.map(|outcome: PqlOutcome| PqlOutcome {
        trace: Some(trace),
        ..outcome
    })
}

/// Parses `src` as a PQL batch (one query per line, `#` comments) and
/// executes every query through one [`StoreSession::query_many`] dispatch
/// — the `--file`, `--pql` and network-request path. An empty batch is a
/// valid request and yields no outcomes.
pub fn execute_pql_batch(
    session: &StoreSession,
    src: &str,
) -> Result<Vec<PqlOutcome>, PqlServeError> {
    let queries = parse_batch(src).map_err(PqlServeError::Parse)?;
    run(session, queries)
}

/// [`execute_pql_batch`] with a trace collector installed. The batch runs
/// through one dispatch, so one [`Trace`] covers it end to end; every
/// returned outcome carries a clone of that whole-batch trace.
pub fn execute_pql_batch_traced(
    session: &StoreSession,
    src: &str,
) -> Result<Vec<PqlOutcome>, PqlServeError> {
    let (result, trace) = trace::record(|| {
        let queries = {
            let _span = trace::span("parse");
            parse_batch(src).map_err(PqlServeError::Parse)?
        };
        run(session, queries)
    });
    result.map(|outcomes| {
        outcomes
            .into_iter()
            .map(|outcome| PqlOutcome {
                trace: Some(trace.clone()),
                ..outcome
            })
            .collect()
    })
}

/// The shared execution tail: one `query_many` over the whole batch.
fn run(
    session: &StoreSession,
    queries: Vec<RelationshipQuery>,
) -> Result<Vec<PqlOutcome>, PqlServeError> {
    let results = session
        .query_many(&queries)
        .map_err(PqlServeError::Execute)?;
    Ok(queries
        .into_iter()
        .zip(results)
        .map(|(query, relationships)| PqlOutcome {
            query,
            relationships,
            trace: None,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_core::function::FunctionRef;
    use polygamy_core::relationship::RelationshipMeasures;
    use polygamy_stdata::{Resolution, SpatialResolution, TemporalResolution};
    use polygamy_topology::FeatureClass;

    fn outcome() -> PqlOutcome {
        PqlOutcome {
            query: RelationshipQuery::between(&["taxi"], &["weather"]),
            relationships: vec![Relationship {
                left: FunctionRef {
                    dataset: "taxi".into(),
                    function: "density".into(),
                },
                right: FunctionRef {
                    dataset: "weather".into(),
                    function: "avg(wind)".into(),
                },
                resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
                class: FeatureClass::Salient,
                measures: RelationshipMeasures {
                    n_pos: 1,
                    n_neg: 3,
                    n_left: 5,
                    n_right: 5,
                    score: -0.5,
                    strength: 0.8,
                },
                p_value: 0.002,
                significant: true,
            }],
            trace: None,
        }
    }

    #[test]
    fn json_rendering_is_canonical_and_single_line() {
        let json = outcome().to_json();
        assert!(
            json.starts_with(r#"{"query":"between taxi and weather","#),
            "{json}"
        );
        assert!(!json.contains('\n'), "{json}");
        // The relationships array is the plain serde rendering, so the
        // framework's byte-identity guarantees carry over verbatim.
        assert!(
            json.ends_with(&format!(
                "\"relationships\":{}}}",
                serde_json::to_string(&outcome().relationships).unwrap()
            )),
            "{json}"
        );
    }

    #[test]
    fn text_rendering_matches_historical_cli_shape() {
        let text = outcome().render_text();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "1 relationship(s) for `between taxi and weather`:"
        );
        let body = lines.next().unwrap();
        assert!(
            body.starts_with("  taxi.density ~ weather.avg(wind)"),
            "{body}"
        );
    }

    #[test]
    fn trace_is_invisible_to_renderings() {
        let mut traced = outcome();
        traced.trace = Some(Trace::default());
        assert_eq!(traced.to_json(), outcome().to_json());
        assert_eq!(traced.render_text(), outcome().render_text());
        assert_ne!(traced, outcome(), "the trace itself still compares");
    }

    #[test]
    fn empty_results_render() {
        let empty = PqlOutcome {
            query: RelationshipQuery::of("taxi"),
            relationships: Vec::new(),
            trace: None,
        };
        assert_eq!(
            empty.to_json(),
            r#"{"query":"between taxi and *","relationships":[]}"#
        );
        assert_eq!(
            empty.render_text(),
            "0 relationship(s) for `between taxi and *`:"
        );
    }
}

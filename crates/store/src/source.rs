//! Segment byte access behind one long-lived handle.
//!
//! A [`SegmentSource`] is opened once per store and serves every
//! subsequent byte-range read — header, manifest, geometry and function
//! segments alike. Centralising reads here buys three things:
//!
//! * **one handle, no TOCTOU** — the store file used to be re-opened by
//!   path for every geometry/segment/maintenance read, leaving a window
//!   where a concurrent writer's atomic rename could swap the file between
//!   the manifest read and a segment read, pairing one revision's
//!   directory with another revision's bytes. A source opens the file
//!   exactly once; every read is a positioned read against that handle, so
//!   the inode is pinned and all reads observe the same immutable revision
//!   (writers never modify a store in place — they rename a fresh file
//!   over the path);
//! * **deferred, countable verification** — callers choose per read
//!   whether to FNV-verify ([`SegmentSource::read`]) or to defer
//!   ([`SegmentSource::fetch`] with `verify = false`), which is what lets
//!   a lazy index verify each segment exactly once on first touch;
//! * **byte accounting** — every payload byte served is counted
//!   ([`SegmentSource::bytes_fetched`]), making "lazy open reads strictly
//!   fewer bytes than eager load" an assertable property instead of a
//!   claim.
//!
//! Two backends implement the same contract:
//!
//! * [`SourceBackend::PositionedRead`] (default): `pread`-style positioned
//!   reads (`read_exact_at` on Unix) against the shared handle — no seek
//!   state, so `&self` reads are safe from any number of threads;
//! * [`SourceBackend::Mmap`] (Unix): the whole file is mapped read-only
//!   once via direct `extern "C"` `mmap`/`munmap` declarations (the build
//!   environment is offline — no `libc` crate), and segment payloads are
//!   served as **borrowed `&[u8]` views** into the mapping: zero copies,
//!   faulted in by the kernel on first touch. On non-Unix targets the
//!   mmap request falls back to positioned reads.

use crate::error::{Result, StoreError};
use crate::format::BlobLoc;
use polygamy_core::Fnv1a;
use polygamy_obs::{names, Counter};
use std::borrow::Cow;
use std::fmt;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide `store.bytes_fetched` registry counter, resolved once.
/// Every source in the process adds into it alongside its own per-source
/// [`SegmentSource::bytes_fetched`] counter.
fn global_bytes_fetched() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| polygamy_obs::global().counter(names::STORE_BYTES_FETCHED))
}

/// Which I/O mechanism a [`SegmentSource`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceBackend {
    /// Positioned reads against one shared file handle (the default).
    #[default]
    PositionedRead,
    /// A read-only memory map of the whole file; segment payloads are
    /// served as borrowed views, paged in by the kernel on first touch.
    /// Falls back to positioned reads on non-Unix targets and on files
    /// that cannot be mapped (e.g. zero length).
    Mmap,
}

/// One store file opened for reading: a pinned handle (or mapping) plus a
/// byte counter. See the module docs for the contract.
pub struct SegmentSource {
    inner: Inner,
    /// Total payload bytes served so far (header/manifest included).
    bytes_fetched: AtomicU64,
}

enum Inner {
    File {
        file: File,
        len: u64,
    },
    #[cfg(unix)]
    Mmap(Mapping),
}

impl fmt::Debug for SegmentSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (backend, len) = match &self.inner {
            Inner::File { len, .. } => ("positioned-read", *len),
            #[cfg(unix)]
            Inner::Mmap(m) => ("mmap", m.len as u64),
        };
        f.debug_struct("SegmentSource")
            .field("backend", &backend)
            .field("len", &len)
            .field("bytes_fetched", &self.bytes_fetched.load(Ordering::Relaxed))
            .finish()
    }
}

impl SegmentSource {
    /// Opens `path` with the requested backend. The handle (or mapping)
    /// created here serves every later read — the file is never re-opened.
    pub fn open(path: impl AsRef<Path>, backend: SourceBackend) -> Result<Self> {
        let file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        let inner = match backend {
            SourceBackend::PositionedRead => Inner::File { file, len },
            SourceBackend::Mmap => {
                #[cfg(unix)]
                {
                    match Mapping::map(&file, len) {
                        Some(m) => Inner::Mmap(m),
                        None => Inner::File { file, len },
                    }
                }
                #[cfg(not(unix))]
                {
                    Inner::File { file, len }
                }
            }
        };
        Ok(Self {
            inner,
            bytes_fetched: AtomicU64::new(0),
        })
    }

    /// The backend actually serving reads (a mmap request may have fallen
    /// back to positioned reads).
    pub fn backend(&self) -> SourceBackend {
        match &self.inner {
            Inner::File { .. } => SourceBackend::PositionedRead,
            #[cfg(unix)]
            Inner::Mmap(_) => SourceBackend::Mmap,
        }
    }

    /// Length of the underlying file in bytes, as observed at open.
    pub fn len(&self) -> u64 {
        match &self.inner {
            Inner::File { len, .. } => *len,
            #[cfg(unix)]
            Inner::Mmap(m) => m.len as u64,
        }
    }

    /// True when the underlying file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes served by this source so far, across all
    /// threads. Checksum-failed reads count too — the bytes were fetched.
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched.load(Ordering::Relaxed)
    }

    /// Reads and FNV-verifies one blob range — the default for any read
    /// whose bytes are consumed immediately.
    pub fn read(&self, loc: BlobLoc, what: &str) -> Result<Cow<'_, [u8]>> {
        self.fetch(loc, what, true)
    }

    /// Reads one blob range, optionally deferring checksum verification.
    ///
    /// `verify = false` is for callers that track verification themselves
    /// (the lazy index verifies each segment exactly once on first touch);
    /// they call [`SegmentSource::verify`] on the returned bytes when the
    /// segment is touched for the first time.
    pub fn fetch(&self, loc: BlobLoc, what: &str, verify: bool) -> Result<Cow<'_, [u8]>> {
        let end = loc.offset.checked_add(loc.len);
        if end.is_none_or(|e| e > self.len()) {
            return Err(StoreError::Truncated { what: what.into() });
        }
        let n = usize::try_from(loc.len)
            .map_err(|_| StoreError::Corrupt(format!("{what}: length exceeds usize")))?;
        let bytes: Cow<'_, [u8]> = match &self.inner {
            Inner::File { file, .. } => {
                let mut buf = vec![0u8; n];
                read_at(file, loc.offset, &mut buf)?;
                Cow::Owned(buf)
            }
            #[cfg(unix)]
            Inner::Mmap(m) => {
                let start = loc.offset as usize;
                Cow::Borrowed(&m.as_slice()[start..start + n])
            }
        };
        self.bytes_fetched.fetch_add(loc.len, Ordering::Relaxed);
        global_bytes_fetched().add(loc.len);
        if verify {
            Self::verify(&bytes, loc, what)?;
        }
        Ok(bytes)
    }

    /// Checks `bytes` against the checksum recorded in `loc`.
    pub fn verify(bytes: &[u8], loc: BlobLoc, what: &str) -> Result<()> {
        if Fnv1a::hash_bytes(bytes) != loc.checksum {
            return Err(StoreError::ChecksumMismatch { what: what.into() });
        }
        Ok(())
    }
}

/// Positioned read of exactly `buf.len()` bytes at `offset`.
#[cfg(unix)]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Non-Unix fallback: clone the handle (independent cursor) and seek.
#[cfg(not(unix))]
fn read_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// A read-only, private memory mapping of one whole file, unmapped on
/// drop. Created through raw `mmap(2)` — the offline build environment has
/// no `libc` crate, so the two calls are declared directly.
#[cfg(unix)]
struct Mapping {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    /// `PROT_READ` — pages may be read.
    pub const PROT_READ: i32 = 0x1;
    /// `MAP_PRIVATE` — copy-on-write private mapping (we never write).
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
impl Mapping {
    /// Maps `file` read-only; `None` when the file cannot be mapped (zero
    /// length, or the kernel refuses) — callers fall back to positioned
    /// reads.
    fn map(file: &File, len: u64) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(len).ok()?;
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the kernel validates fd and length. MAP_FAILED is (void*)-1.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        Some(Self { ptr, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping covers exactly `len` readable bytes and
        // lives until drop; the store file's revision is immutable (writers
        // rename fresh files over the path, never modify in place), so the
        // pages never change under us.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region returned by mmap.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

// SAFETY: the mapping is read-only and its address/extent never change;
// moving it to another thread moves nothing but the pointer.
#[cfg(unix)]
unsafe impl Send for Mapping {}
// SAFETY: same argument as Send — a shared `&Mapping` only ever exposes
// immutable pages, so concurrent reads from any thread are safe.
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_tmp(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "polygamy-source-test-{}-{tag}.bin",
            std::process::id()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    fn loc_of(bytes: &[u8], offset: u64, len: u64) -> BlobLoc {
        BlobLoc {
            offset,
            len,
            checksum: Fnv1a::hash_bytes(&bytes[offset as usize..(offset + len) as usize]),
        }
    }

    #[test]
    fn both_backends_serve_identical_verified_ranges() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4_096).collect();
        let path = write_tmp("backends", &payload);
        let loc = loc_of(&payload, 100, 500);
        for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
            let src = SegmentSource::open(&path, backend).unwrap();
            let bytes = src.read(loc, "test").unwrap();
            assert_eq!(&bytes[..], &payload[100..600], "{backend:?}");
            assert_eq!(src.bytes_fetched(), 500, "{backend:?}");
            assert_eq!(src.len(), 4_096);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_mismatch_is_typed_and_still_counted() {
        let payload = vec![7u8; 256];
        let path = write_tmp("checksum", &payload);
        let mut loc = loc_of(&payload, 0, 64);
        loc.checksum ^= 1;
        let src = SegmentSource::open(&path, SourceBackend::PositionedRead).unwrap();
        assert!(matches!(
            src.read(loc, "seg"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // The bytes were fetched even though verification failed.
        assert_eq!(src.bytes_fetched(), 64);
        // Deferred verification returns the bytes anyway.
        let bytes = src.fetch(loc, "seg", false).unwrap();
        assert_eq!(bytes.len(), 64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_reads_are_truncation_errors() {
        let payload = vec![1u8; 100];
        let path = write_tmp("range", &payload);
        for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
            let src = SegmentSource::open(&path, backend).unwrap();
            let past_eof = BlobLoc {
                offset: 90,
                len: 20,
                checksum: 0,
            };
            assert!(matches!(
                src.read(past_eof, "seg"),
                Err(StoreError::Truncated { .. })
            ));
            let overflow = BlobLoc {
                offset: u64::MAX - 1,
                len: 10,
                checksum: 0,
            };
            assert!(matches!(
                src.read(overflow, "seg"),
                Err(StoreError::Truncated { .. })
            ));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_mmap_falls_back_to_positioned_reads() {
        let path = write_tmp("empty", &[]);
        let src = SegmentSource::open(&path, SourceBackend::Mmap).unwrap();
        assert_eq!(src.backend(), SourceBackend::PositionedRead);
        assert!(src.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn source_pins_the_inode_across_path_replacement() {
        // The TOCTOU fix in one test: replace the file at the path (as an
        // atomic writer would) after opening; the source still serves the
        // original revision's bytes.
        let original = vec![0xAAu8; 512];
        let path = write_tmp("pinned", &original);
        let loc = loc_of(&original, 8, 128);
        for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
            // (Re)create the original revision, open, then swap the file.
            std::fs::write(&path, &original).unwrap();
            let src = SegmentSource::open(&path, backend).unwrap();
            let replacement = write_tmp("pinned-new", &vec![0x55u8; 512]);
            std::fs::rename(&replacement, &path).unwrap();
            let bytes = src.read(loc, "seg").unwrap();
            assert_eq!(&bytes[..], &original[8..136], "{backend:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_reads_share_one_source() {
        let payload: Vec<u8> = (0..200_000u32).flat_map(u32::to_le_bytes).collect();
        let path = write_tmp("concurrent", &payload);
        for backend in [SourceBackend::PositionedRead, SourceBackend::Mmap] {
            let src = SegmentSource::open(&path, backend).unwrap();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let src = &src;
                    let payload = &payload;
                    s.spawn(move || {
                        for i in 0..50u64 {
                            let offset = (t * 50 + i) * 1_000;
                            let loc = loc_of(payload, offset, 1_000);
                            let bytes = src.read(loc, "seg").unwrap();
                            assert_eq!(
                                &bytes[..],
                                &payload[offset as usize..offset as usize + 1_000]
                            );
                        }
                    });
                }
            });
            assert_eq!(src.bytes_fetched(), 4 * 50 * 1_000);
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! The `polygamy-store` command line: build, inspect and query store
//! files.
//!
//! ```text
//! polygamy-store build <path> [--quick] [--years N] [--scale S] [--no-fields]
//! polygamy-store inspect <path>
//! polygamy-store query <path> <left> <right> [--permutations N]
//!                [--min-score X] [--include-insignificant]
//! polygamy-store query <path> --batch <left:right>... [--permutations N]
//!                [--min-score X] [--include-insignificant]
//! ```
//!
//! `--no-fields` drops the raw scalar fields from the index (features and
//! thresholds only): stores shrink ~16×, and every clause except
//! user-defined thresholds still evaluates.
//!
//! `build` indexes the synthetic urban corpus from `polygamy_datagen` and
//! writes it as a store; `inspect` prints the header, catalog and segment
//! directory without decoding any segment; `query` opens a serving session
//! and evaluates one relationship query — or, with `--batch`, a whole list
//! of `left:right` pairs through `StoreSession::query_many`, which runs
//! every pair's candidate evaluations on one shared worker pool instead of
//! paying session and pool startup per query.

use polygamy_core::prelude::*;
use polygamy_core::DataPolygamy;
use polygamy_datagen::{urban_collection, UrbanConfig};
use polygamy_store::{Store, StoreSession};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!(
                "usage: polygamy-store <build|inspect|query> <path> [args]\n\
                 \x20 build <path> [--quick] [--years N] [--scale S] [--no-fields]\n\
                 \x20 inspect <path>\n\
                 \x20 query <path> <left> <right> [--permutations N] \
                 [--min-score X] [--include-insignificant]\n\
                 \x20 query <path> --batch <left:right>... [--permutations N] \
                 [--min-score X] [--include-insignificant]"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("polygamy-store: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("build: missing <path>")?;
    let quick = args.iter().any(|a| a == "--quick");
    let years: usize = match flag_value(args, "--years") {
        Some(v) => v.parse().map_err(|_| "build: --years expects an integer")?,
        None => {
            if quick {
                1
            } else {
                2
            }
        }
    };
    let scale: f64 = match flag_value(args, "--scale") {
        Some(v) => v.parse().map_err(|_| "build: --scale expects a number")?,
        None => {
            if quick {
                0.02
            } else {
                0.2
            }
        }
    };
    let collection = urban_collection(UrbanConfig {
        n_years: years,
        scale,
        extra_weather_attrs: if quick { 0 } else { 8 },
        ..UrbanConfig::default()
    });
    let mut config = if quick {
        Config::fast_test()
    } else {
        Config::default()
    };
    if args.iter().any(|a| a == "--no-fields") {
        config.keep_fields = false;
    }
    let mut dp = DataPolygamy::new(collection.geometry().clone(), config);
    for d in &collection.datasets {
        dp.add_dataset(d.clone());
    }
    let report = dp.build_index();
    println!(
        "indexed {} data sets in {:.2}s",
        report.per_dataset.len(),
        report.total_secs
    );
    let index = dp.index().map_err(|e| e.to_string())?;
    let store = Store::save(path, dp.geometry(), index).map_err(|e| e.to_string())?;
    println!(
        "wrote {path}: {} bytes, {} segments",
        store.file_bytes().map_err(|e| e.to_string())?,
        store.manifest().segments.len()
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("inspect: missing <path>")?;
    let store = Store::open(path).map_err(|e| e.to_string())?;
    let header = store.header();
    let manifest = store.manifest();
    println!(
        "store {path}: format v{}, {} bytes on disk",
        header.version,
        store.file_bytes().map_err(|e| e.to_string())?
    );
    println!(
        "manifest: offset {} len {} fnv {:#018x}",
        header.manifest_offset, header.manifest_len, header.manifest_checksum
    );
    println!("catalog ({} data sets):", manifest.datasets.len());
    for (di, d) in manifest.datasets.iter().enumerate() {
        println!(
            "  [{di}] {:<14} {:>9} records, {:>6} specs, {:>10} segment bytes",
            d.meta.name,
            d.n_records,
            d.n_specs,
            manifest.dataset_disk_bytes(di),
        );
    }
    println!("segments ({}):", manifest.segments.len());
    for s in &manifest.segments {
        println!(
            "  {:<14} {:<14} {:<22} offset {:>10} len {:>9} fnv {:#018x}",
            manifest.datasets[s.dataset_index].meta.name,
            s.function,
            s.resolution.label(),
            s.loc.offset,
            s.loc.len,
            s.loc.checksum,
        );
    }
    Ok(())
}

/// The query flags that consume a value — the single source of truth for
/// both clause parsing and positional-argument scanning, so adding a flag
/// here keeps its value from being misread as a data set name.
const QUERY_VALUE_FLAGS: [&str; 2] = ["--permutations", "--min-score"];

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query: missing <path>")?;
    let mut clause = Clause::default();
    if let Some(p) = flag_value(args, "--permutations") {
        clause = clause.permutations(
            p.parse()
                .map_err(|_| "query: --permutations expects an integer")?,
        );
    }
    if let Some(s) = flag_value(args, "--min-score") {
        clause = clause.min_score(
            s.parse()
                .map_err(|_| "query: --min-score expects a number")?,
        );
    }
    if args.iter().any(|a| a == "--include-insignificant") {
        clause = clause.include_insignificant();
    }
    let positionals = positional_args(&args[1..]);

    let pairs: Vec<(String, String)> = if args.iter().any(|a| a == "--batch") {
        if positionals.is_empty() {
            return Err("query: --batch expects one or more <left:right> pairs".into());
        }
        positionals
            .iter()
            .map(|spec| {
                spec.split_once(':')
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .filter(|(l, r)| !l.is_empty() && !r.is_empty())
                    .ok_or_else(|| format!("query: --batch pair '{spec}' is not <left:right>"))
            })
            .collect::<Result<_, _>>()?
    } else {
        let left = positionals
            .first()
            .ok_or("query: missing <left> data set")?;
        let right = positionals
            .get(1)
            .ok_or("query: missing <right> data set")?;
        vec![(left.to_string(), right.to_string())]
    };

    let session = StoreSession::open(path).map_err(|e| e.to_string())?;
    let queries: Vec<RelationshipQuery> = pairs
        .iter()
        .map(|(l, r)| {
            RelationshipQuery::between(&[l.as_str()], &[r.as_str()]).with_clause(clause.clone())
        })
        .collect();
    // One query_many call: the whole batch shares a single worker pool.
    let results = session.query_many(&queries).map_err(|e| e.to_string())?;
    for ((left, right), rels) in pairs.iter().zip(&results) {
        println!("{} relationship(s) between {left} and {right}:", rels.len());
        for rel in rels {
            println!("  {rel}");
        }
    }
    Ok(())
}

/// The non-flag arguments, with each [`QUERY_VALUE_FLAGS`] value skipped.
fn positional_args(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if QUERY_VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
        } else if !arg.starts_with("--") {
            out.push(arg);
        }
    }
    out
}

//! Reading and writing store files.
//!
//! [`Store::open`] reads only the 40-byte header and the manifest — cheap
//! regardless of corpus size. Function segments are materialized on demand
//! ([`Store::load`] / [`Store::load_filtered`]), each verified against its
//! FNV-1a checksum before decoding. Writes go through a temp file renamed
//! into place, so a crashed writer never leaves a half-written store at the
//! target path.
//!
//! All reads — manifest, geometry, segments, maintenance copies — go
//! through one [`SegmentSource`] opened at [`Store::open`] time. The single
//! long-lived handle pins the file revision, so a concurrent writer's
//! atomic rename can never pair this store's manifest with another
//! revision's bytes (see [`crate::source`] for the full contract), and the
//! source's byte counter makes read-path costs observable.
//!
//! Incremental maintenance ([`Store::upsert_dataset`] /
//! [`Store::remove_dataset`]) copies retained segment bytes verbatim —
//! checksums verified, payloads never decoded — and re-indexes only the
//! data set being changed, preserving the index-once/query-many economics
//! for corpus updates.

use crate::codec::{decode_function_segment, encode_function_segment};
use crate::error::{Result, StoreError};
use crate::format::{BlobLoc, Header, Manifest, SegmentInfo, HEADER_LEN, VERSION};
use crate::source::{SegmentSource, SourceBackend};
use polygamy_core::index::{DatasetEntry, FunctionEntry, PolygamyIndex};
use polygamy_core::{index_dataset, CityGeometry, Config, Fnv1a};
use polygamy_stdata::{Dataset, Resolution};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Which parts of a store to materialize.
///
/// The catalog always loads in full (it is part of the manifest); the
/// filter narrows which *function segments* are read off disk, so a session
/// serving two data sets out of fifty touches only their bytes.
#[derive(Debug, Clone, Default)]
pub struct LoadFilter {
    /// Restrict to these data sets (`None` = all).
    pub datasets: Option<Vec<String>>,
    /// Restrict to these resolutions (`None` = all).
    pub resolutions: Option<Vec<Resolution>>,
}

impl LoadFilter {
    /// Loads everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restricts loading to the named data sets.
    pub fn datasets(mut self, names: &[&str]) -> Self {
        self.datasets = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Restricts loading to one resolution (callable repeatedly).
    pub fn at_resolution(mut self, r: Resolution) -> Self {
        self.resolutions.get_or_insert_with(Vec::new).push(r);
        self
    }

    pub(crate) fn admits(&self, info: &SegmentInfo, catalog: &[DatasetEntry]) -> bool {
        let dataset_ok = self.datasets.as_ref().is_none_or(|names| {
            names
                .iter()
                .any(|n| catalog[info.dataset_index].meta.name == *n)
        });
        let resolution_ok = self
            .resolutions
            .as_ref()
            .is_none_or(|rs| rs.contains(&info.resolution));
        dataset_ok && resolution_ok
    }
}

/// A store file opened for reading: header + manifest in memory, segments
/// on disk behind one pinned [`SegmentSource`].
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    header: Header,
    manifest: Manifest,
    source: SegmentSource,
}

impl Store {
    // -- writing ----------------------------------------------------------

    /// Writes `index` (built over `geometry`) as a new store file at
    /// `path`, replacing any existing file atomically. Returns the opened
    /// store.
    pub fn save(
        path: impl AsRef<Path>,
        geometry: &CityGeometry,
        index: &PolygamyIndex,
    ) -> Result<Store> {
        let geometry_bytes = encode_geometry(geometry)?;
        // Group segments by data set in catalog order — the canonical
        // layout incremental maintenance also produces.
        let mut per_dataset: Vec<SegmentGroup> =
            (0..index.datasets.len()).map(|_| Vec::new()).collect();
        for entry in &index.functions {
            let meta = SegmentMeta {
                function: entry.spec.name.clone(),
                resolution: entry.resolution,
            };
            per_dataset[entry.dataset_index].push((meta, encode_function_segment(entry)));
        }
        write_store(
            path.as_ref(),
            &geometry_bytes,
            index.datasets.clone(),
            per_dataset,
        )
    }

    // -- opening and loading ----------------------------------------------

    /// Opens a store, reading and verifying only the header and manifest.
    pub fn open(path: impl AsRef<Path>) -> Result<Store> {
        Self::open_with_backend(path, SourceBackend::default())
    }

    /// Opens a store with an explicit I/O backend for all segment reads.
    ///
    /// The file is opened (or mapped) exactly once here; every later read
    /// — geometry, segments, maintenance copies — is served by the same
    /// [`SegmentSource`], so the revision observed at open time is the one
    /// all reads see even if a writer replaces the path concurrently.
    pub fn open_with_backend(path: impl AsRef<Path>, backend: SourceBackend) -> Result<Store> {
        let path = path.as_ref().to_path_buf();
        let source = SegmentSource::open(&path, backend)?;
        if source.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                what: "header".into(),
            });
        }
        // The header is self-describing (magic + version validated by
        // `Header::decode`) and carries the manifest checksum rather than
        // its own, so it is fetched unverified.
        let header_bytes = source.fetch(
            BlobLoc {
                offset: 0,
                len: HEADER_LEN,
                checksum: 0,
            },
            "header",
            false,
        )?;
        let header = Header::decode(&header_bytes)?;
        let manifest_bytes = source.read(
            BlobLoc {
                offset: header.manifest_offset,
                len: header.manifest_len,
                checksum: header.manifest_checksum,
            },
            "manifest",
        )?;
        let manifest = Manifest::decode(&manifest_bytes)?;
        Ok(Store {
            path,
            header,
            manifest,
            source,
        })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The decoded header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The manifest: catalog and segment directory.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The byte source serving all of this store's reads — exposes the
    /// active backend and the running bytes-fetched counter.
    pub fn source(&self) -> &SegmentSource {
        &self.source
    }

    /// Total file size in bytes (the real on-disk footprint of the
    /// revision this store has pinned).
    pub fn file_bytes(&self) -> Result<u64> {
        Ok(self.source.len())
    }

    /// Loads and verifies the city geometry.
    pub fn load_geometry(&self) -> Result<CityGeometry> {
        let bytes = self.source.read(self.manifest.geometry, "geometry")?;
        decode_geometry(&bytes)
    }

    /// Materializes the full index.
    pub fn load(&self) -> Result<PolygamyIndex> {
        self.load_filtered(&LoadFilter::all())
    }

    /// Materializes the catalog plus only the function segments admitted
    /// by `filter`.
    pub fn load_filtered(&self, filter: &LoadFilter) -> Result<PolygamyIndex> {
        // Unknown data set names in the filter are caller errors, not
        // silently-empty loads.
        if let Some(names) = &filter.datasets {
            for name in names {
                self.manifest.dataset_index(name)?;
            }
        }
        let mut functions: Vec<FunctionEntry> = Vec::new();
        for info in &self.manifest.segments {
            if !filter.admits(info, &self.manifest.datasets) {
                continue;
            }
            let what = format!(
                "segment {}.{}",
                self.manifest.datasets[info.dataset_index].meta.name, info.function
            );
            let bytes = self.source.read(info.loc, &what)?;
            functions.push(decode_function_segment(&bytes, info.dataset_index, &what)?);
        }
        Ok(PolygamyIndex {
            datasets: self.manifest.datasets.clone(),
            functions,
        })
    }

    // -- incremental maintenance ------------------------------------------

    /// Adds or replaces one data set in the store without re-indexing the
    /// rest of the corpus: only `dataset` runs through the indexing jobs;
    /// every other data set's segment bytes are copied verbatim (checksums
    /// verified). Returns the reopened store.
    pub fn upsert_dataset(
        path: impl AsRef<Path>,
        dataset: &Dataset,
        config: &Config,
    ) -> Result<Store> {
        let path = path.as_ref();
        let store = Store::open(path)?;
        let geometry = store.load_geometry()?;
        let name = dataset.meta.name.as_str();
        let target = store
            .manifest
            .dataset_index(name)
            .unwrap_or(store.manifest.datasets.len());

        let (catalog_entry, entries, _stats) = index_dataset(config, &geometry, target, dataset);
        let fresh: Vec<(SegmentMeta, Vec<u8>)> = entries
            .iter()
            .map(|entry| {
                (
                    SegmentMeta {
                        function: entry.spec.name.clone(),
                        resolution: entry.resolution,
                    },
                    encode_function_segment(entry),
                )
            })
            .collect();

        let mut catalog = store.manifest.datasets.clone();
        if target == catalog.len() {
            catalog.push(catalog_entry);
        } else {
            catalog[target] = catalog_entry;
        }
        let mut per_dataset = store.read_retained_segments(|di| di != target)?;
        per_dataset.resize_with(catalog.len(), Vec::new);
        per_dataset[target] = fresh;

        let geometry_bytes = store.read_geometry_bytes()?;
        write_store(path, &geometry_bytes, catalog, per_dataset)
    }

    /// Removes one data set's catalog entry and segments, copying everything
    /// else verbatim. Returns the reopened store.
    pub fn remove_dataset(path: impl AsRef<Path>, name: &str) -> Result<Store> {
        let path = path.as_ref();
        let store = Store::open(path)?;
        let target = store.manifest.dataset_index(name)?;
        let mut catalog = store.manifest.datasets.clone();
        catalog.remove(target);
        let mut per_dataset = store.read_retained_segments(|di| di != target)?;
        per_dataset.remove(target);
        let geometry_bytes = store.read_geometry_bytes()?;
        write_store(path, &geometry_bytes, catalog, per_dataset)
    }

    /// Reads the raw (still-encoded) segments of every data set admitted by
    /// `keep`, grouped by catalog position. Checksums are verified so
    /// maintenance never copies corruption forward. Shared with the shard
    /// migration paths ([`crate::shard`]), which move segment bytes between
    /// files verbatim.
    pub(crate) fn read_retained_segments(
        &self,
        keep: impl Fn(usize) -> bool,
    ) -> Result<Vec<SegmentGroup>> {
        let mut per_dataset: Vec<SegmentGroup> = (0..self.manifest.datasets.len())
            .map(|_| Vec::new())
            .collect();
        for info in &self.manifest.segments {
            if !keep(info.dataset_index) {
                continue;
            }
            let what = format!(
                "segment {}.{}",
                self.manifest.datasets[info.dataset_index].meta.name, info.function
            );
            let bytes = self.source.read(info.loc, &what)?;
            per_dataset[info.dataset_index].push((
                SegmentMeta {
                    function: info.function.clone(),
                    resolution: info.resolution,
                },
                bytes.into_owned(),
            ));
        }
        Ok(per_dataset)
    }

    /// Reads the raw geometry blob, checksum-verified.
    pub(crate) fn read_geometry_bytes(&self) -> Result<Vec<u8>> {
        Ok(self
            .source
            .read(self.manifest.geometry, "geometry")?
            .into_owned())
    }
}

/// Routing metadata for one segment being written.
#[derive(Debug, Clone)]
pub(crate) struct SegmentMeta {
    pub(crate) function: String,
    pub(crate) resolution: Resolution,
}

/// One data set's encoded segments, in directory order.
pub(crate) type SegmentGroup = Vec<(SegmentMeta, Vec<u8>)>;

/// Serialises the geometry blob (JSON payload inside the checksummed
/// segment framing — polygon soup gains nothing from a binary codec and
/// stays debuggable this way). Shared with [`crate::shard`], which embeds
/// the identical blob in every shard file.
pub(crate) fn encode_geometry(geometry: &CityGeometry) -> Result<Vec<u8>> {
    serde_json::to_string(geometry)
        .map(String::into_bytes)
        .map_err(|e| StoreError::Corrupt(format!("geometry encode failed: {e}")))
}

fn decode_geometry(bytes: &[u8]) -> Result<CityGeometry> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| StoreError::Corrupt("geometry blob is not utf-8".into()))?;
    serde_json::from_str(text)
        .map_err(|e| StoreError::Corrupt(format!("geometry decode failed: {e}")))
}

/// Composes and atomically writes a complete store file, then reopens it.
///
/// The layout is a pure function of its inputs: header, geometry bytes at
/// offset [`HEADER_LEN`], segments in per-data-set order, tail manifest —
/// no timestamps, no padding. Two calls with the same geometry bytes,
/// catalog and segment bytes therefore produce byte-identical files; the
/// shard/merge round-trip ([`crate::shard`]) leans on this to reproduce a
/// monolith bit-for-bit.
pub(crate) fn write_store(
    path: &Path,
    geometry_bytes: &[u8],
    catalog: Vec<DatasetEntry>,
    per_dataset: Vec<SegmentGroup>,
) -> Result<Store> {
    debug_assert_eq!(catalog.len(), per_dataset.len());
    let mut offset = HEADER_LEN;
    let geometry_loc = BlobLoc {
        offset,
        len: geometry_bytes.len() as u64,
        checksum: Fnv1a::hash_bytes(geometry_bytes),
    };
    offset += geometry_loc.len;

    let mut segments: Vec<SegmentInfo> = Vec::new();
    let mut payloads: Vec<&[u8]> = Vec::new();
    for (di, group) in per_dataset.iter().enumerate() {
        for (meta, bytes) in group {
            segments.push(SegmentInfo {
                dataset_index: di,
                function: meta.function.clone(),
                resolution: meta.resolution,
                loc: BlobLoc {
                    offset,
                    len: bytes.len() as u64,
                    checksum: Fnv1a::hash_bytes(bytes),
                },
            });
            payloads.push(bytes);
            offset += bytes.len() as u64;
        }
    }

    let manifest = Manifest {
        geometry: geometry_loc,
        datasets: catalog,
        segments,
    };
    let manifest_bytes = manifest.encode();
    let header = Header {
        version: VERSION,
        manifest_offset: offset,
        manifest_len: manifest_bytes.len() as u64,
        manifest_checksum: Fnv1a::hash_bytes(&manifest_bytes),
    };

    // Temp file in the same directory so the final rename stays on one
    // filesystem. The name appends to the full file name (never replaces an
    // extension) and carries pid + a process-wide counter, so concurrent
    // writers — even to paths sharing a stem — never collide.
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let written = (|| -> Result<()> {
        let mut out = File::create(&tmp)?;
        out.write_all(&header.encode())?;
        out.write_all(geometry_bytes)?;
        for payload in &payloads {
            out.write_all(payload)?;
        }
        out.write_all(&manifest_bytes)?;
        out.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if written.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    written?;
    Store::open(path)
}

//! The explicit little-endian codec for on-disk structures.
//!
//! Every multi-byte integer is little-endian; floats are IEEE-754 bit
//! patterns (NaN thresholds round-trip exactly); strings and sequences are
//! length-prefixed. Enums travel as the stable one-byte wire codes exposed
//! by `polygamy_stdata` — never as `#[derive]`d discriminants, which are an
//! implementation detail of the Rust compiler.
//!
//! Decoding is total: any byte sequence either decodes to a valid structure
//! or yields a typed [`StoreError`]. The decoder therefore checks every
//! length against the remaining payload, validates enum codes, and verifies
//! structural invariants (bit-vector word counts, field value counts) that
//! a crafted or corrupted payload could violate even with a matching
//! checksum.

use crate::error::{Result, StoreError};
use polygamy_core::index::FunctionEntry;
use polygamy_core::FunctionSpec;
use polygamy_stdata::{
    AggregateKind, FunctionKind, Resolution, ScalarField, SpatialResolution, TemporalResolution,
};
use polygamy_topology::threshold::Thresholds;
use polygamy_topology::{BitVec, FeatureSet, FeatureSets, SeasonalThresholds};

/// An append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Starts an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its bit pattern (NaN-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked little-endian decoder over one payload.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string for error messages ("segment taxi.density" etc.).
    what: &'a str,
}

impl<'a> Dec<'a> {
    /// Starts decoding `buf`; `what` names the payload in errors.
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn corrupt(&self, detail: &str) -> StoreError {
        StoreError::Corrupt(format!("{}: {detail}", self.what))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("payload overrun"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` narrowed to `usize`.
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| self.corrupt("length exceeds usize"))
    }

    /// Reads a length that must still fit in the remaining payload when
    /// each element occupies at least `elem_size` bytes — rejects absurd
    /// lengths before any allocation.
    pub fn seq_len(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(elem_size.max(1))
            .is_none_or(|b| b > remaining)
        {
            return Err(self.corrupt("sequence length exceeds payload"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.seq_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf-8 in string"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts full consumption — trailing garbage means corruption.
    pub fn finish(self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.corrupt("trailing bytes after structure"))
        }
    }
}

// ---------------------------------------------------------------------------
// Composite structures
// ---------------------------------------------------------------------------

/// Encodes a resolution as two stable wire codes.
pub fn enc_resolution(e: &mut Enc, r: Resolution) {
    e.u8(r.spatial.code());
    e.u8(r.temporal.code());
}

/// Decodes a resolution.
pub fn dec_resolution(d: &mut Dec<'_>) -> Result<Resolution> {
    let s = d.u8()?;
    let t = d.u8()?;
    let spatial = SpatialResolution::from_code(s)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown spatial resolution code {s}")))?;
    let temporal = TemporalResolution::from_code(t)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown temporal resolution code {t}")))?;
    Ok(Resolution::new(spatial, temporal))
}

fn enc_function_kind(e: &mut Enc, kind: FunctionKind) {
    match kind {
        FunctionKind::Density => e.u8(0),
        FunctionKind::Unique => e.u8(1),
        FunctionKind::Attribute { attr, agg } => {
            e.u8(2);
            e.usize(attr);
            e.u8(agg.code());
        }
    }
}

fn dec_function_kind(d: &mut Dec<'_>) -> Result<FunctionKind> {
    match d.u8()? {
        0 => Ok(FunctionKind::Density),
        1 => Ok(FunctionKind::Unique),
        2 => {
            let attr = d.usize()?;
            let code = d.u8()?;
            let agg = AggregateKind::from_code(code)
                .ok_or_else(|| StoreError::Corrupt(format!("unknown aggregate code {code}")))?;
            Ok(FunctionKind::Attribute { attr, agg })
        }
        t => Err(StoreError::Corrupt(format!(
            "unknown function kind tag {t}"
        ))),
    }
}

/// Encodes a function spec.
pub fn enc_spec(e: &mut Enc, spec: &FunctionSpec) {
    e.str(&spec.dataset);
    e.str(&spec.name);
    enc_function_kind(e, spec.kind);
}

/// Decodes a function spec.
pub fn dec_spec(d: &mut Dec<'_>) -> Result<FunctionSpec> {
    Ok(FunctionSpec {
        dataset: d.str()?,
        name: d.str()?,
        kind: dec_function_kind(d)?,
    })
}

fn enc_bitvec(e: &mut Enc, bv: &BitVec) {
    e.usize(bv.len());
    for &w in bv.words() {
        e.u64(w);
    }
}

fn dec_bitvec(d: &mut Dec<'_>) -> Result<BitVec> {
    let len = d.usize()?;
    let n_words = len.div_ceil(64);
    // Guard before allocating: each word is 8 payload bytes.
    if n_words.checked_mul(8).is_none_or(|b| b > d.remaining()) {
        return Err(StoreError::Corrupt(
            "bit vector length exceeds payload".into(),
        ));
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(d.u64()?);
    }
    BitVec::from_words(len, words)
        .ok_or_else(|| StoreError::Corrupt("bit vector representation invariant violated".into()))
}

fn enc_feature_sets(e: &mut Enc, fs: &FeatureSets) {
    for bv in [
        &fs.salient.pos,
        &fs.salient.neg,
        &fs.extreme.pos,
        &fs.extreme.neg,
    ] {
        enc_bitvec(e, bv);
    }
}

fn dec_feature_sets(d: &mut Dec<'_>) -> Result<FeatureSets> {
    Ok(FeatureSets {
        salient: FeatureSet {
            pos: dec_bitvec(d)?,
            neg: dec_bitvec(d)?,
        },
        extreme: FeatureSet {
            pos: dec_bitvec(d)?,
            neg: dec_bitvec(d)?,
        },
    })
}

fn enc_thresholds(e: &mut Enc, t: &Thresholds) {
    e.f64(t.salient_pos);
    e.f64(t.salient_neg);
    e.f64(t.extreme_pos);
    e.f64(t.extreme_neg);
}

fn dec_thresholds(d: &mut Dec<'_>) -> Result<Thresholds> {
    Ok(Thresholds {
        salient_pos: d.f64()?,
        salient_neg: d.f64()?,
        extreme_pos: d.f64()?,
        extreme_neg: d.f64()?,
    })
}

fn enc_seasonal(e: &mut Enc, s: &SeasonalThresholds) {
    e.usize(s.interval_of_step.len());
    for &id in &s.interval_of_step {
        e.i64(id);
    }
    e.usize(s.interval_ids.len());
    for &id in &s.interval_ids {
        e.i64(id);
    }
    e.usize(s.per_interval.len());
    for t in &s.per_interval {
        enc_thresholds(e, t);
    }
}

fn dec_seasonal(d: &mut Dec<'_>) -> Result<SeasonalThresholds> {
    let n = d.seq_len(8)?;
    let mut interval_of_step = Vec::with_capacity(n);
    for _ in 0..n {
        interval_of_step.push(d.i64()?);
    }
    let n = d.seq_len(8)?;
    let mut interval_ids = Vec::with_capacity(n);
    for _ in 0..n {
        interval_ids.push(d.i64()?);
    }
    let n = d.seq_len(32)?;
    let mut per_interval = Vec::with_capacity(n);
    for _ in 0..n {
        per_interval.push(dec_thresholds(d)?);
    }
    if interval_ids.len() != per_interval.len() {
        return Err(StoreError::Corrupt(
            "seasonal thresholds: interval ids and thresholds disagree".into(),
        ));
    }
    Ok(SeasonalThresholds {
        interval_of_step,
        interval_ids,
        per_interval,
    })
}

fn enc_field(e: &mut Enc, field: &ScalarField) {
    enc_resolution(e, field.resolution);
    e.usize(field.n_regions);
    e.i64(field.start_bucket);
    e.usize(field.n_steps);
    e.usize(field.values.len());
    for &v in &field.values {
        e.f64(v);
    }
}

fn dec_field(d: &mut Dec<'_>) -> Result<ScalarField> {
    let resolution = dec_resolution(d)?;
    let n_regions = d.usize()?;
    let start_bucket = d.i64()?;
    let n_steps = d.usize()?;
    let n = d.seq_len(8)?;
    if n_regions.checked_mul(n_steps) != Some(n) {
        return Err(StoreError::Corrupt(
            "scalar field value count does not match its shape".into(),
        ));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(d.f64()?);
    }
    Ok(ScalarField {
        resolution,
        n_regions,
        start_bucket,
        n_steps,
        values,
    })
}

/// Encodes one function segment payload.
///
/// `dataset_index` is deliberately *not* part of the payload: it lives in
/// the manifest's segment directory, so incremental upsert/remove can
/// renumber data sets by rewriting only the manifest while copying segment
/// bytes verbatim.
pub fn encode_function_segment(entry: &FunctionEntry) -> Vec<u8> {
    let mut e = Enc::new();
    enc_spec(&mut e, &entry.spec);
    enc_resolution(&mut e, entry.resolution);
    e.usize(entry.n_regions);
    e.i64(entry.start_bucket);
    e.usize(entry.n_steps);
    enc_feature_sets(&mut e, &entry.features);
    enc_seasonal(&mut e, &entry.thresholds);
    match &entry.field {
        None => e.u8(0),
        Some(f) => {
            e.u8(1);
            enc_field(&mut e, f);
        }
    }
    e.usize(entry.tree_nodes);
    e.into_bytes()
}

/// Decodes one function segment payload; `dataset_index` comes from the
/// manifest's segment directory.
pub fn decode_function_segment(
    bytes: &[u8],
    dataset_index: usize,
    what: &str,
) -> Result<FunctionEntry> {
    let mut d = Dec::new(bytes, what);
    let spec = dec_spec(&mut d)?;
    let resolution = dec_resolution(&mut d)?;
    let n_regions = d.usize()?;
    let start_bucket = d.i64()?;
    let n_steps = d.usize()?;
    let features = dec_feature_sets(&mut d)?;
    let thresholds = dec_seasonal(&mut d)?;
    let field = match d.u8()? {
        0 => None,
        1 => Some(dec_field(&mut d)?),
        t => {
            return Err(StoreError::Corrupt(format!(
                "{what}: unknown field presence tag {t}"
            )))
        }
    };
    let tree_nodes = d.usize()?;
    d.finish()?;
    let n_vertices = n_regions
        .checked_mul(n_steps)
        .ok_or_else(|| StoreError::Corrupt(format!("{what}: vertex count overflow")))?;
    for (side, bv) in [
        ("salient.pos", &features.salient.pos),
        ("salient.neg", &features.salient.neg),
        ("extreme.pos", &features.extreme.pos),
        ("extreme.neg", &features.extreme.neg),
    ] {
        if bv.len() != n_vertices {
            return Err(StoreError::Corrupt(format!(
                "{what}: {side} covers {} vertices, expected {n_vertices}",
                bv.len()
            )));
        }
    }
    if thresholds.interval_of_step.len() != n_steps {
        return Err(StoreError::Corrupt(format!(
            "{what}: seasonal interval map covers {} steps, expected {n_steps}",
            thresholds.interval_of_step.len()
        )));
    }
    // The embedded field must share the entry's shape: a crafted payload
    // with an internally consistent but smaller field would otherwise pass
    // decoding and panic later in release-mode bit-vector slicing.
    if let Some(f) = &field {
        if f.resolution != resolution
            || f.n_regions != n_regions
            || f.start_bucket != start_bucket
            || f.n_steps != n_steps
        {
            return Err(StoreError::Corrupt(format!(
                "{what}: embedded scalar field shape disagrees with its entry"
            )));
        }
    }
    Ok(FunctionEntry {
        spec,
        dataset_index,
        resolution,
        n_regions,
        start_bucket,
        n_steps,
        features,
        thresholds,
        field,
        tree_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_entry(with_field: bool, n_regions: usize, n_steps: usize) -> FunctionEntry {
        let n = n_regions * n_steps;
        let mut salient = FeatureSet::empty(n);
        let mut extreme = FeatureSet::empty(n);
        for i in (0..n).step_by(3) {
            salient.pos.set(i);
        }
        for i in (1..n).step_by(7) {
            salient.neg.set(i);
        }
        if n > 2 {
            extreme.pos.set(n - 1);
            extreme.neg.set(2);
        }
        let field = with_field.then(|| ScalarField {
            resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            n_regions,
            start_bucket: -5,
            n_steps,
            values: (0..n)
                .map(|i| {
                    if i % 11 == 0 {
                        f64::NAN
                    } else {
                        i as f64 * 0.5
                    }
                })
                .collect(),
        });
        FunctionEntry {
            spec: FunctionSpec::attribute("taxi", 2, "fare", AggregateKind::Mean),
            dataset_index: 4,
            resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            n_regions,
            start_bucket: -5,
            n_steps,
            features: FeatureSets { salient, extreme },
            thresholds: SeasonalThresholds {
                interval_of_step: (0..n_steps).map(|z| (z / 24) as i64).collect(),
                interval_ids: vec![0, 1],
                per_interval: vec![
                    Thresholds {
                        salient_pos: 3.0,
                        salient_neg: -1.0,
                        extreme_pos: f64::NAN,
                        extreme_neg: f64::NAN,
                    },
                    Thresholds::none(),
                ],
            },
            field,
            tree_nodes: 17,
        }
    }

    /// Byte-level round trip: decode(encode(x)) re-encodes to the identical
    /// bytes. (Struct equality is vacuous under NaN thresholds; byte
    /// equality is exact and covers NaN via bit patterns.)
    #[test]
    fn segment_roundtrip_bytes() {
        for (with_field, nr, ns) in [(true, 3, 50), (false, 1, 200), (true, 1, 1)] {
            let entry = sample_entry(with_field, nr, ns);
            let bytes = encode_function_segment(&entry);
            let back = decode_function_segment(&bytes, entry.dataset_index, "test").unwrap();
            assert_eq!(encode_function_segment(&back), bytes);
            assert_eq!(back.dataset_index, entry.dataset_index);
            assert_eq!(back.spec, entry.spec);
            assert_eq!(back.features, entry.features);
        }
    }

    #[test]
    fn truncated_segment_is_corrupt_not_panic() {
        let bytes = encode_function_segment(&sample_entry(true, 2, 30));
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_function_segment(&bytes[..cut], 0, "test").unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn mismatched_field_shape_rejected() {
        // A crafted payload whose embedded field is internally consistent
        // but smaller than the entry must decode to Corrupt, not pass and
        // panic later during slicing.
        let mut entry = sample_entry(true, 2, 30);
        let field = entry.field.as_mut().unwrap();
        field.n_steps = 10;
        field.values.truncate(2 * 10);
        let bytes = encode_function_segment(&entry);
        assert!(matches!(
            decode_function_segment(&bytes, 0, "test"),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_function_segment(&sample_entry(false, 1, 10));
        bytes.push(0);
        assert!(matches!(
            decode_function_segment(&bytes, 0, "test"),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_enum_codes_rejected() {
        let mut e = Enc::new();
        e.u8(250);
        e.u8(0);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(
            dec_resolution(&mut d),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_sequence_length_rejected_before_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX / 2); // claimed length far beyond the payload
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(d.seq_len(8), Err(StoreError::Corrupt(_))));
    }

    proptest! {
        /// Primitive round trips across the codec's whole value space.
        #[test]
        fn primitives_roundtrip(
            a in 0u64..u64::MAX,
            b in i64::MIN..i64::MAX,
            c in 0u32..u32::MAX,
            d_ in 0u8..u8::MAX,
            f_bits in 0u64..u64::MAX,
        ) {
            let f = f64::from_bits(f_bits);
            let mut e = Enc::new();
            e.u64(a);
            e.i64(b);
            e.u32(c);
            e.u8(d_);
            e.f64(f);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes, "prop");
            prop_assert_eq!(d.u64().unwrap(), a);
            prop_assert_eq!(d.i64().unwrap(), b);
            prop_assert_eq!(d.u32().unwrap(), c);
            prop_assert_eq!(d.u8().unwrap(), d_);
            prop_assert_eq!(d.f64().unwrap().to_bits(), f.to_bits());
            d.finish().unwrap();
        }

        /// Whole-segment round trip over randomized shapes and payloads:
        /// encode → decode → encode is the identity on bytes.
        #[test]
        fn segment_roundtrip_randomized(
            n_regions in 1usize..4,
            n_steps in 1usize..64,
            with_field in prop_oneof![Just(true), Just(false)],
            seed in 0u64..u64::MAX,
        ) {
            let mut entry = sample_entry(with_field, n_regions, n_steps);
            // Scatter seed-driven bits through the feature sets.
            let n = n_regions * n_steps;
            let mut x = seed | 1;
            for _ in 0..16 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                entry.features.salient.pos.set((x as usize) % n);
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                entry.features.extreme.neg.set((x as usize) % n);
            }
            if let Some(field) = &mut entry.field {
                field.values[0] = f64::from_bits(seed);
            }
            let bytes = encode_function_segment(&entry);
            let back = decode_function_segment(&bytes, entry.dataset_index, "prop").unwrap();
            prop_assert_eq!(encode_function_segment(&back), bytes);
        }
    }
}

//! Sharded stores: one self-contained `.plst` per shard plus a small
//! versioned shard-catalog file tying them together.
//!
//! A monolithic store keeps every data set in one file; a *sharded* store
//! partitions the catalog across independent shard files — each a complete
//! store of its own, with its own header, geometry blob, checksums and
//! tail manifest — so wide corpora scale out: a query touching two data
//! sets faults in (at most) two shard files, maintenance rewrites exactly
//! one shard instead of the whole store tail, and a damaged shard file
//! degrades only the queries whose footprint touches it.
//!
//! ```text
//! corpus.plst             the shard catalog (magic "PLGYSHRD")
//! corpus.shard0.plst      shard 0 — a complete store (magic "PLGYSTOR")
//! corpus.shard1.plst      shard 1
//! …
//! ```
//!
//! The catalog file records the **global** data set catalog (in monolith
//! order), each data set's owning shard, and the shard file names
//! (relative to the catalog's directory). Each shard file's local catalog
//! lists its owned data sets in ascending global order, so the mapping
//! local ↔ global is positional and survives maintenance. The geometry
//! blob is duplicated verbatim into every shard, keeping each shard a
//! valid store on its own.
//!
//! **Byte-for-byte migration.** [`shard_store`] and [`merge_shards`] move
//! geometry and segment bytes verbatim (checksums verified, payloads never
//! decoded), and [`crate::store`]'s writer lays files out as a pure
//! function of its inputs — so monolith → N shards → monolith reproduces
//! the original file bit-for-bit, manifest included. The round-trip test
//! pins this.
//!
//! **Degraded serving.** Opening a sharded store records per-shard
//! availability instead of failing outright: shards that open (and whose
//! local catalogs match the shard catalog) serve normally; a missing,
//! truncated or corrupt shard yields a typed
//! [`StoreError::ShardUnavailable`] — repeatably — only for queries whose
//! footprint touches it. Per-shard counters
//! (`store.shard.faults.<shard>`, `store.shard.bytes_fetched.<shard>`)
//! report each shard file's serving load through the process registry.

use crate::codec::{decode_function_segment, encode_function_segment, Dec, Enc};
use crate::error::{Result, StoreError};
use crate::format::{dec_dataset_entry, enc_dataset_entry};
use crate::lazy::{LazyIndex, ShardObs};
use crate::source::SourceBackend;
use crate::store::{encode_geometry, write_store, LoadFilter, SegmentGroup, SegmentMeta, Store};
use polygamy_core::index::{DatasetEntry, FunctionEntry, PolygamyIndex};
use polygamy_core::query::RelationshipQuery;
use polygamy_core::{index_dataset, query_datasets, CityGeometry, Config, Fnv1a, ShardMap};
use polygamy_obs::names;
use polygamy_stdata::Dataset;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic identifying a shard catalog (a sharded store's entry point).
pub const SHARD_MAGIC: [u8; 8] = *b"PLGYSHRD";

/// Shard-catalog format version. Bumped independently of the store format
/// version: the catalog only routes, shard files carry the data.
pub const SHARD_CATALOG_VERSION: u32 = 1;

/// Fixed catalog header length: magic, version, flags, payload len, FNV.
const SHARD_HEADER_LEN: usize = 32;

/// The per-shard registry counters, resolved on demand (names extend the
/// `store.shard.*.` families in [`polygamy_obs::names`]).
fn shard_obs(shard: usize) -> ShardObs {
    let r = polygamy_obs::global();
    ShardObs {
        faults: r.counter(&format!("{}{shard}", names::STORE_SHARD_FAULTS_PREFIX)),
        bytes_fetched: r.counter(&format!(
            "{}{shard}",
            names::STORE_SHARD_BYTES_FETCHED_PREFIX
        )),
    }
}

/// The shard catalog: the global data set catalog plus the data set →
/// shard-file assignment. This is everything a reader needs to route a
/// query — available even when shard files are not.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCatalog {
    /// Global data set catalog, in monolith (indexing) order.
    pub datasets: Vec<DatasetEntry>,
    /// Owning shard per catalog position (`shard_of[di] < files.len()`).
    pub shard_of: Vec<usize>,
    /// Shard file names, relative to the catalog file's directory.
    pub files: Vec<String>,
}

impl ShardCatalog {
    /// Number of shards in the layout.
    pub fn n_shards(&self) -> usize {
        self.files.len()
    }

    /// Catalog position of a data set by name.
    pub fn dataset_index(&self, name: &str) -> Result<usize> {
        self.datasets
            .iter()
            .position(|d| d.meta.name == name)
            .ok_or_else(|| StoreError::UnknownDataset(name.to_string()))
    }

    /// Global catalog indices owned by one shard, ascending — the shard
    /// file's local catalog order.
    pub fn datasets_of_shard(&self, shard: usize) -> Vec<usize> {
        (0..self.datasets.len())
            .filter(|&di| self.shard_of[di] == shard)
            .collect()
    }

    /// Local (in-shard) catalog position of global data set `di`: its rank
    /// among its shard's owned indices.
    pub fn local_index(&self, di: usize) -> usize {
        let s = self.shard_of[di];
        (0..di).filter(|&j| self.shard_of[j] == s).count()
    }

    /// The executor routing table this layout induces.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.shard_of.clone(), self.n_shards().max(1))
            .expect("catalog validation bounds every assignment")
    }

    /// Encodes the complete catalog file (header + checksummed payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Enc::new();
        p.usize(self.datasets.len());
        for d in &self.datasets {
            enc_dataset_entry(&mut p, d);
        }
        for &s in &self.shard_of {
            p.usize(s);
        }
        p.usize(self.files.len());
        for f in &self.files {
            p.str(f);
        }
        let payload = p.into_bytes();

        let mut bytes = SHARD_MAGIC.to_vec();
        let mut h = Enc::new();
        h.u32(SHARD_CATALOG_VERSION);
        h.u32(0); // flags, reserved
        h.u64(payload.len() as u64);
        h.u64(Fnv1a::hash_bytes(&payload));
        bytes.extend_from_slice(&h.into_bytes());
        debug_assert_eq!(bytes.len(), SHARD_HEADER_LEN);
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Decodes and validates a catalog file.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < SHARD_HEADER_LEN {
            return Err(StoreError::Truncated {
                what: "shard catalog header".into(),
            });
        }
        if bytes[..8] != SHARD_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut h = Dec::new(&bytes[8..SHARD_HEADER_LEN], "shard catalog header");
        let version = h.u32()?;
        if version != SHARD_CATALOG_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: SHARD_CATALOG_VERSION,
            });
        }
        let _flags = h.u32()?;
        let len = h.u64()? as usize;
        let checksum = h.u64()?;
        let payload = bytes
            .get(SHARD_HEADER_LEN..SHARD_HEADER_LEN + len)
            .ok_or_else(|| StoreError::Truncated {
                what: "shard catalog payload".into(),
            })?;
        if Fnv1a::hash_bytes(payload) != checksum {
            return Err(StoreError::ChecksumMismatch {
                what: "shard catalog".into(),
            });
        }

        let mut d = Dec::new(payload, "shard catalog");
        let n = d.seq_len(1)?;
        let mut datasets = Vec::with_capacity(n);
        for _ in 0..n {
            datasets.push(dec_dataset_entry(&mut d)?);
        }
        let mut shard_of = Vec::with_capacity(n);
        for _ in 0..n {
            shard_of.push(d.usize()?);
        }
        let n_files = d.seq_len(1)?;
        let mut files = Vec::with_capacity(n_files);
        for _ in 0..n_files {
            files.push(d.str()?);
        }
        d.finish()?;
        if files.is_empty() {
            return Err(StoreError::Corrupt("shard catalog lists no shards".into()));
        }
        if let Some(&bad) = shard_of.iter().find(|&&s| s >= files.len()) {
            return Err(StoreError::Corrupt(format!(
                "shard assignment {bad} beyond the {}-shard layout",
                files.len()
            )));
        }
        Ok(Self {
            datasets,
            shard_of,
            files,
        })
    }

    /// Reads and validates a catalog file from disk.
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    /// Atomically writes the catalog file (temp file + rename, like the
    /// store writer).
    pub fn write(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        // Same temp-name discipline as the store writer: pid + process-wide
        // counter, so concurrent catalog writers never collide.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
        let tmp = path.with_file_name(tmp_name);
        let written = (|| -> Result<()> {
            let mut out = File::create(&tmp)?;
            out.write_all(&self.encode())?;
            out.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        written
    }

    /// Absolute path of one shard file (names are stored relative to the
    /// catalog file's directory).
    pub fn shard_path(&self, catalog_path: &Path, shard: usize) -> PathBuf {
        catalog_path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(&self.files[shard])
    }
}

/// True when the file at `path` starts with the shard-catalog magic — the
/// sniff `StoreSession` and the CLI use to pick the sharded open path.
pub fn is_sharded(path: impl AsRef<Path>) -> Result<bool> {
    let mut head = [0u8; 8];
    let mut f = File::open(path)?;
    let n = f.read(&mut head)?;
    Ok(n == 8 && head == SHARD_MAGIC)
}

/// The default shard file names for a catalog at `path`:
/// `<stem>.shard<i>.plst`, in the catalog's directory.
pub fn default_shard_files(path: &Path, n_shards: usize) -> Vec<String> {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "store".to_string());
    (0..n_shards)
        .map(|i| format!("{stem}.shard{i}.plst"))
        .collect()
}

/// Round-robin shard assignment for `n_datasets` over `n_shards` — the
/// layout [`save_sharded`] and [`shard_store`] produce.
fn round_robin(n_datasets: usize, n_shards: usize) -> Vec<usize> {
    (0..n_datasets).map(|di| di % n_shards).collect()
}

/// Writes `index` as a sharded store at `path`: one self-contained shard
/// file per round-robin partition plus the shard catalog at `path`
/// itself. `n_shards` must be ≥ 1; shard files that own no data set are
/// still written (geometry + empty catalog), keeping the layout uniform.
pub fn save_sharded(
    path: impl AsRef<Path>,
    geometry: &CityGeometry,
    index: &PolygamyIndex,
    n_shards: usize,
) -> Result<ShardCatalog> {
    if n_shards == 0 {
        return Err(StoreError::Corrupt(
            "a sharded store needs at least one shard".into(),
        ));
    }
    let geometry_bytes = encode_geometry(geometry)?;
    let mut per_dataset: Vec<SegmentGroup> =
        (0..index.datasets.len()).map(|_| Vec::new()).collect();
    for entry in &index.functions {
        let meta = SegmentMeta {
            function: entry.spec.name.clone(),
            resolution: entry.resolution,
        };
        per_dataset[entry.dataset_index].push((meta, encode_function_segment(entry)));
    }
    write_sharded(
        path.as_ref(),
        &geometry_bytes,
        index.datasets.clone(),
        per_dataset,
        round_robin(index.datasets.len(), n_shards),
        n_shards,
    )
}

/// Migrates a monolithic store into an `n_shards`-way sharded store at
/// `out` (catalog file; shard files land beside it). Geometry and segment
/// bytes are copied verbatim, checksums verified — never decoded — so a
/// later [`merge_shards`] reproduces the monolith byte-for-byte.
pub fn shard_store(
    monolith: impl AsRef<Path>,
    out: impl AsRef<Path>,
    n_shards: usize,
) -> Result<ShardCatalog> {
    if n_shards == 0 {
        return Err(StoreError::Corrupt(
            "a sharded store needs at least one shard".into(),
        ));
    }
    let store = Store::open(monolith)?;
    let geometry_bytes = store.read_geometry_bytes()?;
    let per_dataset = store.read_retained_segments(|_| true)?;
    let catalog = store.manifest().datasets.clone();
    let n = catalog.len();
    write_sharded(
        out.as_ref(),
        &geometry_bytes,
        catalog,
        per_dataset,
        round_robin(n, n_shards),
        n_shards,
    )
}

/// Composes one shard file per partition plus the catalog file. The
/// catalog is written last, after every shard landed, so a crashed
/// migration never leaves a catalog pointing at missing shards.
fn write_sharded(
    path: &Path,
    geometry_bytes: &[u8],
    catalog: Vec<DatasetEntry>,
    mut per_dataset: Vec<SegmentGroup>,
    shard_of: Vec<usize>,
    n_shards: usize,
) -> Result<ShardCatalog> {
    let files = default_shard_files(path, n_shards);
    let shard_catalog = ShardCatalog {
        datasets: catalog,
        shard_of,
        files,
    };
    // Drain the groups into per-shard (catalog, groups) in ascending
    // global order — the shard files' local order.
    let mut groups: Vec<Option<SegmentGroup>> = per_dataset.drain(..).map(Some).collect();
    for s in 0..n_shards {
        let owned = shard_catalog.datasets_of_shard(s);
        let local_catalog: Vec<DatasetEntry> = owned
            .iter()
            .map(|&di| shard_catalog.datasets[di].clone())
            .collect();
        let local_groups: Vec<SegmentGroup> = owned
            .iter()
            .map(|&di| groups[di].take().expect("each data set owned once"))
            .collect();
        write_store(
            &shard_catalog.shard_path(path, s),
            geometry_bytes,
            local_catalog,
            local_groups,
        )?;
    }
    shard_catalog.write(path)?;
    Ok(shard_catalog)
}

/// Merges a sharded store back into one monolithic file at `out`. Every
/// shard must be available; geometry and segment bytes are copied
/// verbatim, so merging the output of [`shard_store`] reproduces the
/// original monolith byte-for-byte (the migration round-trip test pins
/// this — and `shard`/`merge` are exact inverses for any shard count).
pub fn merge_shards(catalog_path: impl AsRef<Path>, out: impl AsRef<Path>) -> Result<Store> {
    let catalog_path = catalog_path.as_ref();
    let catalog = ShardCatalog::read(catalog_path)?;
    let mut geometry_bytes: Option<Vec<u8>> = None;
    let mut per_dataset: Vec<SegmentGroup> =
        (0..catalog.datasets.len()).map(|_| Vec::new()).collect();
    for s in 0..catalog.n_shards() {
        let store = open_shard(&catalog, catalog_path, s, SourceBackend::default())?;
        if geometry_bytes.is_none() {
            geometry_bytes = Some(store.read_geometry_bytes()?);
        }
        let owned = catalog.datasets_of_shard(s);
        for (li, group) in store
            .read_retained_segments(|_| true)?
            .drain(..)
            .enumerate()
        {
            per_dataset[owned[li]] = group;
        }
    }
    let geometry_bytes = geometry_bytes.ok_or_else(|| {
        StoreError::Corrupt("sharded store has no shards to merge geometry from".into())
    })?;
    write_store(out.as_ref(), &geometry_bytes, catalog.datasets, per_dataset)
}

/// Checks one opened shard file against the shard catalog: its local
/// catalog must list exactly the owned data sets, in ascending global
/// order. A mismatch means the files drifted (e.g. a stale shard beside a
/// rewritten catalog) and the shard must not serve.
fn verify_shard_catalog(catalog: &ShardCatalog, shard: usize, store: &Store) -> Result<()> {
    let owned = catalog.datasets_of_shard(shard);
    let local = &store.manifest().datasets;
    let matches = local.len() == owned.len()
        && owned
            .iter()
            .zip(local)
            .all(|(&di, l)| catalog.datasets[di].meta.name == l.meta.name);
    if matches {
        Ok(())
    } else {
        Err(StoreError::Corrupt(format!(
            "shard catalog drift: shard file lists [{}], catalog expects [{}]",
            local
                .iter()
                .map(|d| d.meta.name.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            owned
                .iter()
                .map(|&di| catalog.datasets[di].meta.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )))
    }
}

/// Opens and catalog-verifies one shard file, wrapping any failure —
/// missing file, truncation, corruption, catalog drift — into the typed
/// [`StoreError::ShardUnavailable`] the degradation contract promises.
fn open_shard(
    catalog: &ShardCatalog,
    catalog_path: &Path,
    shard: usize,
    backend: SourceBackend,
) -> Result<Store> {
    Store::open_with_backend(catalog.shard_path(catalog_path, shard), backend)
        .and_then(|store| {
            verify_shard_catalog(catalog, shard, &store)?;
            Ok(store)
        })
        .map_err(|e| StoreError::ShardUnavailable {
            shard,
            file: catalog.files[shard].clone(),
            reason: e.to_string(),
        })
}

/// One shard's serving state after a degraded open.
#[derive(Debug)]
enum ShardSlot {
    /// The shard opened and its catalog matches; it serves queries.
    /// Boxed: a `LazyIndex` is much larger than the failure record, and
    /// the slot vector holds one entry per shard either way.
    Available(Box<LazyIndex>),
    /// The shard failed to open (or its catalog drifted); queries touching
    /// it fail with [`StoreError::ShardUnavailable`], repeatably.
    Unavailable {
        /// Rendered open error, replayed into every rejection.
        reason: String,
    },
}

/// A sharded store opened for demand-paged serving: the shard catalog plus
/// one [`LazyIndex`] per *available* shard. Shards that failed to open are
/// recorded, not fatal — see the module docs for the degradation contract.
#[derive(Debug)]
pub struct ShardedLazy {
    catalog: ShardCatalog,
    slots: Vec<ShardSlot>,
    /// The session's load filter (applied per shard at pin time).
    filter: LoadFilter,
    /// Global catalog index → shard-local *segment directory* positions,
    /// ascending — precomputed so pinning assembles entries in global
    /// (monolith-directory) order without rescanning manifests.
    segs_of: Vec<Vec<usize>>,
}

impl ShardedLazy {
    /// Opens a sharded store for lazy serving. Shard files that fail to
    /// open — missing, truncated, corrupt, or with a drifted catalog — are
    /// recorded as unavailable; everything else serves. Fails outright
    /// only when the catalog itself is unreadable, a filter names an
    /// unknown data set, or *no* shard is available (there is nothing to
    /// serve, not even geometry).
    pub fn open(
        path: impl AsRef<Path>,
        filter: &LoadFilter,
        backend: SourceBackend,
    ) -> Result<Self> {
        let path = path.as_ref();
        let catalog = ShardCatalog::read(path)?;
        if let Some(names) = &filter.datasets {
            for name in names {
                catalog.dataset_index(name)?;
            }
        }
        let mut slots = Vec::with_capacity(catalog.n_shards());
        let mut segs_of: Vec<Vec<usize>> = vec![Vec::new(); catalog.datasets.len()];
        for s in 0..catalog.n_shards() {
            let owned = catalog.datasets_of_shard(s);
            let opened =
                Store::open_with_backend(catalog.shard_path(path, s), backend).and_then(|store| {
                    verify_shard_catalog(&catalog, s, &store)?;
                    // Narrow the global filter to this shard's own names;
                    // an empty intersection admits nothing (but the shard
                    // still opens — availability is about file health).
                    let local_filter = LoadFilter {
                        datasets: filter.datasets.as_ref().map(|names| {
                            names
                                .iter()
                                .filter(|n| {
                                    owned
                                        .iter()
                                        .any(|&di| catalog.datasets[di].meta.name == **n)
                                })
                                .cloned()
                                .collect()
                        }),
                        resolutions: filter.resolutions.clone(),
                    };
                    LazyIndex::new_sharded(store, &local_filter, owned.clone(), shard_obs(s))
                });
            match opened {
                Ok(lazy) => {
                    for (i, info) in lazy.store().manifest().segments.iter().enumerate() {
                        segs_of[owned[info.dataset_index]].push(i);
                    }
                    slots.push(ShardSlot::Available(Box::new(lazy)));
                }
                Err(e) => slots.push(ShardSlot::Unavailable {
                    reason: e.to_string(),
                }),
            }
        }
        if !slots.iter().any(|s| matches!(s, ShardSlot::Available(_))) {
            let reason = match &slots[0] {
                ShardSlot::Unavailable { reason } => reason.clone(),
                ShardSlot::Available(_) => unreachable!("no shard is available"),
            };
            return Err(StoreError::ShardUnavailable {
                shard: 0,
                file: catalog.files[0].clone(),
                reason,
            });
        }
        Ok(Self {
            catalog,
            slots,
            filter: filter.clone(),
            segs_of,
        })
    }

    /// The shard catalog (global data sets, assignment, file names).
    pub fn shard_catalog(&self) -> &ShardCatalog {
        &self.catalog
    }

    /// The global data set catalog.
    pub fn catalog(&self) -> &[DatasetEntry] {
        &self.catalog.datasets
    }

    /// The executor routing table for this layout.
    pub fn shard_map(&self) -> ShardMap {
        self.catalog.shard_map()
    }

    /// Per-shard availability: `None` when the shard serves, or the
    /// recorded open-failure reason.
    pub fn unavailable_reason(&self, shard: usize) -> Option<&str> {
        match &self.slots[shard] {
            ShardSlot::Available(_) => None,
            ShardSlot::Unavailable { reason } => Some(reason),
        }
    }

    /// Number of shards in the layout (available or not).
    pub fn n_shards(&self) -> usize {
        self.slots.len()
    }

    /// Total bytes fetched across every available shard's byte source.
    pub fn bytes_fetched(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| match s {
                ShardSlot::Available(lazy) => lazy.store().source().bytes_fetched(),
                ShardSlot::Unavailable { .. } => 0,
            })
            .sum()
    }

    /// Loads the city geometry from the first available shard (every shard
    /// carries the identical blob).
    pub fn load_geometry(&self) -> Result<CityGeometry> {
        for slot in &self.slots {
            if let ShardSlot::Available(lazy) = slot {
                return lazy.store().load_geometry();
            }
        }
        unreachable!("open guarantees at least one available shard")
    }

    /// The typed rejection for one unavailable shard.
    fn unavailable(&self, shard: usize) -> StoreError {
        let reason = match &self.slots[shard] {
            ShardSlot::Unavailable { reason } => reason.clone(),
            ShardSlot::Available(_) => unreachable!("shard is available"),
        };
        StoreError::ShardUnavailable {
            shard,
            file: self.catalog.files[shard].clone(),
            reason,
        }
    }

    /// Faults in every admitted segment any of `queries` can touch, in
    /// **global directory order** — data sets in global catalog order,
    /// segments in shard-directory order within each data set — which is
    /// exactly the monolithic store's directory order. The entries back an
    /// [`polygamy_core::IndexView`], so sharded output is byte-identical
    /// to the monolith's for any shard count.
    ///
    /// A query whose footprint touches an unavailable shard is rejected
    /// with [`StoreError::ShardUnavailable`] before any evaluation; clean
    /// shards keep serving every query that avoids the broken one.
    pub fn pin_for(&self, queries: &[RelationshipQuery]) -> Result<Vec<Arc<FunctionEntry>>> {
        let n = self.catalog.datasets.len();
        // Which queries touch each global data set (clauses differ, so the
        // resolution check below is per touching query).
        let mut touched_by: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (qi, query) in queries.iter().enumerate() {
            for di in query_datasets(&self.catalog.datasets, query)? {
                touched_by[di].push(qi);
            }
        }
        let mut pinned = Vec::new();
        for (di, touching) in touched_by.iter().enumerate() {
            if touching.is_empty() {
                continue;
            }
            let s = self.catalog.shard_of[di];
            let lazy = match &self.slots[s] {
                ShardSlot::Available(lazy) => lazy,
                ShardSlot::Unavailable { .. } => return Err(self.unavailable(s)),
            };
            let manifest = lazy.store().manifest();
            for &seg in &self.segs_of[di] {
                let info = &manifest.segments[seg];
                if !self.filter.admits(info, &manifest.datasets) {
                    continue;
                }
                let wanted = touching
                    .iter()
                    .any(|&qi| queries[qi].clause.admits_resolution(info.resolution));
                if wanted {
                    pinned.push(lazy.entry(seg)?);
                }
            }
        }
        Ok(pinned)
    }

    /// Reads and checksum-verifies every admitted segment of every shard
    /// (the sharded `inspect --verify`). Unavailable shards fail the
    /// verification with their recorded reason. Returns segments checked.
    pub fn verify_all(&self) -> Result<usize> {
        let mut checked = 0;
        for (s, slot) in self.slots.iter().enumerate() {
            match slot {
                ShardSlot::Available(lazy) => checked += lazy.verify_all()?,
                ShardSlot::Unavailable { .. } => return Err(self.unavailable(s)),
            }
        }
        Ok(checked)
    }
}

/// A sharded store opened for **eager** loading: every shard the filter
/// touches must be available, and every admitted segment is read, verified
/// and decoded up front — the sharded twin of
/// [`Store::load_filtered`](crate::store::Store::load_filtered).
pub fn load_sharded_eager(
    path: impl AsRef<Path>,
    filter: &LoadFilter,
) -> Result<(ShardCatalog, CityGeometry, PolygamyIndex, u64)> {
    let path = path.as_ref();
    let catalog = ShardCatalog::read(path)?;
    if let Some(names) = &filter.datasets {
        for name in names {
            catalog.dataset_index(name)?;
        }
    }
    // Open each shard the filter admits at least one data set of. Eager
    // semantics: any failure in the admitted set fails the whole open —
    // shards the filter never touches may be missing or corrupt.
    let mut stores: Vec<Option<Store>> = Vec::with_capacity(catalog.n_shards());
    for s in 0..catalog.n_shards() {
        let needed = catalog.datasets_of_shard(s).iter().any(|&di| {
            filter
                .datasets
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| catalog.datasets[di].meta.name == *n))
        });
        stores.push(if needed {
            Some(open_shard(&catalog, path, s, SourceBackend::default())?)
        } else {
            None
        });
    }
    // Geometry must come from somewhere even when the filter admits no
    // segments at all: fall back to the first shard that opens.
    if stores.iter().all(|o| o.is_none()) {
        let mut first_err = None;
        for (s, slot) in stores.iter_mut().enumerate() {
            match open_shard(&catalog, path, s, SourceBackend::default()) {
                Ok(store) => {
                    *slot = Some(store);
                    break;
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if stores.iter().all(|o| o.is_none()) {
            return Err(first_err
                .unwrap_or_else(|| StoreError::Corrupt("sharded store has no shards".into())));
        }
    }

    let geometry = stores
        .iter()
        .flatten()
        .next()
        .expect("at least one shard opened above")
        .load_geometry()?;

    // Decode admitted segments with *global* data set indices, assembling
    // in global directory order (data sets ascending, shard-directory
    // order within each) — the monolith's canonical order.
    let mut functions: Vec<FunctionEntry> = Vec::new();
    for di in 0..catalog.datasets.len() {
        let name = &catalog.datasets[di].meta.name;
        let admitted = filter
            .datasets
            .as_ref()
            .is_none_or(|names| names.iter().any(|n| n == name));
        if !admitted {
            continue;
        }
        let s = catalog.shard_of[di];
        let store = stores[s].as_ref().expect("admitted shards were opened");
        let li = catalog.local_index(di);
        for info in &store.manifest().segments {
            if info.dataset_index != li {
                continue;
            }
            if !filter
                .resolutions
                .as_ref()
                .is_none_or(|rs| rs.contains(&info.resolution))
            {
                continue;
            }
            let what = format!("segment {name}.{}", info.function);
            let bytes = store.source().read(info.loc, &what)?;
            functions.push(decode_function_segment(&bytes, di, &what)?);
        }
    }

    // Account the one-shot load on the per-shard byte counters.
    let mut total = 0;
    for (s, store) in stores.iter().enumerate() {
        if let Some(store) = store {
            let fetched = store.source().bytes_fetched();
            shard_obs(s).bytes_fetched.add(fetched);
            total += fetched;
        }
    }
    let index = PolygamyIndex {
        datasets: catalog.datasets.clone(),
        functions,
    };
    Ok((catalog, geometry, index, total))
}

/// Adds or replaces one data set in a sharded store, rewriting **exactly
/// one shard file** (plus the small catalog file) — the sharded twin of
/// [`Store::upsert_dataset`](crate::store::Store::upsert_dataset). A new
/// data set goes to the least-loaded shard (ties to the lowest index).
pub fn upsert_dataset_sharded(
    catalog_path: impl AsRef<Path>,
    dataset: &Dataset,
    config: &Config,
) -> Result<ShardCatalog> {
    let catalog_path = catalog_path.as_ref();
    let mut catalog = ShardCatalog::read(catalog_path)?;
    let name = dataset.meta.name.as_str();
    let (target, shard) = match catalog.dataset_index(name) {
        Ok(di) => (di, catalog.shard_of[di]),
        Err(_) => {
            let shard = (0..catalog.n_shards())
                .min_by_key(|&s| catalog.datasets_of_shard(s).len())
                .expect("catalog has at least one shard");
            (catalog.datasets.len(), shard)
        }
    };
    let shard_file = catalog.shard_path(catalog_path, shard);
    let store = open_shard(&catalog, catalog_path, shard, SourceBackend::default())?;
    let geometry = store.load_geometry()?;
    let is_new = target == catalog.datasets.len();
    let local_target = if is_new {
        store.manifest().datasets.len()
    } else {
        catalog.local_index(target)
    };

    let (catalog_entry, entries, _stats) = index_dataset(config, &geometry, local_target, dataset);
    let fresh: SegmentGroup = entries
        .iter()
        .map(|entry| {
            (
                SegmentMeta {
                    function: entry.spec.name.clone(),
                    resolution: entry.resolution,
                },
                encode_function_segment(entry),
            )
        })
        .collect();

    let mut local_catalog = store.manifest().datasets.clone();
    let mut per_dataset = store.read_retained_segments(|li| li != local_target)?;
    if is_new {
        local_catalog.push(catalog_entry.clone());
        per_dataset.push(fresh);
    } else {
        local_catalog[local_target] = catalog_entry.clone();
        per_dataset[local_target] = fresh;
    }
    let geometry_bytes = store.read_geometry_bytes()?;
    drop(store);
    write_store(&shard_file, &geometry_bytes, local_catalog, per_dataset)?;

    if is_new {
        catalog.datasets.push(catalog_entry);
        catalog.shard_of.push(shard);
    } else {
        catalog.datasets[target] = catalog_entry;
    }
    catalog.write(catalog_path)?;
    Ok(catalog)
}

/// Removes one data set from a sharded store, rewriting exactly its owning
/// shard file (plus the catalog file). Later data sets keep their shards:
/// the assignment is explicit in the catalog, so removal never cascades.
pub fn remove_dataset_sharded(catalog_path: impl AsRef<Path>, name: &str) -> Result<ShardCatalog> {
    let catalog_path = catalog_path.as_ref();
    let mut catalog = ShardCatalog::read(catalog_path)?;
    let target = catalog.dataset_index(name)?;
    let shard = catalog.shard_of[target];
    let local_target = catalog.local_index(target);
    let shard_file = catalog.shard_path(catalog_path, shard);
    let store = open_shard(&catalog, catalog_path, shard, SourceBackend::default())?;
    let mut local_catalog = store.manifest().datasets.clone();
    local_catalog.remove(local_target);
    let mut per_dataset = store.read_retained_segments(|li| li != local_target)?;
    per_dataset.remove(local_target);
    let geometry_bytes = store.read_geometry_bytes()?;
    drop(store);
    write_store(&shard_file, &geometry_bytes, local_catalog, per_dataset)?;

    catalog.datasets.remove(target);
    catalog.shard_of.remove(target);
    catalog.write(catalog_path)?;
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{DatasetMeta, SpatialResolution, TemporalResolution};

    fn entry(name: &str) -> DatasetEntry {
        DatasetEntry {
            meta: DatasetMeta {
                name: name.into(),
                spatial_resolution: SpatialResolution::City,
                temporal_resolution: TemporalResolution::Hour,
                description: String::new(),
            },
            n_records: 10,
            raw_bytes: 100,
            n_specs: 1,
        }
    }

    fn sample_catalog() -> ShardCatalog {
        ShardCatalog {
            datasets: vec![entry("alpha"), entry("beta"), entry("gamma")],
            shard_of: vec![0, 1, 0],
            files: vec!["c.shard0.plst".into(), "c.shard1.plst".into()],
        }
    }

    #[test]
    fn catalog_roundtrip() {
        let c = sample_catalog();
        assert_eq!(ShardCatalog::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn catalog_rejects_bad_magic_version_truncation_checksum() {
        let good = sample_catalog().encode();
        assert!(matches!(
            ShardCatalog::decode(&good[..10]),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            ShardCatalog::decode(&bad_magic),
            Err(StoreError::BadMagic)
        ));
        let mut bad_version = good.clone();
        bad_version[8] = 0xEE;
        assert!(matches!(
            ShardCatalog::decode(&bad_version),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            ShardCatalog::decode(&flipped),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            ShardCatalog::decode(&good[..good.len() - 4]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn catalog_rejects_out_of_range_assignment_and_empty_layout() {
        let mut c = sample_catalog();
        c.shard_of[1] = 9;
        assert!(matches!(
            ShardCatalog::decode(&c.encode()),
            Err(StoreError::Corrupt(_))
        ));
        let mut empty = sample_catalog();
        empty.files.clear();
        empty.shard_of = vec![0, 0, 0];
        assert!(matches!(
            ShardCatalog::decode(&empty.encode()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn catalog_helpers() {
        let c = sample_catalog();
        assert_eq!(c.n_shards(), 2);
        assert_eq!(c.datasets_of_shard(0), vec![0, 2]);
        assert_eq!(c.datasets_of_shard(1), vec![1]);
        assert_eq!(c.local_index(0), 0);
        assert_eq!(c.local_index(1), 0);
        assert_eq!(c.local_index(2), 1);
        assert_eq!(c.dataset_index("gamma").unwrap(), 2);
        assert!(c.dataset_index("nope").is_err());
        let map = c.shard_map();
        assert_eq!(map.n_shards(), 2);
        assert_eq!(map.route(1, 2), 1); // min(1,2)=1 lives on shard 1
    }

    #[test]
    fn default_file_names_derive_from_stem() {
        let files = default_shard_files(Path::new("/tmp/corpus.plst"), 3);
        assert_eq!(
            files,
            vec![
                "corpus.shard0.plst",
                "corpus.shard1.plst",
                "corpus.shard2.plst"
            ]
        );
    }
}

//! Concurrent serving sessions over a loaded store.
//!
//! A [`StoreSession`] answers [`RelationshipQuery`]s from the materialized
//! index exactly like the in-memory framework — same operator, same
//! significance machinery, same deterministic ordering — behind a sharded,
//! bounded LRU cache. `query` takes `&self`, so one session can be shared
//! across any number of reader threads; shards keep cache contention low
//! and the LRU bound keeps memory flat under sustained traffic.
//!
//! Sessions come in two read modes with byte-identical query results:
//!
//! * **eager** ([`StoreSession::open`]): every admitted segment is read,
//!   verified and decoded at open time — corruption anywhere in the
//!   admitted set fails the open, and queries never touch the disk;
//! * **lazy** ([`StoreSession::open_lazy`]): open reads only header,
//!   manifest and geometry; each query faults in just the segments its
//!   footprint touches ([`crate::lazy`]), verifying each exactly once on
//!   first access. Corruption surfaces at query time, only for queries
//!   touching the corrupt segment.
//!
//! A session built with a data-set [`LoadFilter`] serves only the loaded
//! data sets: a query naming an unloaded one is a typed
//! [`StoreError::DatasetNotLoaded`] — never a silently empty result — and
//! whole-corpus queries range over the loaded subset.
//!
//! ## Sharded stores
//!
//! Every open path sniffs the file magic: a shard catalog
//! ([`crate::shard`], magic `PLGYSHRD`) opens as a *sharded* session, a
//! plain store (`PLGYSTOR`) as a monolithic one — callers never say which.
//! A sharded session routes each expanded unit task to its owning shard's
//! worker set (scatter) and reassembles results in canonical task order
//! (gather), so query output is **byte-identical for any shard count and
//! any worker layout** — a one-shard store answers exactly like the
//! monolith it was migrated from. Lazy sharded sessions degrade per shard:
//! a missing or corrupt shard file fails only the queries whose footprint
//! touches it, with a typed [`StoreError::ShardUnavailable`].

use crate::error::{Result, StoreError};
use crate::lazy::LazyIndex;
use crate::shard::{is_sharded, load_sharded_eager, ShardedLazy};
use crate::source::SourceBackend;
use crate::store::{LoadFilter, Store};
use polygamy_core::cache::{QueryCache, DEFAULT_QUERY_CACHE_CAPACITY};
use polygamy_core::index::{DatasetEntry, IndexView, PolygamyIndex};
use polygamy_core::query::RelationshipQuery;
use polygamy_core::relationship::Relationship;
use polygamy_core::{
    run_query, run_query_many, run_query_many_view, run_query_many_view_routed, run_query_view,
    run_query_view_routed, CityGeometry, Config, ShardMap,
};
use std::path::Path;

/// How a session materializes function segments.
#[derive(Debug)]
enum Backing {
    /// Every admitted segment decoded at open. The `u64` is the source's
    /// byte counter captured right after the one-shot load — the total
    /// I/O an eager session will ever do. Sharded stores also load eagerly
    /// into this variant (the shard layout survives in the session's
    /// routing map).
    Eager(PolygamyIndex, u64),
    /// Segments faulted in per query footprint.
    Lazy(LazyIndex),
    /// Segments faulted in per query footprint from per-shard files, with
    /// per-shard availability (degraded serving).
    ShardedLazy(ShardedLazy),
}

/// A read-only serving session: geometry + (eager or lazy) index + query
/// cache.
///
/// Index once, save, then serve queries from the file — no raw data and
/// no rebuild at query time:
///
/// ```
/// use polygamy_core::prelude::*;
/// use polygamy_core::DataPolygamy;
/// use polygamy_store::{Store, StoreSession};
///
/// // Build a (tiny) index and persist it.
/// let meta = DatasetMeta {
///     name: "sensor".into(),
///     spatial_resolution: SpatialResolution::City,
///     temporal_resolution: TemporalResolution::Hour,
///     description: String::new(),
/// };
/// let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
/// for h in 0..96i64 {
///     let v = if h == 30 { 9.0 } else { (h % 24) as f64 * 0.1 };
///     b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
/// }
/// let mut dp = DataPolygamy::new(
///     CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
///     Config::fast_test(),
/// );
/// dp.add_dataset(b.build().unwrap());
/// dp.build_index();
/// let path = std::env::temp_dir().join(format!("plst-doc-{}.plst", std::process::id()));
/// Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
///
/// // Any later process serves queries straight from the file. `query`
/// // takes `&self`, so one session is shared across reader threads.
/// let session = StoreSession::open(&path).unwrap();
/// let query = parse_query("between sensor and * where permutations = 20").unwrap();
/// assert!(session.query(&query).unwrap().is_empty()); // one data set: no pairs
/// assert_eq!(session.loaded_datasets(), ["sensor".to_string()]);
///
/// // The lazy session answers the same queries with the same bytes,
/// // reading segments only when a query touches them.
/// let lazy = StoreSession::open_lazy(&path).unwrap();
/// assert!(lazy.query(&query).unwrap().is_empty());
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct StoreSession {
    geometry: CityGeometry,
    config: Config,
    backing: Backing,
    /// Names of the data sets whose segments were admitted by the load
    /// filter — the set this session can serve.
    loaded: Vec<String>,
    /// Data set → shard routing for the scatter-gather executor. Monolithic
    /// (single shard) for plain stores, so routing is a no-op there.
    shards: ShardMap,
    cache: QueryCache,
}

impl StoreSession {
    /// Opens an eager session over the whole store with the default
    /// configuration.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, Config::default(), &LoadFilter::all())
    }

    /// Opens an eager session with an explicit configuration and load
    /// filter — only the function segments the filter admits are read off
    /// disk. Sharded stores (shard-catalog magic) are detected here: every
    /// shard the filter touches must be available, and the session routes
    /// tasks per shard while answering byte-identically to the monolith.
    pub fn open_with(path: impl AsRef<Path>, config: Config, filter: &LoadFilter) -> Result<Self> {
        let path = path.as_ref();
        if is_sharded(path)? {
            let (catalog, geometry, index, bytes_loaded) = load_sharded_eager(path, filter)?;
            let loaded = loaded_names(&index.datasets, filter);
            return Ok(Self {
                geometry,
                config,
                backing: Backing::Eager(index, bytes_loaded),
                loaded,
                shards: catalog.shard_map(),
                cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
            });
        }
        Self::from_store(&Store::open(path)?, config, filter)
    }

    /// Opens a lazy session over the whole store with the default
    /// configuration: O(header + manifest + geometry) now, segments
    /// faulted in per query.
    pub fn open_lazy(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_lazy_with(
            path,
            Config::default(),
            &LoadFilter::all(),
            SourceBackend::default(),
        )
    }

    /// Opens a lazy session with an explicit configuration, load filter
    /// and I/O backend ([`SourceBackend::Mmap`] serves segment bytes as
    /// borrowed views into a read-only mapping). Sharded stores are
    /// detected here and open *degraded*: unavailable shard files are
    /// recorded, and only queries touching them fail.
    pub fn open_lazy_with(
        path: impl AsRef<Path>,
        config: Config,
        filter: &LoadFilter,
        backend: SourceBackend,
    ) -> Result<Self> {
        let path = path.as_ref();
        if is_sharded(path)? {
            let lazy = ShardedLazy::open(path, filter, backend)?;
            let geometry = lazy.load_geometry()?;
            let loaded = loaded_names(lazy.catalog(), filter);
            let shards = lazy.shard_map();
            return Ok(Self {
                geometry,
                config,
                backing: Backing::ShardedLazy(lazy),
                loaded,
                shards,
                cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
            });
        }
        let store = Store::open_with_backend(path, backend)?;
        let lazy = LazyIndex::new(store, filter)?;
        let geometry = lazy.store().load_geometry()?;
        let loaded = loaded_names(&lazy.store().manifest().datasets, filter);
        let shards = ShardMap::monolithic(lazy.store().manifest().datasets.len());
        Ok(Self {
            geometry,
            config,
            backing: Backing::Lazy(lazy),
            loaded,
            shards,
            cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
        })
    }

    /// Builds an eager session from an already-open store.
    pub fn from_store(store: &Store, config: Config, filter: &LoadFilter) -> Result<Self> {
        let index = store.load_filtered(filter)?;
        let loaded = loaded_names(&index.datasets, filter);
        let geometry = store.load_geometry()?;
        // Captured after the one-shot load: an eager session never reads
        // again, so this is its total (and final) I/O.
        let bytes_loaded = store.source().bytes_fetched();
        let shards = ShardMap::monolithic(index.datasets.len());
        Ok(Self {
            geometry,
            config,
            backing: Backing::Eager(index, bytes_loaded),
            loaded,
            shards,
            cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
        })
    }

    /// Evaluates a relationship query against the loaded index.
    ///
    /// Results are identical to [`polygamy_core::DataPolygamy::query`] over
    /// the same corpus, configuration and clause — in both eager and lazy
    /// mode. On a session built with a data-set filter, explicit names
    /// outside the loaded set yield [`StoreError::DatasetNotLoaded`], and
    /// `None` collections range over the loaded data sets only. Takes
    /// `&self`: sessions are shared freely across reader threads.
    pub fn query(&self, query: &RelationshipQuery) -> Result<Vec<Relationship>> {
        let query = self.scope_to_loaded(query)?;
        match &self.backing {
            Backing::Eager(index, _) => {
                if self.shards.is_monolithic() {
                    run_query(index, &self.geometry, &self.config, &self.cache, &query)
                        .map_err(Into::into)
                } else {
                    let view = IndexView::new(&index.datasets, index.functions.iter().collect());
                    run_query_view_routed(
                        &view,
                        &self.geometry,
                        &self.config,
                        &self.cache,
                        &query,
                        &self.shards,
                    )
                    .map_err(Into::into)
                }
            }
            Backing::Lazy(lazy) => {
                let pinned = lazy.pin_for(std::slice::from_ref(&query))?;
                let view = IndexView::new(lazy.catalog(), pinned.iter().map(|a| &**a).collect());
                run_query_view(&view, &self.geometry, &self.config, &self.cache, &query)
                    .map_err(Into::into)
            }
            Backing::ShardedLazy(lazy) => {
                let pinned = lazy.pin_for(std::slice::from_ref(&query))?;
                let view = IndexView::new(lazy.catalog(), pinned.iter().map(|a| &**a).collect());
                run_query_view_routed(
                    &view,
                    &self.geometry,
                    &self.config,
                    &self.cache,
                    &query,
                    &self.shards,
                )
                .map_err(Into::into)
            }
        }
    }

    /// Evaluates a batch of queries on one shared worker pool (the flat
    /// executor), amortising pool startup across the batch — the serving
    /// path behind `polygamy-store query --batch`.
    ///
    /// Returns one result vector per query, in input order; each equals
    /// what [`StoreSession::query`] returns for that query alone, subject
    /// to the same load-filter scoping rules. In lazy mode the whole
    /// batch's footprint is pinned up front, so segments shared by several
    /// queries fault in once.
    pub fn query_many(&self, queries: &[RelationshipQuery]) -> Result<Vec<Vec<Relationship>>> {
        let scoped = queries
            .iter()
            .map(|q| self.scope_to_loaded(q))
            .collect::<Result<Vec<_>>>()?;
        match &self.backing {
            Backing::Eager(index, _) => {
                if self.shards.is_monolithic() {
                    run_query_many(index, &self.geometry, &self.config, &self.cache, &scoped)
                        .map_err(Into::into)
                } else {
                    let view = IndexView::new(&index.datasets, index.functions.iter().collect());
                    run_query_many_view_routed(
                        &view,
                        &self.geometry,
                        &self.config,
                        &self.cache,
                        &scoped,
                        &self.shards,
                    )
                    .map_err(Into::into)
                }
            }
            Backing::Lazy(lazy) => {
                let pinned = lazy.pin_for(&scoped)?;
                let view = IndexView::new(lazy.catalog(), pinned.iter().map(|a| &**a).collect());
                run_query_many_view(&view, &self.geometry, &self.config, &self.cache, &scoped)
                    .map_err(Into::into)
            }
            Backing::ShardedLazy(lazy) => {
                let pinned = lazy.pin_for(&scoped)?;
                let view = IndexView::new(lazy.catalog(), pinned.iter().map(|a| &**a).collect());
                run_query_many_view_routed(
                    &view,
                    &self.geometry,
                    &self.config,
                    &self.cache,
                    &scoped,
                    &self.shards,
                )
                .map_err(Into::into)
            }
        }
    }

    /// Rewrites a query so it ranges only over loaded data sets, rejecting
    /// explicit references to unloaded ones.
    fn scope_to_loaded(&self, query: &RelationshipQuery) -> Result<RelationshipQuery> {
        let catalog = self.catalog();
        let scope = |names: &Option<Vec<String>>| -> Result<Option<Vec<String>>> {
            match names {
                None => Ok(Some(self.loaded.clone())),
                Some(list) => {
                    for name in list {
                        // Unknown-anywhere names fall through to run_query's
                        // UnknownDataset; known-but-unloaded ones are the
                        // session's own refusal.
                        if catalog.iter().any(|d| d.meta.name == *name)
                            && !self.loaded.contains(name)
                        {
                            return Err(StoreError::DatasetNotLoaded(name.clone()));
                        }
                    }
                    Ok(Some(list.clone()))
                }
            }
        };
        Ok(RelationshipQuery {
            left: scope(&query.left)?,
            right: scope(&query.right)?,
            clause: query.clause.clone(),
        })
    }

    /// The materialized index — `Some` for eager sessions, `None` for lazy
    /// ones (a lazy session never holds the whole index; use
    /// [`StoreSession::catalog`] for the always-resident data set catalog).
    pub fn index(&self) -> Option<&PolygamyIndex> {
        match &self.backing {
            Backing::Eager(index, _) => Some(index),
            Backing::Lazy(_) | Backing::ShardedLazy(_) => None,
        }
    }

    /// Total `.plst` bytes this session has read, uniformly across modes:
    /// an eager session reports its one-shot load (a constant from open
    /// onwards), a lazy session reports the live source counter, which
    /// grows as queries fault segments in.
    pub fn bytes_fetched(&self) -> u64 {
        match &self.backing {
            Backing::Eager(_, bytes_loaded) => *bytes_loaded,
            Backing::Lazy(lazy) => lazy.store().source().bytes_fetched(),
            Backing::ShardedLazy(lazy) => lazy.bytes_fetched(),
        }
    }

    /// The data set catalog (resident in every mode).
    pub fn catalog(&self) -> &[DatasetEntry] {
        match &self.backing {
            Backing::Eager(index, _) => &index.datasets,
            Backing::Lazy(lazy) => lazy.catalog(),
            Backing::ShardedLazy(lazy) => lazy.catalog(),
        }
    }

    /// The demand-paged index — `Some` for (monolithic) lazy sessions only;
    /// sharded sessions expose theirs via [`StoreSession::sharded_lazy`].
    pub fn lazy_index(&self) -> Option<&LazyIndex> {
        match &self.backing {
            Backing::Eager(..) | Backing::ShardedLazy(_) => None,
            Backing::Lazy(lazy) => Some(lazy),
        }
    }

    /// The per-shard demand-paged index — `Some` for sharded lazy sessions
    /// only (inspect and the daemon use it for shard health).
    pub fn sharded_lazy(&self) -> Option<&ShardedLazy> {
        match &self.backing {
            Backing::ShardedLazy(lazy) => Some(lazy),
            _ => None,
        }
    }

    /// The task-routing table: monolithic for plain stores, the shard
    /// layout for sharded ones.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// Number of shard files behind this session (1 for a monolith).
    pub fn n_shards(&self) -> usize {
        self.shards.n_shards()
    }

    /// True when this session faults segments in on demand.
    pub fn is_lazy(&self) -> bool {
        matches!(self.backing, Backing::Lazy(_) | Backing::ShardedLazy(_))
    }

    /// Names of the data sets this session serves.
    pub fn loaded_datasets(&self) -> &[String] {
        &self.loaded
    }

    /// The geometry the index was built over.
    pub fn geometry(&self) -> &CityGeometry {
        &self.geometry
    }

    /// The session configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of cached per-pair results (diagnostics/tests).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// The data set names a filter admits — the set a session can serve.
fn loaded_names(catalog: &[DatasetEntry], filter: &LoadFilter) -> Vec<String> {
    match &filter.datasets {
        None => catalog.iter().map(|d| d.meta.name.clone()).collect(),
        Some(names) => names.clone(),
    }
}

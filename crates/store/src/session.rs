//! Concurrent serving sessions over a loaded store.
//!
//! A [`StoreSession`] answers [`RelationshipQuery`]s from the materialized
//! index exactly like the in-memory framework — same operator, same
//! significance machinery, same deterministic ordering — behind a sharded,
//! bounded LRU cache. `query` takes `&self`, so one session can be shared
//! across any number of reader threads; shards keep cache contention low
//! and the LRU bound keeps memory flat under sustained traffic.
//!
//! A session built with a data-set [`LoadFilter`] serves only the loaded
//! data sets: a query naming an unloaded one is a typed
//! [`StoreError::DatasetNotLoaded`] — never a silently empty result — and
//! whole-corpus queries range over the loaded subset.

use crate::error::{Result, StoreError};
use crate::store::{LoadFilter, Store};
use polygamy_core::cache::{QueryCache, DEFAULT_QUERY_CACHE_CAPACITY};
use polygamy_core::index::PolygamyIndex;
use polygamy_core::query::RelationshipQuery;
use polygamy_core::relationship::Relationship;
use polygamy_core::{run_query, run_query_many, CityGeometry, Config};
use std::path::Path;

/// A read-only serving session: geometry + materialized index + query
/// cache.
///
/// Index once, save, then serve queries from the file — no raw data and
/// no rebuild at query time:
///
/// ```
/// use polygamy_core::prelude::*;
/// use polygamy_core::DataPolygamy;
/// use polygamy_store::{Store, StoreSession};
///
/// // Build a (tiny) index and persist it.
/// let meta = DatasetMeta {
///     name: "sensor".into(),
///     spatial_resolution: SpatialResolution::City,
///     temporal_resolution: TemporalResolution::Hour,
///     description: String::new(),
/// };
/// let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
/// for h in 0..96i64 {
///     let v = if h == 30 { 9.0 } else { (h % 24) as f64 * 0.1 };
///     b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
/// }
/// let mut dp = DataPolygamy::new(
///     CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
///     Config::fast_test(),
/// );
/// dp.add_dataset(b.build().unwrap());
/// dp.build_index();
/// let path = std::env::temp_dir().join(format!("plst-doc-{}.plst", std::process::id()));
/// Store::save(&path, dp.geometry(), dp.index().unwrap()).unwrap();
///
/// // Any later process serves queries straight from the file. `query`
/// // takes `&self`, so one session is shared across reader threads.
/// let session = StoreSession::open(&path).unwrap();
/// let query = parse_query("between sensor and * where permutations = 20").unwrap();
/// assert!(session.query(&query).unwrap().is_empty()); // one data set: no pairs
/// assert_eq!(session.loaded_datasets(), ["sensor".to_string()]);
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct StoreSession {
    geometry: CityGeometry,
    config: Config,
    index: PolygamyIndex,
    /// Names of the data sets whose segments were admitted by the load
    /// filter — the set this session can serve.
    loaded: Vec<String>,
    cache: QueryCache,
}

impl StoreSession {
    /// Opens a session over the whole store with the default configuration.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, Config::default(), &LoadFilter::all())
    }

    /// Opens a session with an explicit configuration and load filter —
    /// only the function segments the filter admits are read off disk.
    pub fn open_with(path: impl AsRef<Path>, config: Config, filter: &LoadFilter) -> Result<Self> {
        Self::from_store(&Store::open(path)?, config, filter)
    }

    /// Builds a session from an already-open store.
    pub fn from_store(store: &Store, config: Config, filter: &LoadFilter) -> Result<Self> {
        let index = store.load_filtered(filter)?;
        let loaded = match &filter.datasets {
            None => index.datasets.iter().map(|d| d.meta.name.clone()).collect(),
            Some(names) => names.clone(),
        };
        Ok(Self {
            geometry: store.load_geometry()?,
            config,
            index,
            loaded,
            cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
        })
    }

    /// Evaluates a relationship query against the loaded index.
    ///
    /// Results are identical to [`polygamy_core::DataPolygamy::query`] over
    /// the same corpus, configuration and clause. On a session built with a
    /// data-set filter, explicit names outside the loaded set yield
    /// [`StoreError::DatasetNotLoaded`], and `None` collections range over
    /// the loaded data sets only. Takes `&self`: sessions are shared freely
    /// across reader threads.
    pub fn query(&self, query: &RelationshipQuery) -> Result<Vec<Relationship>> {
        let query = self.scope_to_loaded(query)?;
        run_query(
            &self.index,
            &self.geometry,
            &self.config,
            &self.cache,
            &query,
        )
        .map_err(Into::into)
    }

    /// Evaluates a batch of queries on one shared worker pool (the flat
    /// executor), amortising pool startup across the batch — the serving
    /// path behind `polygamy-store query --batch`.
    ///
    /// Returns one result vector per query, in input order; each equals
    /// what [`StoreSession::query`] returns for that query alone, subject
    /// to the same load-filter scoping rules.
    pub fn query_many(&self, queries: &[RelationshipQuery]) -> Result<Vec<Vec<Relationship>>> {
        let scoped = queries
            .iter()
            .map(|q| self.scope_to_loaded(q))
            .collect::<Result<Vec<_>>>()?;
        run_query_many(
            &self.index,
            &self.geometry,
            &self.config,
            &self.cache,
            &scoped,
        )
        .map_err(Into::into)
    }

    /// Rewrites a query so it ranges only over loaded data sets, rejecting
    /// explicit references to unloaded ones.
    fn scope_to_loaded(&self, query: &RelationshipQuery) -> Result<RelationshipQuery> {
        let scope = |names: &Option<Vec<String>>| -> Result<Option<Vec<String>>> {
            match names {
                None => Ok(Some(self.loaded.clone())),
                Some(list) => {
                    for name in list {
                        // Unknown-anywhere names fall through to run_query's
                        // UnknownDataset; known-but-unloaded ones are the
                        // session's own refusal.
                        if self.index.datasets.iter().any(|d| d.meta.name == *name)
                            && !self.loaded.contains(name)
                        {
                            return Err(StoreError::DatasetNotLoaded(name.clone()));
                        }
                    }
                    Ok(Some(list.clone()))
                }
            }
        };
        Ok(RelationshipQuery {
            left: scope(&query.left)?,
            right: scope(&query.right)?,
            clause: query.clause.clone(),
        })
    }

    /// The materialized index.
    pub fn index(&self) -> &PolygamyIndex {
        &self.index
    }

    /// Names of the data sets this session serves.
    pub fn loaded_datasets(&self) -> &[String] {
        &self.loaded
    }

    /// The geometry the index was built over.
    pub fn geometry(&self) -> &CityGeometry {
        &self.geometry
    }

    /// The session configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of cached per-pair results (diagnostics/tests).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

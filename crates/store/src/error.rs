//! Typed errors for the store: a corrupted, truncated or incompatible file
//! always yields one of these — never a panic, never garbage data.

use std::fmt;

/// Errors raised while writing, opening or serving a store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a polygamy store.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file ends before a structure it promises (header, manifest or a
    /// segment range points past EOF).
    Truncated {
        /// Which structure was cut short.
        what: String,
    },
    /// Stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// Which structure failed verification.
        what: String,
    },
    /// The bytes verified but do not decode to a valid structure.
    Corrupt(String),
    /// A requested data set is not in the store's catalog.
    UnknownDataset(String),
    /// A query referenced a cataloged data set whose segments the session's
    /// load filter did not materialize.
    DatasetNotLoaded(String),
    /// A shard of a sharded store could not be opened (missing, truncated
    /// or corrupt shard file) and a query's footprint touches it. Shards
    /// that opened cleanly keep serving; only queries touching this shard
    /// fail, and they keep failing with this same error until the shard
    /// file is restored.
    ShardUnavailable {
        /// Index of the shard in the shard catalog.
        shard: usize,
        /// Shard file name as recorded in the catalog.
        file: String,
        /// Why the shard failed to open, rendered from the underlying
        /// open error.
        reason: String,
    },
    /// A query against a loaded session failed.
    Query(polygamy_core::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a polygamy store (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported store version {found} (this build supports {supported})"
            ),
            StoreError::Truncated { what } => write!(f, "store file truncated at {what}"),
            StoreError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch in {what} (file is corrupted)")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::UnknownDataset(name) => {
                write!(f, "data set not in store catalog: {name}")
            }
            StoreError::DatasetNotLoaded(name) => {
                write!(f, "data set not loaded by this session's filter: {name}")
            }
            StoreError::ShardUnavailable {
                shard,
                file,
                reason,
            } => {
                write!(f, "shard {shard} ({file}) unavailable: {reason}")
            }
            StoreError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<polygamy_core::Error> for StoreError {
    fn from(e: polygamy_core::Error) -> Self {
        StoreError::Query(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let v = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
        assert!(StoreError::Truncated {
            what: "manifest".into()
        }
        .to_string()
        .contains("manifest"));
        assert!(StoreError::ChecksumMismatch {
            what: "segment 3".into()
        }
        .to_string()
        .contains("segment 3"));
        assert!(StoreError::UnknownDataset("taxi".into())
            .to_string()
            .contains("taxi"));
        let s = StoreError::ShardUnavailable {
            shard: 2,
            file: "corpus.shard2.plst".into(),
            reason: "i/o error".into(),
        }
        .to_string();
        assert!(s.contains("shard 2") && s.contains("corpus.shard2.plst"));
    }
}

//! The on-disk file layout: header, manifest and segment directory.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (40 bytes, fixed)                                     │
//! │   magic "PLGYSTOR" · version u32 · flags u32                 │
//! │   manifest_offset u64 · manifest_len u64 · manifest_fnv u64  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ geometry blob (JSON payload, FNV-checksummed)                │
//! ├──────────────────────────────────────────────────────────────┤
//! │ segment 0 (one FunctionEntry, LE codec, FNV-checksummed)     │
//! │ segment 1                                                    │
//! │ …                                                            │
//! ├──────────────────────────────────────────────────────────────┤
//! │ manifest (LE codec):                                         │
//! │   geometry location · dataset catalog · segment directory    │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! The manifest lives at the *tail* so incremental maintenance can copy
//! retained segment bytes verbatim, append new ones, and write a fresh
//! manifest — the header's `manifest_offset` is the only fixed-position
//! field that moves.

use crate::codec::{dec_resolution, enc_resolution, Dec, Enc};
use crate::error::{Result, StoreError};
use polygamy_core::index::DatasetEntry;
use polygamy_stdata::{DatasetMeta, Resolution, SpatialResolution, TemporalResolution};

/// File magic: identifies a polygamy store.
pub const MAGIC: [u8; 8] = *b"PLGYSTOR";

/// Current format version. Bump whenever the codec's byte stream, the
/// clause fingerprint derivation, or the segment layout changes shape;
/// readers reject other versions with a typed error instead of guessing.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 40;

/// The fixed-size file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version (see [`VERSION`]).
    pub version: u32,
    /// Byte offset of the manifest payload.
    pub manifest_offset: u64,
    /// Length of the manifest payload in bytes.
    pub manifest_len: u64,
    /// FNV-1a checksum of the manifest payload.
    pub manifest_checksum: u64,
}

impl Header {
    /// Encodes the header to its fixed 40-byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        let mut bytes = MAGIC.to_vec();
        e.u32(self.version);
        e.u32(0); // flags, reserved
        e.u64(self.manifest_offset);
        e.u64(self.manifest_len);
        e.u64(self.manifest_checksum);
        bytes.extend_from_slice(&e.into_bytes());
        debug_assert_eq!(bytes.len() as u64, HEADER_LEN);
        bytes
    }

    /// Decodes and validates a header.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN as usize {
            return Err(StoreError::Truncated {
                what: "header".into(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut d = Dec::new(&bytes[8..HEADER_LEN as usize], "header");
        let version = d.u32()?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let _flags = d.u32()?;
        Ok(Self {
            version,
            manifest_offset: d.u64()?,
            manifest_len: d.u64()?,
            manifest_checksum: d.u64()?,
        })
    }
}

/// Location of one checksummed byte range within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobLoc {
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// Directory entry for one function segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentInfo {
    /// Catalog index of the owning data set. Lives here — not in the
    /// segment payload — so maintenance can renumber data sets without
    /// rewriting segment bytes.
    pub dataset_index: usize,
    /// Function name (`"density"`, `"avg(fare)"`, …) for filtering and
    /// inspection without decoding the payload.
    pub function: String,
    /// Resolution of the entry, for selective loading.
    pub resolution: Resolution,
    /// Where the payload lives.
    pub loc: BlobLoc,
}

/// The store manifest: everything needed to route reads, loaded in one
/// cheap tail read.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Location of the city-geometry blob.
    pub geometry: BlobLoc,
    /// Data set catalog, in indexing order.
    pub datasets: Vec<DatasetEntry>,
    /// Segment directory, grouped by data set in catalog order.
    pub segments: Vec<SegmentInfo>,
}

impl Manifest {
    /// Total on-disk segment bytes belonging to catalog entry `di`.
    pub fn dataset_disk_bytes(&self, di: usize) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.dataset_index == di)
            .map(|s| s.loc.len)
            .sum()
    }

    /// Catalog position of a data set by name.
    pub fn dataset_index(&self, name: &str) -> Result<usize> {
        self.datasets
            .iter()
            .position(|d| d.meta.name == name)
            .ok_or_else(|| StoreError::UnknownDataset(name.to_string()))
    }

    /// Encodes the manifest payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_blob_loc(&mut e, self.geometry);
        e.usize(self.datasets.len());
        for d in &self.datasets {
            enc_dataset_entry(&mut e, d);
        }
        e.usize(self.segments.len());
        for s in &self.segments {
            e.usize(s.dataset_index);
            e.str(&s.function);
            enc_resolution(&mut e, s.resolution);
            enc_blob_loc(&mut e, s.loc);
        }
        e.into_bytes()
    }

    /// Decodes and validates a manifest payload.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes, "manifest");
        let geometry = dec_blob_loc(&mut d)?;
        let n = d.seq_len(1)?;
        let mut datasets = Vec::with_capacity(n);
        for _ in 0..n {
            datasets.push(dec_dataset_entry(&mut d)?);
        }
        let n = d.seq_len(1)?;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            let dataset_index = d.usize()?;
            let function = d.str()?;
            let resolution = dec_resolution(&mut d)?;
            let loc = dec_blob_loc(&mut d)?;
            if dataset_index >= datasets.len() {
                return Err(StoreError::Corrupt(format!(
                    "segment {function} references data set {dataset_index} \
                     beyond the {}-entry catalog",
                    datasets.len()
                )));
            }
            segments.push(SegmentInfo {
                dataset_index,
                function,
                resolution,
                loc,
            });
        }
        d.finish()?;
        Ok(Self {
            geometry,
            datasets,
            segments,
        })
    }
}

fn enc_blob_loc(e: &mut Enc, loc: BlobLoc) {
    e.u64(loc.offset);
    e.u64(loc.len);
    e.u64(loc.checksum);
}

fn dec_blob_loc(d: &mut Dec<'_>) -> Result<BlobLoc> {
    Ok(BlobLoc {
        offset: d.u64()?,
        len: d.u64()?,
        checksum: d.u64()?,
    })
}

/// Encodes one catalog entry (shared by the manifest and the shard
/// catalog, so the two formats can never drift on catalog bytes).
pub(crate) fn enc_dataset_entry(e: &mut Enc, entry: &DatasetEntry) {
    e.str(&entry.meta.name);
    e.u8(entry.meta.spatial_resolution.code());
    e.u8(entry.meta.temporal_resolution.code());
    e.str(&entry.meta.description);
    e.usize(entry.n_records);
    e.usize(entry.raw_bytes);
    e.usize(entry.n_specs);
}

/// Decodes one catalog entry (see [`enc_dataset_entry`]).
pub(crate) fn dec_dataset_entry(d: &mut Dec<'_>) -> Result<DatasetEntry> {
    let name = d.str()?;
    let s = d.u8()?;
    let t = d.u8()?;
    let spatial_resolution = SpatialResolution::from_code(s)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown spatial resolution code {s}")))?;
    let temporal_resolution = TemporalResolution::from_code(t)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown temporal resolution code {t}")))?;
    let description = d.str()?;
    Ok(DatasetEntry {
        meta: DatasetMeta {
            name,
            spatial_resolution,
            temporal_resolution,
            description,
        },
        n_records: d.usize()?,
        raw_bytes: d.usize()?,
        n_specs: d.usize()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            geometry: BlobLoc {
                offset: 40,
                len: 100,
                checksum: 7,
            },
            datasets: vec![DatasetEntry {
                meta: DatasetMeta {
                    name: "taxi".into(),
                    spatial_resolution: SpatialResolution::Gps,
                    temporal_resolution: TemporalResolution::Hour,
                    description: "trips".into(),
                },
                n_records: 1_000,
                raw_bytes: 32_000,
                n_specs: 3,
            }],
            segments: vec![SegmentInfo {
                dataset_index: 0,
                function: "density".into(),
                resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
                loc: BlobLoc {
                    offset: 140,
                    len: 512,
                    checksum: 99,
                },
            }],
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            version: VERSION,
            manifest_offset: 652,
            manifest_len: 88,
            manifest_checksum: 0xdead_beef,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len() as u64, HEADER_LEN);
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic_version_truncation() {
        let h = Header {
            version: VERSION,
            manifest_offset: 0,
            manifest_len: 0,
            manifest_checksum: 0,
        };
        let good = h.encode();
        assert!(matches!(
            Header::decode(&good[..10]),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Header::decode(&bad_magic),
            Err(StoreError::BadMagic)
        ));
        let mut bad_version = good;
        bad_version[8] = 0xEE;
        assert!(matches!(
            Header::decode(&bad_version),
            Err(StoreError::UnsupportedVersion { found, supported: 1 }) if found != VERSION
        ));
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample_manifest();
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_out_of_range_dataset_index() {
        let mut m = sample_manifest();
        m.segments[0].dataset_index = 5;
        assert!(matches!(
            Manifest::decode(&m.encode()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_helpers() {
        let m = sample_manifest();
        assert_eq!(m.dataset_disk_bytes(0), 512);
        assert_eq!(m.dataset_index("taxi").unwrap(), 0);
        assert!(matches!(
            m.dataset_index("nope"),
            Err(StoreError::UnknownDataset(_))
        ));
    }
}

//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access. This shim keeps criterion's
//! bench-authoring API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_with_input`, `Throughput`) and runs
//! each benchmark with a short warm-up followed by `sample_size` timed
//! samples, reporting min/mean/max wall-clock per iteration. There is no
//! statistical analysis, HTML report or history — the numbers are honest
//! but the machinery is deliberately small.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (elements or bytes per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-iteration timing callback target (mirrors `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Times the closure: a warm-up pass, then `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let samples = if self.quick { 1 } else { self.sample_size };
        // One warm-up iteration so first-touch effects stay out of samples.
        black_box(routine());
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            quick: std::env::var_os("POLYGAMY_QUICK").is_some()
                || std::env::args().any(|a| a == "--test" || a == "--quick"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, None, id, None, None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group only (as in upstream
    /// criterion, the override does not outlive the group).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I, IdT, F>(&mut self, id: IdT, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        IdT: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (report output happens per-benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.unwrap_or(criterion.sample_size),
        quick: criterion.quick,
    };
    f(&mut bencher);
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.samples.is_empty() {
        println!("{full_name:<50} (no samples: bencher.iter never called)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().unwrap();
    let max = *bencher.samples.iter().max().unwrap();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            "  {:>12.0} elem/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
        Throughput::Bytes(n) => format!(
            "  {:>12.0} B/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    println!(
        "{full_name:<50} time: [{} {} {}]{}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        rate.unwrap_or_default(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

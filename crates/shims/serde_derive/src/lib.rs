//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-repo serde shim.
//!
//! The build container has no crates.io access, so `syn`/`quote` are not
//! available; this macro walks `proc_macro::TokenStream` directly. It
//! supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, including `#[serde(with = "module")]`
//!   field overrides;
//! * tuple structs (encoded as sequences);
//! * enums with unit, newtype and tuple variants (externally tagged).
//!
//! Generics, struct enum variants and the wider `#[serde(...)]` attribute
//! vocabulary are intentionally unsupported and fail with a clear panic at
//! expansion time.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        types: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips attributes, returning any `#[serde(with = "path")]` override.
    fn skip_attributes(&mut self) -> Option<String> {
        let mut with = None;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde shim derive: malformed attribute");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(name)) = inner.first() {
                if name.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        with = Some(parse_with(args.stream()));
                    }
                }
            }
        }
        with
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected identifier, got {other:?}"),
        }
    }
}

/// Extracts `path` from `with = "path"` attribute arguments.
fn parse_with(args: TokenStream) -> String {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if key.to_string() == "with" && eq.as_char() == '=' =>
        {
            let s = lit.to_string();
            s.trim_matches('"').to_string()
        }
        _ => panic!(
            "serde shim derive: only #[serde(with = \"module\")] is supported, got #[serde({})]",
            TokenStream::from_iter(tokens)
        ),
    }
}

/// Splits a token stream on top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            // The '>' of `->` / `=>` is an arrow, not a closing angle
            // bracket (its lead punct is spacing-joint).
            let arrow_tail = p.as_char() == '>'
                && matches!(
                    current.last(),
                    Some(TokenTree::Punct(prev))
                        if matches!(prev.as_char(), '-' | '=')
                            && prev.spacing() == Spacing::Joint
                );
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !arrow_tail => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    TokenStream::from_iter(tokens.iter().cloned()).to_string()
}

/// Parses one named field: `attrs vis name: Type`.
fn parse_named_field(tokens: Vec<TokenTree>) -> Option<Field> {
    let mut c = Cursor { tokens, pos: 0 };
    let with = c.skip_attributes();
    if c.at_end() {
        return None;
    }
    c.skip_visibility();
    let name = c.expect_ident();
    match c.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
        other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
    }
    let ty = tokens_to_string(&c.tokens[c.pos..]);
    Some(Field { name, ty, with })
}

/// Parses one tuple-struct / tuple-variant element: `attrs vis Type`.
fn parse_tuple_element(tokens: Vec<TokenTree>) -> Option<String> {
    let mut c = Cursor { tokens, pos: 0 };
    let with = c.skip_attributes();
    if with.is_some() {
        panic!("serde shim derive: #[serde(with)] is not supported on tuple fields");
    }
    if c.at_end() {
        return None;
    }
    c.skip_visibility();
    Some(tokens_to_string(&c.tokens[c.pos..]))
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .filter_map(|tokens| {
            let mut c = Cursor { tokens, pos: 0 };
            c.skip_attributes();
            if c.at_end() {
                return None;
            }
            let name = c.expect_ident();
            let kind = match c.next() {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(
                        split_commas(g.stream())
                            .into_iter()
                            .filter_map(parse_tuple_element)
                            .collect(),
                    )
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(
                        split_commas(g.stream())
                            .into_iter()
                            .filter_map(parse_named_field)
                            .collect(),
                    )
                }
                other => {
                    panic!("serde shim derive: unexpected token in variant `{name}`: {other:?}")
                }
            };
            Some(Variant { name, kind })
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (`{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: split_commas(g.stream())
                    .into_iter()
                    .filter_map(parse_named_field)
                    .collect(),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    types: split_commas(g.stream())
                        .into_iter()
                        .filter_map(parse_tuple_element)
                        .collect(),
                }
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__s, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    None => body.push_str(&format!(
                        "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", &self.{fname})?;\n"
                    )),
                    Some(with) => body.push_str(&format!(
                        "{{\n\
                         struct __SerWith<'__w>(&'__w {ty});\n\
                         impl<'__w> ::serde::Serialize for __SerWith<'__w> {{\n\
                         fn serialize<__S2: ::serde::Serializer>(&self, __s2: __S2) -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                         {with}::serialize(self.0, __s2)\n\
                         }}\n\
                         }}\n\
                         ::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", &__SerWith(&self.{fname}))?;\n\
                         }}\n",
                        ty = f.ty,
                    )),
                }
            }
            body.push_str("::serde::ser::SerializeStruct::end(__st)\n");
            out.push_str(&impl_serialize(name, &body));
        }
        Item::TupleStruct { name, types } => {
            let elems: Vec<String> = (0..types.len())
                .map(|i| {
                    format!(
                        "::serde::ser::to_content(&self.{i}).map_err(::serde::ser::Error::custom)?"
                    )
                })
                .collect();
            let body = format!(
                "::serde::Serializer::collect_seq(__s, [{}])\n",
                elems.join(", ")
            );
            out.push_str(&impl_serialize(name, &body));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__s, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(types) if types.len() == 1 => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__s, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(types) => {
                        let binds: Vec<String> =
                            (0..types.len()).map(|i| format!("__f{i}")).collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({b}) => ::serde::Serializer::serialize_newtype_variant(__s, \"{name}\", {idx}u32, \"{vname}\", &({b})),\n",
                            b = binds.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let decls: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: &'__w {}", f.name, f.ty))
                            .collect();
                        let mut payload_body = format!(
                            "let mut __st = ::serde::Serializer::serialize_struct(__s2, \"{vname}\", {}usize)?;\n",
                            fields.len()
                        );
                        for f in fields {
                            payload_body.push_str(&format!(
                                "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{0}\", self.{0})?;\n",
                                f.name
                            ));
                        }
                        payload_body.push_str("::serde::ser::SerializeStruct::end(__st)\n");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {b} }} => {{\n\
                             struct __SerVariant<'__w> {{ {decls} }}\n\
                             impl<'__w> ::serde::Serialize for __SerVariant<'__w> {{\n\
                             fn serialize<__S2: ::serde::Serializer>(&self, __s2: __S2) -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                             {payload_body}\
                             }}\n\
                             }}\n\
                             ::serde::Serializer::serialize_newtype_variant(__s, \"{name}\", {idx}u32, \"{vname}\", &__SerVariant {{ {b} }})\n\
                             }},\n",
                            b = binds.join(", "),
                            decls = decls.join(", "),
                        ));
                    }
                }
            }
            let body = format!("match self {{\n{arms}}}\n");
            out.push_str(&impl_serialize(name, &body));
        }
    }
    out
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         let __c = ::serde::Deserializer::content(__d)?;\n\
         {body}\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                let fetch = format!(
                    "let __f = ::serde::__private::find(__m, \"{fname}\")\
                     .ok_or_else(|| <__D::Error as ::serde::de::Error>::custom(\
                     \"missing field `{fname}` in {name}\"))?;\n"
                );
                let value = match &f.with {
                    None => "::serde::Deserialize::deserialize(::serde::__private::cd::<__D::Error>(__f))?".to_string(),
                    Some(with) => format!("{with}::deserialize(::serde::__private::cd::<__D::Error>(__f))?"),
                };
                inits.push_str(&format!("{fname}: {{ {fetch} {value} }},\n"));
            }
            let body = format!(
                "let __m = match __c {{\n\
                 ::serde::Content::Map(m) => m.as_slice(),\n\
                 _ => return Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected map for struct {name}, got {{}}\", __c.kind()))),\n\
                 }};\n\
                 Ok({name} {{\n{inits}}})\n"
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, types } => {
            let n = types.len();
            let elems: Vec<String> = (0..n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(::serde::__private::cd::<__D::Error>(&__items[{i}]))?"
                    )
                })
                .collect();
            let body = format!(
                "let __items = match __c {{\n\
                 ::serde::Content::Seq(items) if items.len() == {n} => items.as_slice(),\n\
                 _ => return Err(<__D::Error as ::serde::de::Error>::custom(\
                 \"expected {n}-element sequence for tuple struct {name}\")),\n\
                 }};\n\
                 Ok({name}({}))\n",
                elems.join(", ")
            );
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n")),
                    VariantKind::Tuple(types) if types.len() == 1 => data_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::deserialize(::serde::__private::cd::<__D::Error>(__v))?)),\n"
                    )),
                    VariantKind::Tuple(types) => {
                        let tuple_ty = format!("({},)", types.join(", "));
                        let fields: Vec<String> =
                            (0..types.len()).map(|i| format!("__t.{i}")).collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __t: {tuple_ty} = ::serde::Deserialize::deserialize(::serde::__private::cd::<__D::Error>(__v))?;\n\
                             Ok({name}::{vname}({}))\n\
                             }},\n",
                            fields.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.with.is_some() {
                                panic!("serde shim derive: #[serde(with)] is not supported inside enum variants");
                            }
                            inits.push_str(&format!(
                                "{0}: {{\n\
                                 let __f = ::serde::__private::find(__m2, \"{0}\")\
                                 .ok_or_else(|| <__D::Error as ::serde::de::Error>::custom(\
                                 \"missing field `{0}` in variant {vname} of {name}\"))?;\n\
                                 ::serde::Deserialize::deserialize(::serde::__private::cd::<__D::Error>(__f))?\n\
                                 }},\n",
                                f.name
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __m2 = match __v {{\n\
                             ::serde::Content::Map(m) => m.as_slice(),\n\
                             _ => return Err(<__D::Error as ::serde::de::Error>::custom(\
                             \"expected map payload for variant {vname} of {name}\")),\n\
                             }};\n\
                             Ok({name}::{vname} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected variant of {name}, got {{}}\", __c.kind()))),\n\
                 }}\n"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! The build container has no crates.io access. This shim keeps the
//! authoring surface the workspace uses — the [`proptest!`] macro with
//! `arg in strategy` bindings and `#![proptest_config(..)]`, `prop_assert!`
//! / `prop_assert_eq!`, `prop_oneof!`, [`strategy::Just`], range strategies
//! and `prop::collection::{vec, btree_set}` — and runs each property over
//! deterministically seeded random cases (seed derived from the test name,
//! overridable via `PROPTEST_SEED`). Failing cases report their inputs.
//! There is no shrinking: the first failing case is reported as-is.

pub mod strategy;
pub mod test_runner;

/// Value-generation strategies over container types.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose target cardinality is drawn from `size`.
    ///
    /// Duplicates drawn from the element strategy are retried a bounded
    /// number of times, so a narrow domain yields a smaller set rather
    /// than looping forever.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The import surface `use proptest::prelude::*` provides.
pub mod prelude {
    /// The `prop::` module path (`prop::collection::vec`, ...).
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the block form with an optional leading
/// `#![proptest_config(expr)]` and `fn name(arg in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = result {
                    let inputs = format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    panic!(
                        "proptest case {case}/{total} failed: {err}\n  inputs:{inputs}",
                        total = config.cases,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside [`proptest!`], failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

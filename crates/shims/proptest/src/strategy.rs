//! Value-generation strategies (the shim's `proptest::strategy`).

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a value from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Weighted choice among boxed strategies of one value type.
pub struct Union<T> {
    variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.variants {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick exceeds total weight")
    }
}

/// A range of sizes for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    /// Draws a size.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.max(r.start + 1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end().saturating_add(1).max(*r.start() + 1),
        }
    }
}

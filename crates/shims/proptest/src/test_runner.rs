//! Case execution support for the [`proptest!`](crate::proptest) macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::{self, Display};

/// Configuration for one property (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG for one property: seeded from the test name (FNV-1a)
/// so runs are reproducible, overridable with `PROPTEST_SEED`.
pub fn rng_for_test(name: &str) -> SmallRng {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return SmallRng::seed_from_u64(seed);
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(hash)
}

//! The self-describing value tree shared by serialization and
//! deserialization.

/// A serialized value: the JSON data model plus an integer fast path.
///
/// Serializers produce a `Content` tree; deserializers read one. `NaN`
/// floats serialize as [`Content::Null`] (JSON has no NaN) and `Null`
/// deserializes back to NaN for float targets, so scalar fields with
/// undefined points round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (kept separate to round-trip `u64 > i64::MAX`).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human-readable label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

//! Serialization half of the shim: serde-shaped traits over [`Content`].

use crate::content::Content;
use std::fmt::Display;

/// Error trait for serializers (mirrors `serde::ser::Error`).
pub trait Error: Sized + Display {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The concrete serialization error.
#[derive(Debug, Clone)]
pub struct SerError(pub String);

impl Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// A data format that can serialize the shim's data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Struct sub-serializer returned by [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float (`NaN` becomes null).
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value as null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant as its name.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a data-carrying enum variant, externally tagged.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes everything an iterator yields as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize;
    /// Serializes string-keyed pairs as a map.
    fn collect_map<K, V, I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>;
    /// Begins serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Field-by-field struct serialization (mirrors `serde::ser::SerializeStruct`).
pub trait SerializeStruct {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A value serializable by any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The workhorse serializer: builds a [`Content`] tree.
#[derive(Debug, Default, Clone, Copy)]
pub struct ContentSerializer;

/// In-progress struct serialization for [`ContentSerializer`].
#[derive(Debug, Default)]
pub struct ContentStructSerializer {
    fields: Vec<(String, Content)>,
}

impl SerializeStruct for ContentStructSerializer {
    type Ok = Content;
    type Error = SerError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        let v = value.serialize(ContentSerializer)?;
        self.fields.push((key.to_string(), v));
        Ok(())
    }

    fn end(self) -> Result<Self::Ok, Self::Error> {
        Ok(Content::Map(self.fields))
    }
}

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = SerError;
    type SerializeStruct = ContentStructSerializer;

    fn serialize_bool(self, v: bool) -> Result<Content, SerError> {
        Ok(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Content, SerError> {
        Ok(Content::I64(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Content, SerError> {
        Ok(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Content, SerError> {
        // JSON cannot represent NaN/inf; the shim maps them to null and
        // float deserialization maps null back to NaN.
        if v.is_finite() {
            Ok(Content::F64(v))
        } else if v.is_nan() {
            Ok(Content::Null)
        } else {
            Err(SerError::custom("cannot serialize infinite float"))
        }
    }

    fn serialize_str(self, v: &str) -> Result<Content, SerError> {
        Ok(Content::Str(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_none(self) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Content, SerError> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, SerError> {
        Ok(Content::Str(variant.to_string()))
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, SerError> {
        let v = value.serialize(ContentSerializer)?;
        Ok(Content::Map(vec![(variant.to_string(), v)]))
    }

    fn collect_seq<I>(self, iter: I) -> Result<Content, SerError>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let items: Result<Vec<Content>, SerError> = iter
            .into_iter()
            .map(|item| item.serialize(ContentSerializer))
            .collect();
        Ok(Content::Seq(items?))
    }

    fn collect_map<K, V, I>(self, iter: I) -> Result<Content, SerError>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>,
    {
        let mut fields = Vec::new();
        for (k, v) in iter {
            let key = match k.serialize(ContentSerializer)? {
                Content::Str(s) => s,
                Content::I64(i) => i.to_string(),
                Content::U64(u) => u.to_string(),
                other => {
                    return Err(SerError::custom(format!(
                        "map key must be a string or integer, got {}",
                        other.kind()
                    )))
                }
            };
            fields.push((key, v.serialize(ContentSerializer)?));
        }
        Ok(Content::Map(fields))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<ContentStructSerializer, SerError> {
        Ok(ContentStructSerializer {
            fields: Vec::with_capacity(len),
        })
    }
}

/// Serializes any value to a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, SerError> {
    value.serialize(ContentSerializer)
}

macro_rules! impl_serialize_int {
    ($($t:ty => $method:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $as)
            }
        }
    )*};
}

impl_serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut buf = [0u8; 4];
        serializer.serialize_str(self.encode_utf8(&mut buf))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq([
            to_content(&self.0).map_err(S::Error::custom)?,
            to_content(&self.1).map_err(S::Error::custom)?,
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq([
            to_content(&self.0).map_err(S::Error::custom)?,
            to_content(&self.1).map_err(S::Error::custom)?,
            to_content(&self.2).map_err(S::Error::custom)?,
        ])
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Content::Null => serializer.serialize_unit(),
            Content::Bool(b) => serializer.serialize_bool(*b),
            Content::I64(i) => serializer.serialize_i64(*i),
            Content::U64(u) => serializer.serialize_u64(*u),
            Content::F64(f) => serializer.serialize_f64(*f),
            Content::Str(s) => serializer.serialize_str(s),
            Content::Seq(items) => serializer.collect_seq(items.iter()),
            Content::Map(fields) => {
                serializer.collect_map(fields.iter().map(|(k, v)| (k.as_str(), v)))
            }
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

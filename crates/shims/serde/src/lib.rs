//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors a small data-model-compatible subset of serde: the
//! `Serialize`/`Deserialize` traits, a concrete [`Content`] tree the
//! serializers produce and the deserializers consume, and re-exported derive
//! macros from the sibling `serde_derive` shim. The subset covers exactly
//! the idioms this workspace uses — derived structs and enums, `#[serde(with
//! = "module")]` field overrides, `collect_seq`, `serialize_none`/`_some`
//! and `Option`/`Vec` round-trips — and is consumed by the `serde_json`
//! shim for text encoding.
//!
//! Not supported (by design): zero-copy borrowing, visitors, non-self
//! describing formats, `#[serde(rename, default, skip, ...)]`.

pub mod content;
pub mod de;
pub mod ser;

pub use content::Content;
pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

/// Support machinery used by `serde_derive`-generated code. Not public API.
pub mod __private {
    pub use crate::content::Content;
    pub use crate::de::{ContentDeserializer, Error as DeErrorTrait};

    /// Looks up a struct field in a deserialized map.
    pub fn find<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Wraps borrowed content in a deserializer with the caller's error type.
    pub fn cd<E>(content: &Content) -> ContentDeserializer<'_, E> {
        ContentDeserializer::new(content)
    }
}

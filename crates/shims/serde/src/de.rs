//! Deserialization half of the shim: serde-shaped traits over [`Content`].

use crate::content::Content;
use std::fmt::Display;
use std::marker::PhantomData;

/// Error trait for deserializers (mirrors `serde::de::Error`).
pub trait Error: Sized + Display {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The concrete deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A data format that can hand out borrowed [`Content`].
///
/// Unlike real serde there is no visitor machinery: the shim's data model is
/// always a self-describing `Content` tree, so deserializers simply expose
/// it and `Deserialize` impls pattern-match.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Returns the content tree to deserialize from.
    fn content(self) -> Result<&'de Content, Self::Error>;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The workhorse deserializer: wraps borrowed [`Content`] with a caller
/// chosen error type so derived code can thread `D::Error` through.
pub struct ContentDeserializer<'de, E> {
    content: &'de Content,
    _marker: PhantomData<fn() -> E>,
}

impl<'de, E> ContentDeserializer<'de, E> {
    /// Wraps borrowed content.
    pub fn new(content: &'de Content) -> Self {
        Self {
            content,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<'de, E> {
    type Error = E;

    fn content(self) -> Result<&'de Content, E> {
        Ok(self.content)
    }
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.content()?;
                let out = match c {
                    Content::I64(i) => <$t>::try_from(*i).ok(),
                    Content::U64(u) => <$t>::try_from(*u).ok(),
                    Content::F64(f) if f.fract() == 0.0 => {
                        <$t>::try_from(*f as i64).ok()
                    }
                    _ => return Err(unexpected(stringify!($t), c)),
                };
                out.ok_or_else(|| {
                    D::Error::custom(format!("integer out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Bool(b) => Ok(*b),
            c => Err(unexpected("bool", c)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            // NaN serializes as null; restore it.
            Content::Null => Ok(f64::NAN),
            c => Err(unexpected("float", c)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Str(s) => Ok(s.clone()),
            c => Err(unexpected("string", c)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            c => Err(unexpected("single-char string", c)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Null => Ok(()),
            c => Err(unexpected("null", c)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Null => Ok(None),
            c => T::deserialize(ContentDeserializer::<D::Error>::new(c)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) => items
                .iter()
                .map(|c| T::deserialize(ContentDeserializer::<D::Error>::new(c)))
                .collect(),
            c => Err(unexpected("sequence", c)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) if items.len() == 2 => Ok((
                A::deserialize(ContentDeserializer::<D::Error>::new(&items[0]))?,
                B::deserialize(ContentDeserializer::<D::Error>::new(&items[1]))?,
            )),
            c => Err(unexpected("2-element sequence", c)),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::deserialize(ContentDeserializer::<D::Error>::new(&items[0]))?,
                B::deserialize(ContentDeserializer::<D::Error>::new(&items[1]))?,
                C::deserialize(ContentDeserializer::<D::Error>::new(&items[2]))?,
            )),
            c => Err(unexpected("3-element sequence", c)),
        }
    }
}

/// Map keys that can be recovered from the string keys of a JSON object.
pub trait FromMapKey: Sized {
    /// Parses a key.
    fn from_map_key(key: &str) -> Option<Self>;
}

impl FromMapKey for String {
    fn from_map_key(key: &str) -> Option<Self> {
        Some(key.to_string())
    }
}

macro_rules! impl_from_map_key_int {
    ($($t:ty),* $(,)?) => {$(
        impl FromMapKey for $t {
            fn from_map_key(key: &str) -> Option<Self> {
                key.parse().ok()
            }
        }
    )*};
}

impl_from_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: FromMapKey + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Map(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = K::from_map_key(k)
                        .ok_or_else(|| D::Error::custom(format!("invalid map key `{k}`")))?;
                    let value = V::deserialize(ContentDeserializer::<D::Error>::new(v))?;
                    Ok((key, value))
                })
                .collect(),
            c => Err(unexpected("map", c)),
        }
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: FromMapKey + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Map(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = K::from_map_key(k)
                        .ok_or_else(|| D::Error::custom(format!("invalid map key `{k}`")))?;
                    let value = V::deserialize(ContentDeserializer::<D::Error>::new(v))?;
                    Ok((key, value))
                })
                .collect(),
            c => Err(unexpected("map", c)),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) => items
                .iter()
                .map(|c| T::deserialize(ContentDeserializer::<D::Error>::new(c)))
                .collect(),
            c => Err(unexpected("sequence", c)),
        }
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.content().cloned()
    }
}

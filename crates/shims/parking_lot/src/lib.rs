//! Minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no crates.io access. This shim keeps
//! `parking_lot`'s no-poisoning API shape: `lock()` returns a guard
//! directly, recovering the data if a previous holder panicked.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-immune API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-immune API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

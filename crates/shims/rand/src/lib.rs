//! Minimal stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build container has no crates.io access, so this shim provides the
//! subset the workspace uses: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`Rng`] extension trait with `gen`, `gen_bool` and
//! `gen_range`, [`SeedableRng`], and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates). Streams are deterministic per seed, which is exactly
//! what the reproduction needs; they do not match upstream `rand` streams.

use std::ops::{Range, RangeInclusive};

/// The low-level source of randomness (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// An RNG constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly "at standard" (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire's widening-multiply bounded sampling (no modulo
                // bias worth caring about at a 64-bit numerator).
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                if v < self.end {
                    return v;
                }
                // start + unit*(end-start) can round up to `end`; step down
                // to the largest float below it to keep the exclusive
                // contract.
                let bits = self.end.to_bits();
                if self.end > 0.0 {
                    <$t>::from_bits(bits - 1)
                } else if self.end == 0.0 {
                    // Largest value below ±0.0: the smallest-magnitude
                    // negative subnormal.
                    <$t>::from_bits((-0.0 as $t).to_bits() | 1)
                } else {
                    <$t>::from_bits(bits + 1)
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing random-value methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start at the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related random operations (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..18usize);
            assert!((3..18).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}

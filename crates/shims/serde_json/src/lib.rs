//! Minimal stand-in for `serde_json` over the in-repo serde shim.
//!
//! Provides [`to_string`] / [`from_str`] by rendering and parsing the
//! shim's [`Content`] tree. Covers the JSON subset the workspace emits:
//! finite numbers (NaN round-trips as `null`), strings with standard
//! escapes, arrays and objects.

use serde::content::Content;
use serde::de::{ContentDeserializer, DeError};
use serde::ser::to_content;
use serde::{Deserialize, Serialize};
use std::fmt::{self, Display, Write};

/// Error produced by JSON encoding or decoding.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let content = Parser::new(s).parse()?;
    T::deserialize(ContentDeserializer::<DeError>::new(&content)).map_err(|e| Error(e.to_string()))
}

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Content::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Content::F64(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting; integral
                // floats keep a ".0" so they parse back as floats.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Content> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.fail("trailing characters"));
        }
        Ok(v)
    }

    fn fail(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", expected as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected object key"));
            }
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(fields));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.fail("invalid \\u escape"))?);
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the lead byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if width == 0 || end > self.bytes.len() {
                        return Err(self.fail("invalid UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.fail("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.fail("invalid number"))
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        let x: f64 = from_str("null").unwrap();
        assert!(x.is_nan());
        let v: Vec<Option<f64>> = from_str("[1.0,null,3.5]").unwrap();
        assert_eq!(v, vec![Some(1.0), None, Some(3.5)]);
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(String, Vec<u32>)> = vec![("a".into(), vec![1, 2]), ("b".into(), vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<u32>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}

//! # polygamy-topology — computational-topology substrate
//!
//! The Data Polygamy framework (SIGMOD 2016) identifies *salient features* of
//! a time-varying scalar function — spatio-temporal regions behaving unlike
//! their neighbourhood — using computational topology. This crate implements
//! that machinery over arbitrary planar domain graphs:
//!
//! * [`graph`] — the CSR domain graph `G = (V, ES ∪ ET)` of paper
//!   Section 3.1: spatial region adjacency replicated per time step plus
//!   temporal edges between consecutive steps;
//! * [`union_find`] — the union-find structure behind merge-tree
//!   construction;
//! * [`merge_tree`] — join/split trees computed by the paper's Procedure
//!   *ComputeJoinTree* in `O(N log N + N α(N))`, with creator–destroyer
//!   persistence pairing recorded during the sweep;
//! * [`persistence`] — persistence pairs/diagrams (paper Figure 5);
//! * [`threshold`] — automatic feature thresholds: exact 1-D 2-means over
//!   persistence values for *salient* features, box-plot outlier fences for
//!   *extreme* features, per seasonal interval (paper Section 3.3);
//! * [`level_set`] — output-sensitive super-/sub-level-set extraction
//!   (paper Section 3.2);
//! * [`features`] — positive/negative feature sets as packed bit vectors;
//! * [`bitvec`] — the packed bit-set representation (paper Appendix C).

#![forbid(unsafe_code)]

pub mod bitvec;
pub mod criticals;
pub mod error;
pub mod features;
pub mod gradient;
pub mod graph;
pub mod level_set;
pub mod merge_tree;
pub mod persistence;
pub mod threshold;
pub mod union_find;

pub use bitvec::BitVec;
pub use criticals::{classify_extrema, CriticalKind};
pub use error::Error;
pub use features::{FeatureClass, FeatureSet, FeatureSets};
pub use gradient::{gradient_magnitude, temporal_derivative};
pub use graph::DomainGraph;
pub use level_set::{sub_level_set, super_level_set};
pub use merge_tree::{Direction, MergeTree, TreeNode};
pub use persistence::{PersistenceDiagram, PersistencePair};
pub use threshold::{compute_thresholds, seasonal_thresholds, SeasonalThresholds, Thresholds};
pub use union_find::UnionFind;

//! Merge-tree construction (paper Section 3, Procedure *ComputeJoinTree*).
//!
//! The *join tree* tracks connected components of super-level sets as the
//! function value decreases; the *split tree* tracks sub-level sets as it
//! increases. Both are computed by one sweep over the vertices in sweep
//! order with a union-find, in `O(N log N + N α(N))`.
//!
//! Morse-condition handling (paper Appendix B.1): PL functions on graphs
//! routinely violate the "distinct critical values" condition, so we impose
//! a *simulated perturbation* total order — ties broken by vertex index —
//! which is exactly the infinitesimal-offset construction of the paper.
//! Degenerate (multi-way) merges are processed as iterated simple saddles.
//!
//! Persistence pairing applies the elder rule: at a merge, the component
//! whose creator came *earliest in the sweep* survives; every younger
//! creator is paired with the saddle. (The paper's prose — "the component
//! created last … is considered to be destroyed" — specifies the elder
//! rule; we follow it. Line 16 of the printed pseudocode pairs the opposite
//! creator, which contradicts the prose and the worked example of
//! Figure 4; we treat that as a typo.)
//!
//! Vertices with undefined values (NaN) are excluded from the sweep: the PL
//! function is only defined where data exists, and the domain may therefore
//! be disconnected — each connected piece closes its own essential pair.

use crate::error::{Error, Result};
use crate::graph::DomainGraph;
use crate::persistence::{PersistenceDiagram, PersistencePair};
use serde::{Deserialize, Serialize};

/// Which merge tree to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Join tree: super-level sets, leaves are maxima.
    Join,
    /// Split tree: sub-level sets, leaves are minima.
    Split,
}

/// Role of a critical point in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An extremum (maximum in a join tree, minimum in a split tree).
    Leaf,
    /// A merge saddle (destroyer).
    Saddle,
    /// The final vertex of a connected component's sweep (global minimum in
    /// a join tree, global maximum in a split tree).
    Root,
}

/// A node of the merge tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Domain-graph vertex this critical point lives at.
    pub vertex: u32,
    /// Function value at the vertex.
    pub value: f64,
    /// Node role.
    pub kind: NodeKind,
}

/// A join or split tree with persistence pairing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeTree {
    /// Join or split.
    pub direction: Direction,
    /// Critical points, in sweep-discovery order.
    pub nodes: Vec<TreeNode>,
    /// Arcs `(from, to)` as node indices; `from` is the upper node (head of
    /// the merging component), `to` the saddle/root below it.
    pub arcs: Vec<(u32, u32)>,
    /// Persistence pairs (one per leaf).
    pub pairs: Vec<PersistencePair>,
    /// Leaf (extremum) vertices in sweep order: descending function value
    /// for join trees, ascending for split trees.
    pub leaves: Vec<u32>,
}

impl MergeTree {
    /// Computes the join tree of `f` over `graph`.
    pub fn join(graph: &DomainGraph, f: &[f64]) -> Self {
        Self::compute(graph, f, Direction::Join)
    }

    /// Computes the split tree of `f` over `graph`.
    pub fn split(graph: &DomainGraph, f: &[f64]) -> Self {
        Self::compute(graph, f, Direction::Split)
    }

    /// Number of critical points.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The persistence diagram of this tree's extrema.
    pub fn diagram(&self) -> PersistenceDiagram {
        PersistenceDiagram::new(self.pairs.clone())
    }

    /// Persistence values, aligned with [`MergeTree::pairs`].
    pub fn persistence_values(&self) -> Vec<f64> {
        self.pairs
            .iter()
            .map(PersistencePair::persistence)
            .collect()
    }

    /// The persistence pair created by `extremum`, or
    /// [`Error::MissingPair`] when that vertex created no component (it is
    /// not a leaf of this tree).
    pub fn pair_of(&self, extremum: u32) -> Result<PersistencePair> {
        self.pairs
            .iter()
            .find(|p| p.extremum == extremum)
            .copied()
            .ok_or(Error::MissingPair { extremum })
    }

    fn compute(graph: &DomainGraph, f: &[f64], direction: Direction) -> Self {
        let nv = graph.vertex_count();
        assert_eq!(f.len(), nv, "function length must match vertex count");

        // Sweep order with simulated-perturbation tie-breaking: descending
        // (value, index) for join trees, ascending for split trees.
        let mut order: Vec<u32> = (0..nv as u32)
            .filter(|&v| !f[v as usize].is_nan())
            .collect();
        match direction {
            Direction::Join => order
                .sort_unstable_by(|&a, &b| f[b as usize].total_cmp(&f[a as usize]).then(b.cmp(&a))),
            Direction::Split => order
                .sort_unstable_by(|&a, &b| f[a as usize].total_cmp(&f[b as usize]).then(a.cmp(&b))),
        }
        const UNSEEN: u32 = u32::MAX;
        let mut rank = vec![UNSEEN; nv];
        for (pos, &v) in order.iter().enumerate() {
            rank[v as usize] = pos as u32;
        }

        let mut uf = crate::union_find::UnionFind::new(nv);
        // Per-component state, stored at the union-find representative.
        let mut creator = vec![UNSEEN; nv]; // leaf vertex that created the component
        let mut head = vec![UNSEEN; nv]; // node index of last critical point
        let mut lowest = vec![UNSEEN; nv]; // last vertex swept in the component

        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut arcs: Vec<(u32, u32)> = Vec::new();
        let mut pairs: Vec<PersistencePair> = Vec::new();
        let mut leaves: Vec<u32> = Vec::new();
        let mut roots_scratch: Vec<u32> = Vec::new();

        for (pos, &v) in order.iter().enumerate() {
            let pos = pos as u32;
            // Distinct components among already-swept neighbours.
            roots_scratch.clear();
            for &u in graph.neighbors(v as usize) {
                if rank[u as usize] < pos {
                    let r = uf.find(u);
                    if !roots_scratch.contains(&r) {
                        roots_scratch.push(r);
                    }
                }
            }
            match roots_scratch.len() {
                0 => {
                    // v is an extremum: creator of a new component.
                    let node = nodes.len() as u32;
                    nodes.push(TreeNode {
                        vertex: v,
                        value: f[v as usize],
                        kind: NodeKind::Leaf,
                    });
                    leaves.push(v);
                    creator[v as usize] = v;
                    head[v as usize] = node;
                    lowest[v as usize] = v;
                }
                1 => {
                    // Regular vertex: extend the component.
                    let r = roots_scratch[0];
                    let (c, h) = (creator[r as usize], head[r as usize]);
                    let nr = uf.union(r, v);
                    creator[nr as usize] = c;
                    head[nr as usize] = h;
                    lowest[nr as usize] = v;
                }
                _ => {
                    // Saddle: merge all components meeting at v. The
                    // survivor is the eldest creator (smallest sweep rank);
                    // every younger creator is paired with v.
                    let node = nodes.len() as u32;
                    nodes.push(TreeNode {
                        vertex: v,
                        value: f[v as usize],
                        kind: NodeKind::Saddle,
                    });
                    let mut eldest = roots_scratch[0];
                    for &r in &roots_scratch[1..] {
                        if rank[creator[r as usize] as usize]
                            < rank[creator[eldest as usize] as usize]
                        {
                            eldest = r;
                        }
                    }
                    let surviving_creator = creator[eldest as usize];
                    for &r in &roots_scratch {
                        arcs.push((head[r as usize], node));
                        let c = creator[r as usize];
                        if c != surviving_creator {
                            pairs.push(PersistencePair {
                                extremum: c,
                                partner: v,
                                birth: f[c as usize],
                                death: f[v as usize],
                            });
                        }
                    }
                    let mut nr = uf.union(roots_scratch[0], v);
                    for &r in &roots_scratch[1..] {
                        nr = uf.union(nr, r);
                    }
                    creator[nr as usize] = surviving_creator;
                    head[nr as usize] = node;
                    lowest[nr as usize] = v;
                }
            }
        }

        // Close the essential pair of every connected component: its creator
        // (global extremum of the piece) pairs with the piece's final swept
        // vertex.
        let mut seen_roots: Vec<u32> = Vec::new();
        for &v in &order {
            let r = uf.find(v);
            if seen_roots.contains(&r) {
                continue;
            }
            seen_roots.push(r);
            let c = creator[r as usize];
            let low = lowest[r as usize];
            pairs.push(PersistencePair {
                extremum: c,
                partner: low,
                birth: f[c as usize],
                death: f[low as usize],
            });
            if low != c {
                // The final vertex becomes the root node unless it already
                // is one (a saddle that happened to end the sweep).
                let existing = nodes.iter().position(|n| n.vertex == low);
                let root_node = match existing {
                    Some(idx) => idx as u32,
                    None => {
                        let idx = nodes.len() as u32;
                        nodes.push(TreeNode {
                            vertex: low,
                            value: f[low as usize],
                            kind: NodeKind::Root,
                        });
                        idx
                    }
                };
                let h = head[r as usize];
                if h != root_node {
                    arcs.push((h, root_node));
                }
            }
        }

        Self {
            direction,
            nodes,
            arcs,
            pairs,
            leaves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 1-D function of paper Figure 2(a): components are created at v8,
    /// v2, v4, v6 in that order during the descending sweep, and the first
    /// merge happens at v5 (v4's and v6's components), exactly as the
    /// paper's Section 3.1 walkthrough and Figure 4 describe.
    ///
    /// Index:  0    1    2    3    4    5    6    7    8
    /// Vertex: v1   v2   v3   v4   v5   v6   v7   v8   v9
    /// Value:  0.0  5.0  2.5  4.5  3.0  4.0  1.0  6.0  0.5
    fn figure2_function() -> (DomainGraph, Vec<f64>) {
        let g = DomainGraph::time_series(9);
        let f = vec![0.0, 5.0, 2.5, 4.5, 3.0, 4.0, 1.0, 6.0, 0.5];
        (g, f)
    }

    #[test]
    fn figure2_join_tree_structure() {
        let (g, f) = figure2_function();
        let t = MergeTree::join(&g, &f);
        assert_eq!(t.direction, Direction::Join);
        // Maxima: v2, v4, v6, v8 = indices 1, 3, 5, 7.
        assert_eq!(t.leaves.len(), 4);
        // Leaves in descending function order: v8(6.0), v2(5.0), v4(4.5), v6(4.0).
        assert_eq!(t.leaves, vec![7, 1, 3, 5]);
        // Merge saddles: v5 (v4⋃v6), v3 (v2⋃[v4v6]), v7 ([v2v4v6]⋃v8).
        let saddles: Vec<u32> = t
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Saddle)
            .map(|n| n.vertex)
            .collect();
        assert_eq!(saddles.len(), 3);
        assert!(saddles.contains(&2)); // v3
        assert!(saddles.contains(&4)); // v5
        assert!(saddles.contains(&6)); // v7
        let roots: Vec<u32> = t
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Root)
            .map(|n| n.vertex)
            .collect();
        assert_eq!(roots, vec![0]); // v1 = global minimum

        // Nodes: 4 leaves + 3 saddles + 1 root; arcs: 2 per saddle + 1 root arc.
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.arc_count(), 7);
    }

    #[test]
    fn figure2_persistence_pairing() {
        let (g, f) = figure2_function();
        let t = MergeTree::join(&g, &f);
        assert_eq!(t.pairs.len(), 4);
        let pair_of = |extremum: u32| t.pair_of(extremum).expect("leaf has a pair");
        // "The component created last, at v6, is destroyed at v5":
        // π6 = 4.0 - 3.0 = 1.0.
        let p6 = pair_of(5);
        assert_eq!(p6.partner, 4);
        assert!((p6.persistence() - 1.0).abs() < 1e-12);
        // v4's component (younger than v2's) dies at v3: π4 = 4.5 - 2.5 = 2.0.
        let p4 = pair_of(3);
        assert_eq!(p4.partner, 2);
        assert!((p4.persistence() - 2.0).abs() < 1e-12);
        // v2's component dies meeting v8's at v7: π2 = 5.0 - 1.0 = 4.0.
        let p2 = pair_of(1);
        assert_eq!(p2.partner, 6);
        assert!((p2.persistence() - 4.0).abs() < 1e-12);
        // v8 is the global maximum: essential pair closes at the global
        // minimum v1: π8 = 6.0 - 0.0 = 6.0.
        let p8 = pair_of(7);
        assert_eq!(p8.partner, 0);
        assert!((p8.persistence() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_split_tree() {
        let (g, f) = figure2_function();
        let t = MergeTree::split(&g, &f);
        // Minima ascending: v1(0.0), v9(0.5), v7(1.0), v3(2.5), v5(3.0).
        assert_eq!(t.leaves, vec![0, 8, 6, 2, 4]);
        // Global minimum v1 closes the essential pair at the global max v8.
        let essential = t.pairs.iter().find(|p| p.extremum == 0).unwrap();
        assert_eq!(essential.partner, 7);
        assert!((essential.persistence() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_function_has_single_pair() {
        let g = DomainGraph::time_series(10);
        let f: Vec<f64> = (0..10).map(f64::from).collect();
        let t = MergeTree::join(&g, &f);
        assert_eq!(t.leaves, vec![9]);
        assert_eq!(t.pairs.len(), 1);
        assert_eq!(t.pairs[0].extremum, 9);
        assert_eq!(t.pairs[0].partner, 0);
        assert_eq!(t.nodes.len(), 2); // leaf + root
        assert_eq!(t.arcs.len(), 1);
    }

    #[test]
    fn constant_function_ties_broken_by_index() {
        let g = DomainGraph::time_series(5);
        let f = vec![1.0; 5];
        let t = MergeTree::join(&g, &f);
        // Simulated perturbation: exactly one maximum survives.
        assert_eq!(t.leaves.len(), 1);
        assert_eq!(t.pairs.len(), 1);
        assert_eq!(t.pairs[0].persistence(), 0.0);
    }

    #[test]
    fn nan_vertices_split_domain() {
        let g = DomainGraph::time_series(7);
        // Two pieces separated by NaN: [0, 5, 1] NaN [2, 7, 3].
        let f = vec![0.0, 5.0, 1.0, f64::NAN, 2.0, 7.0, 3.0];
        let t = MergeTree::join(&g, &f);
        // One maximum per piece; two essential pairs.
        assert_eq!(t.leaves.len(), 2);
        assert_eq!(t.pairs.len(), 2);
        let ps: Vec<f64> = t.persistence_values();
        // piece 1: 5.0 - 0.0 = 5.0; piece 2: 7.0 - 2.0 = 5.0.
        assert_eq!(ps.iter().filter(|&&p| p == 5.0).count(), 2);
    }

    #[test]
    fn grid_volcano_rim() {
        // A 2-D "volcano": high rim cells around a low centre, on a 3x3
        // grid at one time step. The rim is one connected component, so the
        // join tree sees one dominant maximum; the centre is the minimum.
        let g = DomainGraph::grid(3, 3, 1);
        let f = vec![
            9.0, 8.0, 9.5, //
            8.5, 0.0, 8.2, //
            9.2, 8.1, 9.8, //
        ];
        let t = MergeTree::join(&g, &f);
        // 4-adjacency means the rim corners connect through edge cells: the
        // corners (9.0, 9.5, 9.2, 9.8) are separate local maxima merging
        // through the edges.
        assert_eq!(t.leaves.len(), 4);
        // The essential pair belongs to the global max 9.8.
        let essential = t
            .pairs
            .iter()
            .max_by(|a, b| a.persistence().partial_cmp(&b.persistence()).unwrap());
        assert_eq!(essential.unwrap().extremum, 8);
        assert_eq!(essential.unwrap().partner, 4); // dies at centre 0.0
    }

    #[test]
    fn multiway_merge_is_handled() {
        // Star: centre vertex 0 adjacent to 4 spokes; all spokes higher
        // than centre -> 4 components merge at once at the centre.
        let adj = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let g = DomainGraph::new(&adj, 1);
        let f = vec![0.0, 4.0, 3.0, 2.0, 1.0];
        let t = MergeTree::join(&g, &f);
        assert_eq!(t.leaves.len(), 4);
        assert_eq!(t.pairs.len(), 4);
        // Three younger spokes die at the centre; the eldest (4.0) closes
        // the essential pair also at the centre (it is the lowest vertex).
        for p in &t.pairs {
            assert_eq!(p.partner, 0);
        }
        let persist: Vec<f64> = t.persistence_values();
        assert!(persist.contains(&4.0));
        assert!(persist.contains(&3.0));
        assert!(persist.contains(&2.0));
        assert!(persist.contains(&1.0));
    }

    #[test]
    fn pair_count_equals_leaf_count() {
        // Every leaf gets exactly one pair.
        let g = DomainGraph::grid(5, 5, 3);
        let f: Vec<f64> = (0..g.vertex_count())
            .map(|v| ((v * 2_654_435_761) % 1_000) as f64)
            .collect();
        let join = MergeTree::join(&g, &f);
        assert_eq!(join.pairs.len(), join.leaves.len());
        let split = MergeTree::split(&g, &f);
        assert_eq!(split.pairs.len(), split.leaves.len());
    }

    #[test]
    fn missing_pair_is_a_typed_error_not_a_panic() {
        // Regression: looking up the pair of a non-leaf vertex used to be
        // expressed as a panic; it must be a typed, propagatable error.
        let (g, f) = figure2_function();
        let t = MergeTree::join(&g, &f);
        // v1 (index 0) is the global minimum — a root, not a leaf.
        assert_eq!(
            t.pair_of(0),
            Err(crate::error::Error::MissingPair { extremum: 0 })
        );
        // Out-of-domain vertices are equally well-typed.
        assert!(matches!(
            t.pair_of(999),
            Err(crate::error::Error::MissingPair { extremum: 999 })
        ));
        // The error propagates through the diagram view as well.
        assert!(t.diagram().pair_of(0).is_err());
        assert_eq!(t.diagram().pair_of(7).unwrap().extremum, 7);
    }

    #[test]
    fn empty_function() {
        let g = DomainGraph::time_series(3);
        let f = vec![f64::NAN; 3];
        let t = MergeTree::join(&g, &f);
        assert!(t.nodes.is_empty());
        assert!(t.pairs.is_empty());
    }
}

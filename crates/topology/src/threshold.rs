//! Automatic feature-threshold computation (paper Section 3.3).
//!
//! *Salient* thresholds: the persistence values of the extrema split into a
//! low- and a high-persistence cluster (2-means); θ⁺ is the smallest
//! function value over high-persistence maxima (so every one of them
//! becomes a feature), θ⁻ the largest function value over high-persistence
//! minima.
//!
//! *Extreme* thresholds: over the function values of the salient extrema,
//! the standard box-plot outlier fences — `Q1 − 1.5·IQR` for minima,
//! `Q3 + 1.5·IQR` for maxima.
//!
//! *Seasonal adjustment*: the time range is partitioned into intervals
//! (monthly for hourly data, quarterly for daily, …) and thresholds are
//! computed per interval from the extrema that fall inside it.

use crate::merge_tree::MergeTree;
use polygamy_stats::descriptive::Summary;
use polygamy_stats::kmeans::two_means_1d;
use serde::{Deserialize, Serialize};

/// Serialises possibly-NaN floats as JSON null (serde_json cannot
/// represent NaN); NaN means "no such features exist".
pub mod nan_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    /// NaN → null, finite → number.
    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_nan() {
            s.serialize_none()
        } else {
            s.serialize_some(v)
        }
    }

    /// null → NaN, number → number.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::NAN))
    }
}

/// Feature thresholds for one scalar function (or one seasonal interval).
///
/// NaN means "no such features exist" (e.g. an interval with no extrema).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Super-level threshold θ⁺ for salient positive features.
    #[serde(with = "nan_as_null")]
    pub salient_pos: f64,
    /// Sub-level threshold θ⁻ for salient negative features.
    #[serde(with = "nan_as_null")]
    pub salient_neg: f64,
    /// Super-level threshold for extreme positive features (`Q3 + 1.5 IQR`).
    #[serde(with = "nan_as_null")]
    pub extreme_pos: f64,
    /// Sub-level threshold for extreme negative features (`Q1 − 1.5 IQR`).
    #[serde(with = "nan_as_null")]
    pub extreme_neg: f64,
}

impl Thresholds {
    /// Thresholds that produce no features at all.
    pub fn none() -> Self {
        Self {
            salient_pos: f64::NAN,
            salient_neg: f64::NAN,
            extreme_pos: f64::NAN,
            extreme_neg: f64::NAN,
        }
    }
}

/// Computes thresholds from the join tree (maxima) and split tree (minima)
/// of a function. `join.pairs` must come from [`MergeTree::join`] and
/// `split.pairs` from [`MergeTree::split`].
pub fn compute_thresholds(join: &MergeTree, split: &MergeTree) -> Thresholds {
    let (salient_pos, extreme_pos) = side_thresholds(join, true);
    let (salient_neg, extreme_neg) = side_thresholds(split, false);
    Thresholds {
        salient_pos,
        salient_neg,
        extreme_pos,
        extreme_neg,
    }
}

/// Threshold for one side from a filtered set of pairs.
///
/// Returns `(salient, extreme)`. For maxima (`positive = true`): salient =
/// min f over high-persistence maxima; extreme = upper box-plot fence of
/// salient maxima values. For minima: max f and lower fence.
fn side_thresholds(tree: &MergeTree, positive: bool) -> (f64, f64) {
    side_thresholds_from_pairs(
        tree.pairs.iter().map(|p| (p.birth, p.persistence())),
        positive,
    )
}

/// Core of the threshold rule over `(extremum value, persistence)` pairs.
pub(crate) fn side_thresholds_from_pairs<I>(pairs: I, positive: bool) -> (f64, f64)
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let pairs: Vec<(f64, f64)> = pairs.into_iter().collect();
    if pairs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let persistences: Vec<f64> = pairs.iter().map(|&(_, p)| p).collect();
    // Values of the extrema deemed salient (high-persistence cluster, or
    // all extrema when 2-means has no meaningful split).
    let salient_values: Vec<f64> = match two_means_1d(&persistences) {
        Some(tm) => pairs
            .iter()
            .filter(|&&(_, p)| tm.is_high(p))
            .map(|&(v, _)| v)
            .collect(),
        None => pairs.iter().map(|&(v, _)| v).collect(),
    };
    debug_assert!(!salient_values.is_empty());
    let salient = if positive {
        salient_values.iter().copied().fold(f64::INFINITY, f64::min)
    } else {
        salient_values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let summary = Summary::of(&salient_values);
    let extreme = if positive {
        summary.upper_fence()
    } else {
        summary.lower_fence()
    };
    (salient, extreme)
}

/// Per-seasonal-interval thresholds for one scalar function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalThresholds {
    /// Interval id for each time step (ids need not be contiguous).
    pub interval_of_step: Vec<i64>,
    /// Thresholds per distinct interval, aligned with [`Self::interval_ids`].
    pub interval_ids: Vec<i64>,
    /// Thresholds for each interval id.
    pub per_interval: Vec<Thresholds>,
}

impl SeasonalThresholds {
    /// Expands one side of the thresholds to a per-step array suitable for
    /// the seasonal level-set queries.
    pub fn per_step(&self, pick: impl Fn(&Thresholds) -> f64) -> Vec<f64> {
        self.interval_of_step
            .iter()
            .map(|id| match self.interval_ids.iter().position(|x| x == id) {
                Some(idx) => pick(&self.per_interval[idx]),
                None => f64::NAN,
            })
            .collect()
    }
}

/// Computes per-interval thresholds. `interval_of_step[z]` assigns each
/// time step to a seasonal interval (e.g. months-since-epoch for monthly
/// intervals); extrema are grouped by the interval of their time step.
///
/// `n_regions` recovers the time step from a vertex index.
pub fn seasonal_thresholds(
    join: &MergeTree,
    split: &MergeTree,
    n_regions: usize,
    interval_of_step: &[i64],
) -> SeasonalThresholds {
    let mut interval_ids: Vec<i64> = interval_of_step.to_vec();
    interval_ids.sort_unstable();
    interval_ids.dedup();

    let group = |tree: &MergeTree| -> Vec<Vec<(f64, f64)>> {
        let mut groups = vec![Vec::new(); interval_ids.len()];
        for p in &tree.pairs {
            let step = p.extremum as usize / n_regions;
            let id = interval_of_step[step];
            let idx = interval_ids
                .binary_search(&id)
                .expect("interval id comes from the same array");
            groups[idx].push((p.birth, p.persistence()));
        }
        groups
    };

    let max_groups = group(join);
    let min_groups = group(split);
    let per_interval: Vec<Thresholds> = max_groups
        .into_iter()
        .zip(min_groups)
        .map(|(maxs, mins)| {
            let (salient_pos, extreme_pos) = side_thresholds_from_pairs(maxs, true);
            let (salient_neg, extreme_neg) = side_thresholds_from_pairs(mins, false);
            Thresholds {
                salient_pos,
                salient_neg,
                extreme_pos,
                extreme_neg,
            }
        })
        .collect();
    SeasonalThresholds {
        interval_of_step: interval_of_step.to_vec(),
        interval_ids,
        per_interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DomainGraph;

    /// A noisy series with two prominent peaks and two deep valleys.
    fn bumpy() -> (DomainGraph, Vec<f64>) {
        let mut f = Vec::new();
        for i in 0..200 {
            // Small ripple everywhere.
            let ripple = 0.3 * ((i % 7) as f64 - 3.0) / 3.0;
            let mut v = 10.0 + ripple;
            // Two tall peaks.
            if i == 50 || i == 150 {
                v += 20.0;
            }
            if i == 49 || i == 51 || i == 149 || i == 151 {
                v += 10.0;
            }
            // Two deep valleys.
            if i == 90 || i == 110 {
                v -= 15.0;
            }
            f.push(v);
        }
        (DomainGraph::time_series(200), f)
    }

    #[test]
    fn salient_thresholds_capture_prominent_extrema() {
        let (g, f) = bumpy();
        let join = MergeTree::join(&g, &f);
        let split = MergeTree::split(&g, &f);
        let th = compute_thresholds(&join, &split);
        // Peaks reach ~30; ripple tops out near 10.3. The positive salient
        // threshold must separate the peaks from the ripple.
        assert!(
            th.salient_pos > 11.0 && th.salient_pos <= 30.0,
            "salient_pos = {}",
            th.salient_pos
        );
        // Valleys dip to ~-5. Minima flanking the two tall peaks also get
        // high persistence (the sub-level components they create only merge
        // over the peak tops), so θ⁻ lands at the ripple floor 9.7 — the
        // highest salient-minimum value — and never above it.
        assert!(
            th.salient_neg <= 9.7 && th.salient_neg >= -5.0,
            "salient_neg = {}",
            th.salient_neg
        );
    }

    #[test]
    fn degenerate_single_extremum() {
        let g = DomainGraph::time_series(5);
        let f = vec![0.0, 1.0, 2.0, 1.0, 0.0];
        let join = MergeTree::join(&g, &f);
        let split = MergeTree::split(&g, &f);
        let th = compute_thresholds(&join, &split);
        // Single maximum: it is the only salient feature.
        assert_eq!(th.salient_pos, 2.0);
        // Two minima (both ends at 0.0): both salient.
        assert_eq!(th.salient_neg, 0.0);
    }

    #[test]
    fn empty_tree_gives_nan() {
        let g = DomainGraph::time_series(2);
        let f = vec![f64::NAN, f64::NAN];
        let join = MergeTree::join(&g, &f);
        let split = MergeTree::split(&g, &f);
        let th = compute_thresholds(&join, &split);
        assert!(th.salient_pos.is_nan());
        assert!(th.salient_neg.is_nan());
    }

    #[test]
    fn extreme_fences_bracket_salient_values() {
        let (g, f) = bumpy();
        let join = MergeTree::join(&g, &f);
        let split = MergeTree::split(&g, &f);
        let th = compute_thresholds(&join, &split);
        assert!(th.extreme_pos >= th.salient_pos || th.extreme_pos.is_nan());
        assert!(th.extreme_neg <= th.salient_neg || th.extreme_neg.is_nan());
    }

    #[test]
    fn seasonal_grouping() {
        // Two seasons with very different scales: summer values around 0,
        // winter around 100. A single global threshold would mark all of
        // winter as features; per-interval thresholds must not.
        let mut f = Vec::new();
        for i in 0..100 {
            let ripple = ((i * 13) % 5) as f64 * 0.1;
            f.push(ripple + if i == 50 { 8.0 } else { 0.0 });
        }
        for i in 0..100 {
            let ripple = ((i * 7) % 5) as f64 * 0.1;
            f.push(100.0 + ripple + if i == 50 { 8.0 } else { 0.0 });
        }
        let g = DomainGraph::time_series(200);
        let join = MergeTree::join(&g, &f);
        let split = MergeTree::split(&g, &f);
        let interval_of_step: Vec<i64> = (0..200).map(|z| if z < 100 { 0 } else { 1 }).collect();
        let st = seasonal_thresholds(&join, &split, 1, &interval_of_step);
        assert_eq!(st.interval_ids, vec![0, 1]);
        let pos = st.per_step(|t| t.salient_pos);
        // Season 0 threshold should be near 8; season 1 near 108.
        assert!(pos[0] > 1.0 && pos[0] <= 8.0, "season 0: {}", pos[0]);
        assert!(
            pos[150] > 101.0 && pos[150] <= 108.0,
            "season 1: {}",
            pos[150]
        );
    }

    #[test]
    fn per_step_unknown_interval_is_nan() {
        let st = SeasonalThresholds {
            interval_of_step: vec![0, 0, 9],
            interval_ids: vec![0],
            per_interval: vec![Thresholds {
                salient_pos: 1.0,
                salient_neg: 0.0,
                extreme_pos: 2.0,
                extreme_neg: -1.0,
            }],
        };
        let pos = st.per_step(|t| t.salient_pos);
        assert_eq!(pos[0], 1.0);
        assert!(pos[2].is_nan());
    }
}

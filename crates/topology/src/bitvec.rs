//! Packed bit vectors for feature sets.
//!
//! The paper's relationship-computation job represents each set of features
//! as a bit vector so that intersections reduce to word-level ANDs
//! (Appendix C). This implementation provides exactly the operations the
//! relationship evaluator needs: set/get, population count, intersection
//! counts, and applying a vertex permutation (for the restricted Monte Carlo
//! tests).

use serde::{Deserialize, Serialize};

/// A fixed-length packed bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|self ∧ other|` without materialising the intersection.
    pub fn and_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∨ other|` without materialising the union.
    pub fn or_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// In-place union.
    pub fn or_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn and_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// New vector with the bits moved through `perm`: output bit `perm[i]`
    /// equals input bit `i`. `perm` must be a bijection on `0..len`.
    pub fn permuted(&self, perm: &[u32]) -> BitVec {
        debug_assert_eq!(perm.len(), self.len);
        let mut out = BitVec::zeros(self.len);
        for i in self.iter_ones() {
            out.set(perm[i] as usize);
        }
        out
    }

    /// Extracts bits `[start, end)` as a new vector (bit `start` becomes
    /// bit 0). Used to crop feature sets to the overlap window of two
    /// functions whose time ranges differ.
    pub fn slice(&self, start: usize, end: usize) -> BitVec {
        debug_assert!(start <= end && end <= self.len);
        let mut out = BitVec::zeros(end - start);
        // Word-aligned fast path when start is a multiple of 64.
        if start % 64 == 0 {
            let w0 = start / 64;
            let n_words = out.words.len();
            out.words.copy_from_slice(&self.words[w0..w0 + n_words]);
            // Mask tail bits beyond the new length.
            let tail = out.len % 64;
            if tail != 0 {
                if let Some(last) = out.words.last_mut() {
                    *last &= (1u64 << tail) - 1;
                }
            }
        } else {
            for i in start..end {
                if self.get(i) {
                    out.set(i - start);
                }
            }
        }
        out
    }

    /// Iterates indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Serialized size in bytes (for the space-overhead experiment).
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The packed word representation (little-endian bit order within each
    /// word) — the serialization surface for on-disk persistence.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a vector from its packed words. Returns `None` when
    /// `words` is not exactly `len.div_ceil(64)` words long or a bit beyond
    /// `len` is set (the representation invariant decoders must enforce).
    pub fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        let tail = len % 64;
        if tail != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return None;
                }
            }
        }
        Some(Self { len, words })
    }
}

impl FromIterator<usize> for BitVec {
    /// Collects set-bit indices; the length becomes `max + 1` (or 0).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |m| m + 1);
        let mut bv = BitVec::zeros(len);
        for i in indices {
            bv.set(i);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        bv.set(0);
        bv.set(64);
        bv.set(129);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert!(!bv.get(1));
        assert_eq!(bv.count_ones(), 3);
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn and_or_counts() {
        let mut a = BitVec::zeros(100);
        let mut b = BitVec::zeros(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        // multiples of 6 in [0, 100): 17 values
        assert_eq!(a.and_count(&b), 17);
        assert_eq!(a.or_count(&b), 50 + 34 - 17);
    }

    #[test]
    fn assign_ops() {
        let mut a = BitVec::zeros(10);
        let mut b = BitVec::zeros(10);
        a.set(1);
        b.set(2);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(2));
        a.and_assign(&b);
        assert!(!a.get(1) && a.get(2));
    }

    #[test]
    fn iter_ones_order() {
        let mut bv = BitVec::zeros(200);
        for i in [5usize, 63, 64, 65, 199] {
            bv.set(i);
        }
        let ones: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(ones, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn permuted_moves_bits() {
        let mut bv = BitVec::zeros(4);
        bv.set(0);
        bv.set(2);
        // reverse permutation
        let out = bv.permuted(&[3, 2, 1, 0]);
        assert!(out.get(3) && out.get(1));
        assert_eq!(out.count_ones(), 2);
    }

    #[test]
    fn from_iter_collects() {
        let bv: BitVec = [3usize, 7, 1].into_iter().collect();
        assert_eq!(bv.len(), 8);
        assert_eq!(bv.count_ones(), 3);
        assert!(bv.get(1) && bv.get(3) && bv.get(7));
    }

    #[test]
    fn slice_aligned_and_unaligned() {
        let mut bv = BitVec::zeros(200);
        for i in [0usize, 63, 64, 100, 130, 199] {
            bv.set(i);
        }
        // Aligned slice.
        let s = bv.slice(64, 192);
        assert_eq!(s.len(), 128);
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones, vec![0, 36, 66]);
        // Unaligned slice.
        let s2 = bv.slice(63, 131);
        let ones2: Vec<usize> = s2.iter_ones().collect();
        assert_eq!(ones2, vec![0, 1, 37, 67]);
        // Full slice is identity.
        assert_eq!(bv.slice(0, 200), bv);
        // Empty slice.
        assert_eq!(bv.slice(50, 50).len(), 0);
    }

    #[test]
    fn slice_aligned_masks_tail() {
        let mut bv = BitVec::zeros(128);
        bv.set(64);
        bv.set(100);
        let s = bv.slice(64, 96); // aligned start, tail within word
        assert_eq!(s.count_ones(), 1);
        assert!(s.get(0));
    }

    #[test]
    fn words_roundtrip() {
        let mut bv = BitVec::zeros(130);
        bv.set(0);
        bv.set(64);
        bv.set(129);
        let back = BitVec::from_words(130, bv.words().to_vec()).unwrap();
        assert_eq!(back, bv);
        // Wrong word count rejected.
        assert!(BitVec::from_words(130, vec![0u64; 2]).is_none());
        // Stray bit beyond len rejected.
        assert!(BitVec::from_words(130, vec![0, 0, 1u64 << 2]).is_none());
        // Tail bit exactly at len - 1 accepted.
        assert!(BitVec::from_words(130, vec![0, 0, 1u64 << 1]).is_some());
    }

    #[test]
    fn empty() {
        let bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.iter_ones().count(), 0);
    }
}

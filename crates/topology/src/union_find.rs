//! Union-find (disjoint set union) with union by rank and path compression.
//!
//! Merge-tree construction performs `O(N)` union/find operations over the
//! sweep (paper Appendix B.2), giving the `N α(N)` term of its complexity.

/// Disjoint-set-union over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path compression (iterative
    /// two-pass to avoid recursion on long chains).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        hi
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_chains() {
        let mut uf = UnionFind::new(10);
        for i in 0..9u32 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, 9));
        let root = uf.find(0);
        for i in 0..10 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn long_path_compression() {
        // A pathological chain should still resolve quickly and correctly.
        let n = 100_000;
        let mut uf = UnionFind::new(n);
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, n as u32 - 1));
    }
}

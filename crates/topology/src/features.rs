//! Feature sets: positive/negative, salient/extreme (paper Definitions 6–7).
//!
//! A *positive feature* is a spatio-temporal point in the super-level set at
//! θ⁺; a *negative feature* is a point in the sub-level set at θ⁻. The
//! framework precomputes both the salient and the extreme feature sets per
//! scalar function during indexing and stores them as bit vectors.

use crate::bitvec::BitVec;
use crate::graph::DomainGraph;
use crate::level_set::{sub_level_set_seasonal, super_level_set_seasonal};
use crate::merge_tree::MergeTree;
use crate::threshold::SeasonalThresholds;
use serde::{Deserialize, Serialize};

/// Salient vs extreme features — relationships are evaluated separately for
/// each class (paper Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureClass {
    /// Features beyond the persistence-derived salient thresholds.
    Salient,
    /// Outliers among salient features (box-plot fences).
    Extreme,
}

impl FeatureClass {
    /// Both classes.
    pub const ALL: [FeatureClass; 2] = [FeatureClass::Salient, FeatureClass::Extreme];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureClass::Salient => "salient",
            FeatureClass::Extreme => "extreme",
        }
    }
}

/// Positive and negative features of one scalar function at one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Super-level-set membership (Definition 6).
    pub pos: BitVec,
    /// Sub-level-set membership (Definition 7).
    pub neg: BitVec,
}

impl FeatureSet {
    /// An empty feature set over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            pos: BitVec::zeros(n),
            neg: BitVec::zeros(n),
        }
    }

    /// `Σᵢ` — all feature points (positive or negative). Positive and
    /// negative sets are disjoint whenever θ⁻ < θ⁺, which the threshold
    /// construction guarantees for non-degenerate functions.
    pub fn all(&self) -> BitVec {
        let mut u = self.pos.clone();
        u.or_assign(&self.neg);
        u
    }

    /// Number of feature points.
    pub fn count(&self) -> usize {
        self.pos.or_count(&self.neg)
    }

    /// Applies a domain permutation to both sides (for restricted Monte
    /// Carlo randomisation).
    pub fn permuted(&self, perm: &[u32]) -> FeatureSet {
        FeatureSet {
            pos: self.pos.permuted(perm),
            neg: self.neg.permuted(perm),
        }
    }

    /// Crops both sides to the vertex range `[start, end)` — used to align
    /// two functions on their overlapping time window (time-major layout
    /// makes a step range a contiguous vertex range).
    pub fn slice(&self, start: usize, end: usize) -> FeatureSet {
        FeatureSet {
            pos: self.pos.slice(start, end),
            neg: self.neg.slice(start, end),
        }
    }

    /// Serialized size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.pos.approx_bytes() + self.neg.approx_bytes()
    }
}

/// Salient and extreme feature sets for one scalar function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSets {
    /// Features beyond the salient thresholds.
    pub salient: FeatureSet,
    /// Outlier features beyond the box-plot fences.
    pub extreme: FeatureSet,
}

impl FeatureSets {
    /// Extracts both feature classes using per-seasonal-interval thresholds
    /// via the merge-tree index (paper Sections 3.2–3.3).
    pub fn compute(
        graph: &DomainGraph,
        f: &[f64],
        join: &MergeTree,
        split: &MergeTree,
        thresholds: &SeasonalThresholds,
    ) -> Self {
        let salient_pos = thresholds.per_step(|t| t.salient_pos);
        let salient_neg = thresholds.per_step(|t| t.salient_neg);
        let extreme_pos = thresholds.per_step(|t| t.extreme_pos);
        let extreme_neg = thresholds.per_step(|t| t.extreme_neg);
        Self {
            salient: FeatureSet {
                pos: super_level_set_seasonal(graph, f, join, &salient_pos),
                neg: sub_level_set_seasonal(graph, f, split, &salient_neg),
            },
            extreme: FeatureSet {
                pos: super_level_set_seasonal(graph, f, join, &extreme_pos),
                neg: sub_level_set_seasonal(graph, f, split, &extreme_neg),
            },
        }
    }

    /// Picks a class.
    pub fn class(&self, class: FeatureClass) -> &FeatureSet {
        match class {
            FeatureClass::Salient => &self.salient,
            FeatureClass::Extreme => &self.extreme,
        }
    }

    /// Serialized size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.salient.approx_bytes() + self.extreme.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::seasonal_thresholds;

    /// Flat series with two tall peaks and one deep valley.
    fn spiky() -> (DomainGraph, Vec<f64>) {
        let mut f = vec![0.0; 120];
        for (i, v) in f.iter_mut().enumerate() {
            *v = 0.2 * ((i % 5) as f64 - 2.0);
        }
        f[30] = 12.0;
        f[31] = 9.0;
        f[80] = 14.0;
        f[60] = -11.0;
        (DomainGraph::time_series(120), f)
    }

    fn feature_sets(g: &DomainGraph, f: &[f64]) -> FeatureSets {
        let join = MergeTree::join(g, f);
        let split = MergeTree::split(g, f);
        let interval: Vec<i64> = vec![0; g.n_steps];
        let th = seasonal_thresholds(&join, &split, g.n_regions, &interval);
        FeatureSets::compute(g, f, &join, &split, &th)
    }

    #[test]
    fn salient_features_cover_spikes() {
        let (g, f) = spiky();
        let fs = feature_sets(&g, &f);
        assert!(
            fs.salient.pos.get(30),
            "peak at 30 must be a positive feature"
        );
        assert!(
            fs.salient.pos.get(80),
            "peak at 80 must be a positive feature"
        );
        assert!(
            fs.salient.neg.get(60),
            "valley at 60 must be a negative feature"
        );
        // The flat ripple must not be salient.
        assert!(!fs.salient.pos.get(0));
        assert!(!fs.salient.neg.get(1));
    }

    #[test]
    fn pos_neg_disjoint() {
        let (g, f) = spiky();
        let fs = feature_sets(&g, &f);
        assert_eq!(fs.salient.pos.and_count(&fs.salient.neg), 0);
        assert_eq!(fs.extreme.pos.and_count(&fs.extreme.neg), 0);
    }

    #[test]
    fn extreme_subset_of_nothing_looser_than_salient() {
        // Extreme thresholds are at least as strict as salient ones, so the
        // extreme set is a subset of the salient set.
        let (g, f) = spiky();
        let fs = feature_sets(&g, &f);
        for v in fs.extreme.pos.iter_ones() {
            assert!(fs.salient.pos.get(v), "extreme pos {v} not salient");
        }
        for v in fs.extreme.neg.iter_ones() {
            assert!(fs.salient.neg.get(v), "extreme neg {v} not salient");
        }
    }

    #[test]
    fn all_and_count() {
        let (g, f) = spiky();
        let fs = feature_sets(&g, &f);
        let all = fs.salient.all();
        assert_eq!(all.count_ones(), fs.salient.count());
        assert_eq!(
            fs.salient.count(),
            fs.salient.pos.count_ones() + fs.salient.neg.count_ones()
        );
    }

    #[test]
    fn permuted_preserves_counts() {
        let (g, f) = spiky();
        let fs = feature_sets(&g, &f);
        let n = g.vertex_count();
        let perm: Vec<u32> = (0..n as u32).map(|v| (v + 17) % n as u32).collect();
        let p = fs.salient.permuted(&perm);
        assert_eq!(p.pos.count_ones(), fs.salient.pos.count_ones());
        assert_eq!(p.neg.count_ones(), fs.salient.neg.count_ones());
        // Peak at 30 moved to 47.
        assert!(p.pos.get(47));
    }

    #[test]
    fn class_accessor() {
        let (g, f) = spiky();
        let fs = feature_sets(&g, &f);
        assert_eq!(fs.class(FeatureClass::Salient), &fs.salient);
        assert_eq!(fs.class(FeatureClass::Extreme), &fs.extreme);
        assert_eq!(FeatureClass::Salient.label(), "salient");
    }
}

//! Typed errors for the topology substrate.
//!
//! Persistence pairing guarantees one pair per leaf, but callers that look
//! up a pair by extremum vertex (threshold derivation, diagnostics, index
//! persistence) can ask for a vertex that is not a leaf — e.g. after a
//! corrupted index file reconstructed a tree with mismatched pairing. That
//! lookup failure is an error to propagate, never a panic.

use std::fmt;

/// Errors raised by the topology layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// No persistence pair exists for the requested extremum vertex.
    MissingPair {
        /// The vertex whose pair was requested.
        extremum: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MissingPair { extremum } => {
                write!(f, "no persistence pair for extremum vertex {extremum}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_vertex() {
        let e = Error::MissingPair { extremum: 42 };
        assert!(e.to_string().contains("42"));
    }
}

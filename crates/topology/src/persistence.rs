//! Topological persistence pairs and diagrams (paper Section 3.3, Figure 5).
//!
//! Merge-tree construction pairs every component *creator* (an extremum)
//! with the *destroyer* (a saddle) at which its super-/sub-level-set
//! component merges into an older one. The pair's persistence
//! `|f(creator) − f(destroyer)|` is the lifetime of the feature: the height
//! of a peak or the depth of a valley.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// One creator–destroyer pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersistencePair {
    /// Vertex of the extremum that created the component.
    pub extremum: u32,
    /// Vertex of the saddle that destroyed it (for the most persistent
    /// component of each connected piece of the domain, the opposite global
    /// extremum — the conventional closing of the essential pair).
    pub partner: u32,
    /// Function value at creation, `f(extremum)`.
    pub birth: f64,
    /// Function value at destruction, `f(partner)`.
    pub death: f64,
}

impl PersistencePair {
    /// The lifetime `|birth − death|` of the feature.
    pub fn persistence(&self) -> f64 {
        (self.birth - self.death).abs()
    }
}

/// A persistence diagram: the multiset of (birth, death) points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistenceDiagram {
    /// The pairs, in no particular order.
    pub pairs: Vec<PersistencePair>,
}

impl PersistenceDiagram {
    /// Builds a diagram from merge-tree pairs.
    pub fn new(pairs: Vec<PersistencePair>) -> Self {
        Self { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the diagram is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// `(birth, death)` points — the diagram of paper Figure 5(a).
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.pairs.iter().map(|p| (p.birth, p.death)).collect()
    }

    /// Persistence values — the scatter of paper Figure 5(b).
    pub fn persistences(&self) -> Vec<f64> {
        self.pairs
            .iter()
            .map(PersistencePair::persistence)
            .collect()
    }

    /// Maximum persistence in the diagram (0 when empty).
    pub fn max_persistence(&self) -> f64 {
        self.persistences().into_iter().fold(0.0, f64::max)
    }

    /// The pair created by `extremum`, or [`Error::MissingPair`] when the
    /// diagram holds no pair for that vertex.
    pub fn pair_of(&self, extremum: u32) -> Result<PersistencePair> {
        self.pairs
            .iter()
            .find(|p| p.extremum == extremum)
            .copied()
            .ok_or(Error::MissingPair { extremum })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_is_absolute() {
        let p = PersistencePair {
            extremum: 0,
            partner: 1,
            birth: 2.0,
            death: 5.0,
        };
        assert_eq!(p.persistence(), 3.0);
        let q = PersistencePair {
            extremum: 0,
            partner: 1,
            birth: 5.0,
            death: 2.0,
        };
        assert_eq!(q.persistence(), 3.0);
    }

    #[test]
    fn diagram_accessors() {
        let d = PersistenceDiagram::new(vec![
            PersistencePair {
                extremum: 0,
                partner: 1,
                birth: 4.0,
                death: 1.0,
            },
            PersistencePair {
                extremum: 2,
                partner: 3,
                birth: 2.0,
                death: 1.5,
            },
        ]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.points(), vec![(4.0, 1.0), (2.0, 1.5)]);
        assert_eq!(d.persistences(), vec![3.0, 0.5]);
        assert_eq!(d.max_persistence(), 3.0);
        assert!(!d.is_empty());
    }
}

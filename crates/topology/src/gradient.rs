//! Gradient-based features (paper Section 8, "Types of Features").
//!
//! Single-threshold level-set features miss unusual patterns whose absolute
//! value stays inside the normal band — e.g. a sudden surge of taxi trips
//! in a normally calm area. The paper proposes deriving a *gradient*
//! function over space and time: high-gradient vertices mark sudden
//! increases/decreases and can then be fed through the very same merge-tree
//! → persistence-threshold → feature pipeline.
//!
//! On the PL domain graph the discrete gradient magnitude at a vertex is
//! the largest absolute difference to any defined neighbour; we also expose
//! the signed forward temporal derivative, which preserves the
//! rising/falling distinction the positive/negative feature split needs.

use crate::graph::DomainGraph;

/// Discrete gradient magnitude: `max_{u ∈ N(v)} |f(u) − f(v)|`.
///
/// Vertices with undefined values (or with no defined neighbours) map to
/// NaN, so the output is a valid scalar function for the merge-tree
/// pipeline.
pub fn gradient_magnitude(graph: &DomainGraph, f: &[f64]) -> Vec<f64> {
    debug_assert_eq!(f.len(), graph.vertex_count());
    (0..f.len())
        .map(|v| {
            if f[v].is_nan() {
                return f64::NAN;
            }
            let mut best = f64::NAN;
            for &u in graph.neighbors(v) {
                let fu = f[u as usize];
                if fu.is_nan() {
                    continue;
                }
                let d = (fu - f[v]).abs();
                if best.is_nan() || d > best {
                    best = d;
                }
            }
            best
        })
        .collect()
}

/// Signed forward temporal derivative: `f(x, z+1) − f(x, z)`; the final
/// step and undefined points are NaN.
///
/// Positive features of this function are sudden *increases*, negative
/// features sudden *decreases* — a drop-in replacement scalar function for
/// the event-style analyses of Section 8.
pub fn temporal_derivative(graph: &DomainGraph, f: &[f64]) -> Vec<f64> {
    debug_assert_eq!(f.len(), graph.vertex_count());
    let n = graph.n_regions;
    (0..f.len())
        .map(|v| {
            let (_, z) = graph.region_step(v);
            if z + 1 >= graph.n_steps {
                return f64::NAN;
            }
            let next = f[v + n];
            if f[v].is_nan() || next.is_nan() {
                f64::NAN
            } else {
                next - f[v]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSets;
    use crate::merge_tree::MergeTree;
    use crate::threshold::seasonal_thresholds;

    #[test]
    fn magnitude_on_a_step_function() {
        let g = DomainGraph::time_series(6);
        let f = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let grad = gradient_magnitude(&g, &f);
        assert_eq!(grad, vec![0.0, 0.0, 4.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn magnitude_skips_nan() {
        let g = DomainGraph::time_series(4);
        let f = vec![1.0, f64::NAN, 3.0, 3.5];
        let grad = gradient_magnitude(&g, &f);
        assert!(grad[0].is_nan(), "no defined neighbour");
        assert!(grad[1].is_nan(), "undefined vertex");
        assert_eq!(grad[2], 0.5);
    }

    #[test]
    fn temporal_derivative_signs() {
        let g = DomainGraph::time_series(5);
        let f = vec![0.0, 2.0, 1.0, 1.0, 4.0];
        let d = temporal_derivative(&g, &f);
        assert_eq!(d[0], 2.0);
        assert_eq!(d[1], -1.0);
        assert_eq!(d[2], 0.0);
        assert_eq!(d[3], 3.0);
        assert!(d[4].is_nan(), "last step has no successor");
    }

    #[test]
    fn derivative_respects_regions() {
        // 2 regions × 3 steps: derivative is within-region across steps.
        let g = DomainGraph::new(&[vec![1], vec![0]], 3);
        let f = vec![
            0.0, 10.0, // step 0
            1.0, 20.0, // step 1
            3.0, 15.0, // step 2
        ];
        let d = temporal_derivative(&g, &f);
        assert_eq!(d[0], 1.0);
        assert_eq!(d[1], 10.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], -5.0);
        assert!(d[4].is_nan() && d[5].is_nan());
    }

    /// The Section 8 motivation end-to-end: a surge inside the normal value
    /// band is invisible to level-set features of `f` but becomes a salient
    /// feature of the gradient function.
    #[test]
    fn surge_within_normal_band_found_via_gradient() {
        let n = 400;
        let g = DomainGraph::time_series(n);
        // Baseline oscillates between 0 and 100 (daily rhythm); the surge
        // at t=200 jumps from a calm 10 to 60 — well inside [0, 100].
        let mut f: Vec<f64> = (0..n)
            .map(|i| 50.0 + 50.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        f[200] = 10.0;
        f[201] = 60.0; // sudden +50 jump in one step
        f[202] = 12.0;

        let compute_features = |values: &[f64]| {
            let join = MergeTree::join(&g, values);
            let split = MergeTree::split(&g, values);
            let th = seasonal_thresholds(&join, &split, 1, &vec![0i64; n]);
            FeatureSets::compute(&g, values, &join, &split, &th)
        };
        // Level-set features of f do not flag the surge (60 < the ~100
        // peaks that define θ+).
        let direct = compute_features(&f);
        assert!(
            !direct.salient.pos.get(201),
            "surge should be invisible to single-threshold features"
        );
        // Gradient features do: the jump dwarfs the smooth rhythm's slope.
        let grad = gradient_magnitude(&g, &f);
        let gfeat = compute_features(&grad);
        assert!(
            gfeat.salient.pos.get(201) || gfeat.salient.pos.get(200),
            "surge must be a salient gradient feature"
        );
    }
}

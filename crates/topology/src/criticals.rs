//! Local critical-point classification for PL functions on graphs.
//!
//! On a graph (1-complex), the link of a vertex is its neighbour set, so
//! extrema admit a purely local test (paper Definition 4 extended with the
//! simulated-perturbation total order of Appendix B.1): a vertex is a
//! maximum when every defined neighbour is smaller under the total order,
//! and a minimum when every defined neighbour is larger. Saddles, by
//! contrast, depend on global component structure and are identified during
//! the merge-tree sweep ([`crate::merge_tree`]); this module handles only
//! the local classification used for queries and validation.

use crate::graph::DomainGraph;
use serde::{Deserialize, Serialize};

/// Local critical-point classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriticalKind {
    /// All defined neighbours are smaller (upper link empty).
    Maximum,
    /// All defined neighbours are larger (lower link empty).
    Minimum,
}

/// Total order with simulated perturbation: `(f, index)` lexicographic.
#[inline]
pub fn perturbed_less(f: &[f64], a: u32, b: u32) -> bool {
    let (fa, fb) = (f[a as usize], f[b as usize]);
    fa < fb || (fa == fb && a < b)
}

/// Classifies the local extrema of `f` on `graph`. Vertices with undefined
/// (NaN) values are skipped; an isolated defined vertex counts as both a
/// maximum and a minimum and is reported as `Maximum` first, `Minimum`
/// second.
pub fn classify_extrema(graph: &DomainGraph, f: &[f64]) -> Vec<(u32, CriticalKind)> {
    let mut out = Vec::new();
    for v in 0..graph.vertex_count() as u32 {
        if f[v as usize].is_nan() {
            continue;
        }
        let mut has_upper = false;
        let mut has_lower = false;
        for &u in graph.neighbors(v as usize) {
            if f[u as usize].is_nan() {
                continue;
            }
            if perturbed_less(f, v, u) {
                has_upper = true;
            } else {
                has_lower = true;
            }
        }
        if !has_upper {
            out.push((v, CriticalKind::Maximum));
        }
        if !has_lower {
            out.push((v, CriticalKind::Minimum));
        }
    }
    out
}

/// Convenience: just the maxima vertices.
pub fn maxima(graph: &DomainGraph, f: &[f64]) -> Vec<u32> {
    classify_extrema(graph, f)
        .into_iter()
        .filter(|(_, k)| *k == CriticalKind::Maximum)
        .map(|(v, _)| v)
        .collect()
}

/// Convenience: just the minima vertices.
pub fn minima(graph: &DomainGraph, f: &[f64]) -> Vec<u32> {
    classify_extrema(graph, f)
        .into_iter()
        .filter(|(_, k)| *k == CriticalKind::Minimum)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge_tree::MergeTree;

    #[test]
    fn chain_extrema() {
        let g = DomainGraph::time_series(9);
        let f = vec![0.0, 5.0, 2.5, 4.5, 3.0, 4.0, 1.0, 6.0, 0.5];
        assert_eq!(maxima(&g, &f), vec![1, 3, 5, 7]);
        assert_eq!(minima(&g, &f), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn plateau_resolved_by_perturbation() {
        let g = DomainGraph::time_series(4);
        let f = vec![1.0, 2.0, 2.0, 1.0];
        // The plateau 2.0, 2.0: index tie-break makes vertex 2 the maximum.
        assert_eq!(maxima(&g, &f), vec![2]);
    }

    #[test]
    fn local_maxima_match_join_tree_leaves() {
        let g = DomainGraph::grid(6, 6, 4);
        let f: Vec<f64> = (0..g.vertex_count())
            .map(|v| (((v * 2_654_435_761) % 10_007) as f64).sin())
            .collect();
        let mut local = maxima(&g, &f);
        let mut leaves = MergeTree::join(&g, &f).leaves;
        local.sort_unstable();
        leaves.sort_unstable();
        assert_eq!(local, leaves);
    }

    #[test]
    fn local_minima_match_split_tree_leaves() {
        let g = DomainGraph::grid(5, 7, 3);
        let f: Vec<f64> = (0..g.vertex_count())
            .map(|v| (((v * 40_503) % 9_973) as f64).cos())
            .collect();
        let mut local = minima(&g, &f);
        let mut leaves = MergeTree::split(&g, &f).leaves;
        local.sort_unstable();
        leaves.sort_unstable();
        assert_eq!(local, leaves);
    }

    #[test]
    fn nan_neighbors_ignored() {
        let g = DomainGraph::time_series(3);
        let f = vec![1.0, f64::NAN, 0.5];
        let all = classify_extrema(&g, &f);
        // Both defined vertices are isolated: each is max and min.
        assert_eq!(all.len(), 4);
    }
}

//! The spatio-temporal domain graph (paper Section 3.1).
//!
//! Vertex `v(x, z)` represents spatial region `x` at time step `z`
//! (`|V| = n × m`). Edges split into spatial edges `ES` (adjacent regions
//! within a step) and temporal edges `ET` (same region across consecutive
//! steps). A piecewise-linear function on this graph represents the scalar
//! function regardless of the dimension of the underlying data — the single
//! representation the paper relies on for supporting all resolutions.
//!
//! Stored in compressed-sparse-row form: adjacency for vertex `v` lives in
//! `edges[offsets[v]..offsets[v+1]]`.

use serde::{Deserialize, Serialize};

/// CSR graph over the spatio-temporal domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainGraph {
    /// Number of spatial regions `n`.
    pub n_regions: usize,
    /// Number of time steps `m`.
    pub n_steps: usize,
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl DomainGraph {
    /// Builds the domain graph from a spatial adjacency relation (region →
    /// sorted neighbour regions) replicated over `n_steps` time steps with
    /// temporal edges linking consecutive steps.
    pub fn new(spatial_adjacency: &[Vec<u32>], n_steps: usize) -> Self {
        let n = spatial_adjacency.len();
        let nv = n * n_steps;
        let mut offsets = Vec::with_capacity(nv + 1);
        offsets.push(0u32);
        // Degree per vertex: spatial degree + temporal degree (1 at the two
        // boundary steps, 2 inside; 0 when there is a single step).
        let mut total = 0u32;
        for z in 0..n_steps {
            let tdeg = if n_steps <= 1 {
                0
            } else if z == 0 || z == n_steps - 1 {
                1
            } else {
                2
            };
            for adj in spatial_adjacency {
                total += (adj.len() + tdeg) as u32;
                offsets.push(total);
            }
        }
        let mut edges = vec![0u32; total as usize];
        let mut cursor: Vec<u32> = offsets[..nv].to_vec();
        let mut push = |cursor: &mut [u32], from: usize, to: u32| {
            edges[cursor[from] as usize] = to;
            cursor[from] += 1;
        };
        for z in 0..n_steps {
            let base = z * n;
            for (x, adj) in spatial_adjacency.iter().enumerate() {
                let v = base + x;
                // Temporal predecessor first, then spatial, then successor —
                // keeps each adjacency list sorted because predecessors have
                // smaller indices and successors larger.
                if z > 0 {
                    push(&mut cursor, v, (v - n) as u32);
                }
                for &y in adj {
                    push(&mut cursor, v, (base + y as usize) as u32);
                }
                if z + 1 < n_steps {
                    push(&mut cursor, v, (v + n) as u32);
                }
            }
        }
        Self {
            n_regions: n,
            n_steps,
            offsets,
            edges,
        }
    }

    /// A pure time-series domain (one region, `m` steps) — the 1-D case.
    pub fn time_series(n_steps: usize) -> Self {
        Self::new(&[vec![]], n_steps)
    }

    /// An `nx × ny` grid domain (4-adjacency) over `n_steps` steps — used by
    /// synthetic workloads and the high-resolution grid of paper Figure 3.
    pub fn grid(nx: usize, ny: usize, n_steps: usize) -> Self {
        let mut adj = vec![Vec::new(); nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    adj[i].push((i + 1) as u32);
                    adj[i + 1].push(i as u32);
                }
                if y + 1 < ny {
                    adj[i].push((i + nx) as u32);
                    adj[i + nx].push(i as u32);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        Self::new(&adj, n_steps)
    }

    /// Number of vertices `n × m`.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Neighbours of vertex `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Vertex index of `(region, step)`.
    #[inline]
    pub fn vertex(&self, region: usize, step: usize) -> usize {
        debug_assert!(region < self.n_regions && step < self.n_steps);
        step * self.n_regions + region
    }

    /// `(region, step)` of a vertex index.
    #[inline]
    pub fn region_step(&self, v: usize) -> (usize, usize) {
        (v % self.n_regions, v / self.n_regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_chain() {
        let g = DomainGraph::time_series(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(4), &[3]);
    }

    #[test]
    fn single_step_no_temporal_edges() {
        let g = DomainGraph::new(&[vec![1], vec![0]], 1);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn spatial_times_temporal() {
        // Two adjacent regions over three steps.
        let g = DomainGraph::new(&[vec![1], vec![0]], 3);
        assert_eq!(g.vertex_count(), 6);
        // Per step: 1 spatial edge ×3; temporal: 2 regions × 2 transitions.
        assert_eq!(g.edge_count(), 3 + 4);
        // Middle vertex (region 0, step 1) = index 2.
        assert_eq!(g.neighbors(2), &[0, 3, 4]);
        assert_eq!(g.region_step(2), (0, 1));
        assert_eq!(g.vertex(0, 1), 2);
    }

    #[test]
    fn grid_structure() {
        let g = DomainGraph::grid(3, 2, 2);
        assert_eq!(g.vertex_count(), 12);
        // Grid edges: horizontal 2*2 + vertical 3 = 7 per step, ×2 steps;
        // temporal: 6 regions × 1 transition.
        assert_eq!(g.edge_count(), 14 + 6);
        // Corner (0,0) step 0: right neighbor 1, up neighbor 3, next step 6.
        assert_eq!(g.neighbors(0), &[1, 3, 6]);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = DomainGraph::grid(4, 4, 3);
        for v in 0..g.vertex_count() {
            let nbrs = g.neighbors(v);
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted.as_slice(), nbrs, "vertex {v} unsorted");
            for &u in nbrs {
                assert!(
                    g.neighbors(u as usize).contains(&(v as u32)),
                    "edge {v}->{u} not symmetric"
                );
            }
        }
    }

    #[test]
    fn planarity_bound() {
        // |E| = O(N): the construction never exceeds spatial planar bound
        // (3n - 6 per step) plus n temporal edges per transition.
        let g = DomainGraph::grid(10, 10, 10);
        let n = g.vertex_count();
        assert!(g.edge_count() < 4 * n);
    }
}

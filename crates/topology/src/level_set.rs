//! Output-sensitive level-set queries (paper Section 3.2).
//!
//! Given a merge tree, the super-level set `f⁻¹([θ, ∞))` is extracted by a
//! descending traversal that starts at the maxima with `f ≥ θ` (the join
//! tree's leaves, stored in sweep order so the valid prefix is found in
//! `O(|V⁺|)`) and floods across neighbours still above the threshold. Only
//! vertices belonging to the answer are touched, so query time is linear in
//! the output size. Sub-level sets are symmetric via the split tree.
//!
//! Seasonal variants take a per-time-step threshold (paper Section 3.3,
//! "Adjusting for Seasonal Variations"): each vertex is compared against
//! the threshold of the seasonal interval its time step falls in.

use crate::bitvec::BitVec;
use crate::graph::DomainGraph;
use crate::merge_tree::MergeTree;

/// Extracts the super-level set at `theta` as a bit vector over vertices.
///
/// `tree` must be the join tree of `f`.
pub fn super_level_set(graph: &DomainGraph, f: &[f64], tree: &MergeTree, theta: f64) -> BitVec {
    per_step_traverse(graph, f, &tree.leaves, &|v| f[v] >= theta)
}

/// Extracts the sub-level set at `theta`. `tree` must be the split tree.
pub fn sub_level_set(graph: &DomainGraph, f: &[f64], tree: &MergeTree, theta: f64) -> BitVec {
    per_step_traverse(graph, f, &tree.leaves, &|v| f[v] <= theta)
}

/// Super-level set with a per-time-step threshold: vertex `(x, z)` is in
/// the set iff `f(x, z) >= theta_of_step[z]` (NaN threshold = no features
/// in that step).
///
/// With per-interval thresholds a feature component adjacent to an interval
/// boundary need not contain a local maximum of `f` (its highest vertex can
/// have a larger neighbour that fails the *other* interval's threshold), so
/// the traversal seeds from the tree leaves *and* from member vertices at
/// interval-boundary steps. The extra seeding costs `O(n_regions ×
/// boundaries)`, far below the domain size, preserving output sensitivity
/// in practice.
pub fn super_level_set_seasonal(
    graph: &DomainGraph,
    f: &[f64],
    tree: &MergeTree,
    theta_of_step: &[f64],
) -> BitVec {
    debug_assert_eq!(theta_of_step.len(), graph.n_steps);
    let n = graph.n_regions;
    let member = |v: usize| {
        let theta = theta_of_step[v / n];
        !theta.is_nan() && f[v] >= theta
    };
    let seeds = seasonal_seeds(graph, theta_of_step, &tree.leaves, &member);
    per_step_traverse(graph, f, &seeds, &member)
}

/// Sub-level set with a per-time-step threshold.
pub fn sub_level_set_seasonal(
    graph: &DomainGraph,
    f: &[f64],
    tree: &MergeTree,
    theta_of_step: &[f64],
) -> BitVec {
    debug_assert_eq!(theta_of_step.len(), graph.n_steps);
    let n = graph.n_regions;
    let member = |v: usize| {
        let theta = theta_of_step[v / n];
        !theta.is_nan() && f[v] <= theta
    };
    let seeds = seasonal_seeds(graph, theta_of_step, &tree.leaves, &member);
    per_step_traverse(graph, f, &seeds, &member)
}

/// Tree leaves plus member vertices at steps where the threshold changes.
fn seasonal_seeds(
    graph: &DomainGraph,
    theta_of_step: &[f64],
    leaves: &[u32],
    member: &dyn Fn(usize) -> bool,
) -> Vec<u32> {
    let n = graph.n_regions;
    let mut seeds = leaves.to_vec();
    for z in 1..graph.n_steps {
        if theta_of_step[z].to_bits() != theta_of_step[z - 1].to_bits() {
            for x in 0..n {
                for step in [z - 1, z] {
                    let v = step * n + x;
                    if member(v) {
                        seeds.push(v as u32);
                    }
                }
            }
        }
    }
    seeds
}

/// Flood traversal from the extrema that satisfy the membership predicate.
///
/// Every connected component of the answer contains at least one extremum
/// of the appropriate kind (its own max/min), so seeding from the tree's
/// leaves covers the full level set while touching only member vertices —
/// the output-sensitive property the paper's index provides.
fn per_step_traverse(
    graph: &DomainGraph,
    f: &[f64],
    leaves: &[u32],
    member: &dyn Fn(usize) -> bool,
) -> BitVec {
    let mut out = BitVec::zeros(graph.vertex_count());
    let mut stack: Vec<u32> = Vec::new();
    for &leaf in leaves {
        let lv = leaf as usize;
        if f[lv].is_nan() || !member(lv) || out.get(lv) {
            continue;
        }
        out.set(lv);
        stack.push(leaf);
        while let Some(v) = stack.pop() {
            for &u in graph.neighbors(v as usize) {
                let ui = u as usize;
                if !out.get(ui) && !f[ui].is_nan() && member(ui) {
                    out.set(ui);
                    stack.push(u);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge_tree::MergeTree;

    fn figure2() -> (DomainGraph, Vec<f64>) {
        let g = DomainGraph::time_series(9);
        let f = vec![0.0, 5.0, 2.5, 4.5, 3.0, 4.0, 1.0, 6.0, 0.5];
        (g, f)
    }

    #[test]
    fn super_level_matches_brute_force() {
        let (g, f) = figure2();
        let tree = MergeTree::join(&g, &f);
        for theta in [-1.0, 0.0, 0.9, 2.0, 3.5, 4.5, 5.5, 6.0, 7.0] {
            let got = super_level_set(&g, &f, &tree, theta);
            for (v, &fv) in f.iter().enumerate() {
                assert_eq!(
                    got.get(v),
                    fv >= theta,
                    "theta={theta} vertex={v} value={fv}"
                );
            }
        }
    }

    #[test]
    fn sub_level_matches_brute_force() {
        let (g, f) = figure2();
        let tree = MergeTree::split(&g, &f);
        for theta in [-1.0, 0.0, 0.6, 1.5, 3.0, 5.0, 6.5] {
            let got = sub_level_set(&g, &f, &tree, theta);
            for (v, &fv) in f.iter().enumerate() {
                assert_eq!(got.get(v), fv <= theta, "theta={theta} vertex={v}");
            }
        }
    }

    #[test]
    fn figure2_component_counts() {
        // Paper Figure 2(b)/(c): 4 components at f1, 3 at f2.
        let (g, f) = figure2();
        let tree = MergeTree::join(&g, &f);
        // f1 just below all four maxima: e.g. 3.5 keeps v2, v4, v6, v8
        // separated (saddles are at 3.0, 2.5, 1.0).
        let at_f1 = super_level_set(&g, &f, &tree, 3.5);
        assert_eq!(count_components(&g, &at_f1), 4);
        // f2 between the v5 saddle (3.0) and the v3 saddle (2.5): v4 and v6
        // have merged, 3 components remain.
        let at_f2 = super_level_set(&g, &f, &tree, 2.7);
        assert_eq!(count_components(&g, &at_f2), 3);
    }

    fn count_components(g: &DomainGraph, set: &BitVec) -> usize {
        let mut seen = BitVec::zeros(set.len());
        let mut n = 0;
        let mut stack = Vec::new();
        for v in set.iter_ones() {
            if seen.get(v) {
                continue;
            }
            n += 1;
            seen.set(v);
            stack.push(v);
            while let Some(x) = stack.pop() {
                for &u in g.neighbors(x) {
                    let ui = u as usize;
                    if set.get(ui) && !seen.get(ui) {
                        seen.set(ui);
                        stack.push(ui);
                    }
                }
            }
        }
        n
    }

    #[test]
    fn grid_super_level() {
        let g = DomainGraph::grid(4, 4, 2);
        let f: Vec<f64> = (0..g.vertex_count())
            .map(|v| ((v * 7 + 3) % 11) as f64)
            .collect();
        let tree = MergeTree::join(&g, &f);
        let got = super_level_set(&g, &f, &tree, 8.0);
        for (v, &fv) in f.iter().enumerate() {
            assert_eq!(got.get(v), fv >= 8.0, "vertex {v}");
        }
    }

    #[test]
    fn nan_vertices_never_members() {
        let g = DomainGraph::time_series(5);
        let f = vec![5.0, f64::NAN, 4.0, 3.0, 6.0];
        let tree = MergeTree::join(&g, &f);
        let got = super_level_set(&g, &f, &tree, 2.0);
        assert!(got.get(0) && got.get(2) && got.get(3) && got.get(4));
        assert!(!got.get(1));
    }

    #[test]
    fn seasonal_thresholds_vary_by_step() {
        // One region, 6 steps, two "seasons" of 3 steps each.
        let g = DomainGraph::time_series(6);
        let f = vec![1.0, 5.0, 2.0, 10.0, 50.0, 20.0];
        let tree = MergeTree::join(&g, &f);
        // Season 1 threshold 4.0, season 2 threshold 40.0.
        let theta = vec![4.0, 4.0, 4.0, 40.0, 40.0, 40.0];
        let got = super_level_set_seasonal(&g, &f, &tree, &theta);
        let members: Vec<usize> = got.iter_ones().collect();
        assert_eq!(members, vec![1, 4]);
    }

    #[test]
    fn seasonal_component_without_local_maximum_is_found() {
        // f increases monotonically; the only local max is the last vertex,
        // which fails its own interval's threshold. The component {0, 1}
        // has no local max of f and is reachable only via boundary seeding.
        let g = DomainGraph::time_series(4);
        let f = vec![1.0, 2.0, 3.0, 4.0];
        let tree = MergeTree::join(&g, &f);
        let theta = vec![0.0, 0.0, 100.0, 100.0];
        let got = super_level_set_seasonal(&g, &f, &tree, &theta);
        let members: Vec<usize> = got.iter_ones().collect();
        assert_eq!(members, vec![0, 1]);
    }

    #[test]
    fn seasonal_nan_threshold_blocks_step() {
        let g = DomainGraph::time_series(4);
        let f = vec![10.0, 20.0, 30.0, 40.0];
        let tree = MergeTree::join(&g, &f);
        let theta = vec![5.0, f64::NAN, 5.0, 5.0];
        let got = super_level_set_seasonal(&g, &f, &tree, &theta);
        assert!(got.get(0) && !got.get(1) && got.get(2) && got.get(3));
    }

    #[test]
    fn empty_result_touches_nothing() {
        let (g, f) = figure2();
        let tree = MergeTree::join(&g, &f);
        let got = super_level_set(&g, &f, &tree, 100.0);
        assert_eq!(got.count_ones(), 0);
    }
}

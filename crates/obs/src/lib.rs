//! # polygamy-obs — the observability substrate
//!
//! A zero-dependency metrics-and-tracing core shared by every layer of
//! the Data Polygamy reproduction: the flat executor, the demand-paged
//! store, the network daemon and the load generator all report through
//! the types in this crate, so one `MetricsSnapshot` explains a whole
//! process. The prose catalogue (metric names, span names, trace JSON
//! shape, overhead statement) lives in `docs/observability.md`.
//!
//! Three pieces:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — lock-free
//!   atomics; histograms use *pinned* bucket boundaries (constants in
//!   this crate, covered by regression tests) so snapshots are
//!   comparable across PRs and across the client/server divide.
//! * **The registry** ([`Registry`], [`global`]) — a process-wide,
//!   lazily-populated name → instrument map. [`Registry::snapshot`]
//!   captures everything as a [`MetricsSnapshot`] with a deterministic
//!   JSON rendering ([`MetricsSnapshot::to_json`]) and a matching parser
//!   ([`MetricsSnapshot::parse_json`]) so clients can validate server
//!   snapshots without a JSON dependency.
//! * **Tracing** ([`trace`]) — a thread-local span collector.
//!   [`trace::span`] is compiled in everywhere but does not even read
//!   the clock unless a collector is installed ([`trace::record`]), so
//!   the untraced hot path stays untouched.
//!
//! ```
//! use polygamy_obs::{global, trace};
//!
//! let counter = global().counter("example.widgets");
//! let (sum, t) = trace::record(|| {
//!     let _span = trace::span("add");
//!     trace::add("widgets", 2);
//!     counter.add(2);
//!     40 + 2
//! });
//! assert_eq!(sum, 42);
//! assert_eq!(t.counter("widgets"), 2);
//! assert_eq!(t.spans.len(), 1);
//! assert!(global().snapshot().counter("example.widgets") >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod registry;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_US,
};
pub use registry::{global, MetricsSnapshot, Registry};

/// The canonical metric names every layer registers under — one place,
/// so producers (instrumented crates) and consumers (snapshots, tests,
/// the `M` protocol frame) can never drift. The full catalogue with
/// semantics is `docs/observability.md`.
pub mod names {
    /// Queries planned by the flat executor (counter).
    pub const CORE_QUERIES: &str = "core.queries";
    /// Unit tasks expanded across all queries (counter).
    pub const CORE_TASKS_EXPANDED: &str = "core.tasks_expanded";
    /// Query-cache hits resolved while planning (counter).
    pub const CORE_QUERY_CACHE_HITS: &str = "core.query_cache.hits";
    /// Query-cache misses scheduled for evaluation (counter).
    pub const CORE_QUERY_CACHE_MISSES: &str = "core.query_cache.misses";
    /// Query-cache insertions that evicted an older entry (counter).
    pub const CORE_QUERY_CACHE_EVICTIONS: &str = "core.query_cache.evictions";
    /// Cumulative wall time of the plan/cache-resolve stage (counter, ns).
    pub const CORE_STAGE_PLAN_NS: &str = "core.stage.plan_ns";
    /// Cumulative wall time of the task-expansion stage (counter, ns).
    pub const CORE_STAGE_EXPAND_NS: &str = "core.stage.expand_ns";
    /// Cumulative wall time of the evaluate stage (counter, ns).
    pub const CORE_STAGE_EVALUATE_NS: &str = "core.stage.evaluate_ns";
    /// Cumulative wall time of the assemble stage (counter, ns).
    pub const CORE_STAGE_ASSEMBLE_NS: &str = "core.stage.assemble_ns";

    /// Bytes read from `.plst` stores through `SegmentSource` (counter).
    pub const STORE_BYTES_FETCHED: &str = "store.bytes_fetched";
    /// Lazy segment faults: segments decoded on demand (counter).
    pub const STORE_SEGMENT_FAULTS: &str = "store.segment.faults";
    /// Lazy segment-cache hits (counter).
    pub const STORE_SEGMENT_CACHE_HITS: &str = "store.segment.cache_hits";
    /// Lazy segment-cache insertions that evicted an entry (counter).
    pub const STORE_SEGMENT_EVICTIONS: &str = "store.segment.evictions";
    /// Segment checksum verifications performed (counter).
    pub const STORE_CHECKSUM_VERIFICATIONS: &str = "store.checksum.verifications";
    /// Segment checksum verifications that failed (counter).
    pub const STORE_CHECKSUM_FAILURES: &str = "store.checksum.failures";
    /// Prefix for per-shard fault counters in a sharded store:
    /// `store.shard.faults.<shard>` counts segment faults served by that
    /// shard file.
    pub const STORE_SHARD_FAULTS_PREFIX: &str = "store.shard.faults.";
    /// Prefix for per-shard byte counters in a sharded store:
    /// `store.shard.bytes_fetched.<shard>` counts bytes read from that
    /// shard file (demand-paged segment reads and eager loads alike).
    pub const STORE_SHARD_BYTES_FETCHED_PREFIX: &str = "store.shard.bytes_fetched.";

    /// Connections the daemon accepted (counter).
    pub const SERVE_CONNECTIONS_OPENED: &str = "serve.connections.opened";
    /// Connections that finished (any reason) (counter).
    pub const SERVE_CONNECTIONS_CLOSED: &str = "serve.connections.closed";
    /// Currently live connections (gauge).
    pub const SERVE_CONNECTIONS_ACTIVE: &str = "serve.connections.active";
    /// Requests admitted by the coalescer (counter).
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Individual queries admitted (counter).
    pub const SERVE_QUERIES: &str = "serve.queries";
    /// `query_many` dispatches issued (counter).
    pub const SERVE_BATCHES: &str = "serve.batches";
    /// Requests queued, waiting for the dispatcher (gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Queries admitted but not yet answered (gauge).
    pub const SERVE_INFLIGHT: &str = "serve.inflight";
    /// Queries per dispatch (histogram over [`super::BATCH_SIZE_BUCKETS`]).
    pub const SERVE_BATCH_SIZE: &str = "serve.batch_size";
    /// `M` metrics frames answered (counter).
    pub const SERVE_METRICS_FRAMES: &str = "serve.metrics_frames";
    /// Wall time of the graceful drain, begin-to-exit (counter, ns).
    pub const SERVE_DRAIN_NS: &str = "serve.drain_ns";
    /// Prefix for per-kind error counters: `serve.errors.<kind>` with the
    /// wire kinds of `docs/serving.md` §6 (`parse`, `query`, `bad-frame`,
    /// `overloaded`, `shutting-down`, `internal`).
    pub const SERVE_ERRORS_PREFIX: &str = "serve.errors.";

    /// Client-observed per-request latency in µs (histogram over
    /// [`super::LATENCY_BUCKETS_US`]) — recorded by `loadgen`.
    pub const LOADGEN_LATENCY_US: &str = "loadgen.latency_us";

    /// Every canonical name above, in catalogue order — the machine-
    /// checkable form of the `docs/observability.md` catalogue. The
    /// `serve.errors.` entry is the family *prefix*; concrete error
    /// counters append a §6 error kind to it. Consumers that validate
    /// metric names (e.g. `bench_snapshot --validate`) resolve a name as
    /// known when it equals an entry or extends the prefix entry.
    pub const ALL: &[&str] = &[
        CORE_QUERIES,
        CORE_TASKS_EXPANDED,
        CORE_QUERY_CACHE_HITS,
        CORE_QUERY_CACHE_MISSES,
        CORE_QUERY_CACHE_EVICTIONS,
        CORE_STAGE_PLAN_NS,
        CORE_STAGE_EXPAND_NS,
        CORE_STAGE_EVALUATE_NS,
        CORE_STAGE_ASSEMBLE_NS,
        STORE_BYTES_FETCHED,
        STORE_SEGMENT_FAULTS,
        STORE_SEGMENT_CACHE_HITS,
        STORE_SEGMENT_EVICTIONS,
        STORE_CHECKSUM_VERIFICATIONS,
        STORE_CHECKSUM_FAILURES,
        STORE_SHARD_FAULTS_PREFIX,
        STORE_SHARD_BYTES_FETCHED_PREFIX,
        SERVE_CONNECTIONS_OPENED,
        SERVE_CONNECTIONS_CLOSED,
        SERVE_CONNECTIONS_ACTIVE,
        SERVE_REQUESTS,
        SERVE_QUERIES,
        SERVE_BATCHES,
        SERVE_QUEUE_DEPTH,
        SERVE_INFLIGHT,
        SERVE_BATCH_SIZE,
        SERVE_METRICS_FRAMES,
        SERVE_DRAIN_NS,
        SERVE_ERRORS_PREFIX,
        LOADGEN_LATENCY_US,
    ];

    /// True when `name` is a canonical metric name: a concrete [`ALL`]
    /// entry verbatim, or a family-prefix entry (trailing `.`) extended
    /// by a non-empty suffix (`serve.errors.parse`). A bare prefix is
    /// *not* canonical — no real instrument registers under it.
    pub fn is_canonical(name: &str) -> bool {
        ALL.iter().any(|&n| {
            if n.ends_with('.') {
                name.len() > n.len() && name.starts_with(n)
            } else {
                n == name
            }
        })
    }
}

//! The process-wide instrument registry and its serializable snapshot.

use crate::json::{self, write_string, ParseError, Value};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// A name → instrument map. Instruments are created on first request and
/// live for the registry's lifetime; handles are cheap `Arc` clones, so
/// hot paths resolve a name once and keep the handle.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every layer reports into — the thing the
/// daemon's `M` frame, `--metrics-jsonl` and `polygamy-store inspect`
/// snapshot.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.inner
                .lock()
                .expect("registry poisoned")
                .counters
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.inner
                .lock()
                .expect("registry poisoned")
                .gauges
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram registered under `name`, created over `bounds` on
    /// first use. Every caller must pass the same pinned bounds for a
    /// given name (debug-asserted): mixed bounds would make the merged
    /// distribution meaningless.
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Arc<Histogram> {
        let h = Arc::clone(
            self.inner
                .lock()
                .expect("registry poisoned")
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        );
        debug_assert_eq!(
            h.bounds(),
            bounds,
            "histogram `{name}` registered with conflicting bounds"
        );
        h
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`] — the payload of the daemon's
/// `M` frame, of `--metrics-jsonl` lines, and of the benchmark
/// snapshot's observability section.
///
/// The JSON rendering is **deterministic** (names sort lexicographically
/// — `BTreeMap` order), so two snapshots of identical state are
/// byte-identical, and [`MetricsSnapshot::parse_json`] inverts
/// [`MetricsSnapshot::to_json`] exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram bins by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter's value, zero when it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's level, zero when it was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// True when every counter in `self` is ≥ its value in `earlier` —
    /// the monotonicity check clients run across repeated `M` frames.
    pub fn is_monotonic_since(&self, earlier: &MetricsSnapshot) -> bool {
        earlier
            .counters
            .iter()
            .all(|(name, &v)| self.counter(name) >= v)
    }

    /// The canonical single-line JSON rendering:
    ///
    /// ```text
    /// {"counters":{…},"gauges":{…},"histograms":{"name":{"bounds":[…],"counts":[…],"sum":N}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, name);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"sum\":{}}}", h.sum);
        }
        out.push_str("}}");
        out
    }

    /// Parses the JSON produced by [`MetricsSnapshot::to_json`]. All
    /// three sections are required; unknown extra keys are rejected, so
    /// a malformed or foreign payload fails loudly.
    pub fn parse_json(src: &str) -> Result<Self, ParseError> {
        let root = json::parse(src)?;
        let fields = root.as_object().ok_or_else(|| ParseError {
            message: "snapshot must be a JSON object".into(),
            offset: 0,
        })?;
        let known = ["counters", "gauges", "histograms"];
        if let Some((k, _)) = fields.iter().find(|(k, _)| !known.contains(&k.as_str())) {
            return Err(ParseError {
                message: format!("unknown snapshot section `{k}`"),
                offset: 0,
            });
        }
        let section = |name: &str| -> Result<&[(String, Value)], ParseError> {
            root.field(name)
                .and_then(Value::as_object)
                .ok_or_else(|| ParseError {
                    message: format!("missing `{name}` object"),
                    offset: 0,
                })
        };
        let mut snapshot = MetricsSnapshot::default();
        for (name, v) in section("counters")? {
            let n = v.as_int().and_then(|n| u64::try_from(n).ok());
            snapshot.counters.insert(
                name.clone(),
                n.ok_or_else(|| ParseError {
                    message: format!("counter `{name}` is not a u64"),
                    offset: 0,
                })?,
            );
        }
        for (name, v) in section("gauges")? {
            let n = v.as_int().and_then(|n| i64::try_from(n).ok());
            snapshot.gauges.insert(
                name.clone(),
                n.ok_or_else(|| ParseError {
                    message: format!("gauge `{name}` is not an i64"),
                    offset: 0,
                })?,
            );
        }
        for (name, v) in section("histograms")? {
            let ints = |field: &str| -> Result<Vec<u64>, ParseError> {
                v.field(field)
                    .and_then(Value::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .map(|i| i.as_int().and_then(|n| u64::try_from(n).ok()))
                            .collect::<Option<Vec<u64>>>()
                    })
                    .and_then(|o| o)
                    .ok_or_else(|| ParseError {
                        message: format!("histogram `{name}` lacks a u64 `{field}` array"),
                        offset: 0,
                    })
            };
            let bounds = ints("bounds")?;
            let counts = ints("counts")?;
            let sum = v
                .field("sum")
                .and_then(Value::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| ParseError {
                    message: format!("histogram `{name}` lacks a u64 `sum`"),
                    offset: 0,
                })?;
            if counts.len() != bounds.len() + 1 {
                return Err(ParseError {
                    message: format!(
                        "histogram `{name}` has {} counts for {} bounds",
                        counts.len(),
                        bounds.len()
                    ),
                    offset: 0,
                });
            }
            snapshot.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    bounds,
                    counts,
                    sum,
                },
            );
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BATCH_SIZE_BUCKETS;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.gauge("g").add(4);
        assert_eq!(r.gauge("g").get(), 4);
        r.histogram("h", BATCH_SIZE_BUCKETS).record(3);
        assert_eq!(r.histogram("h", BATCH_SIZE_BUCKETS).snapshot().count(), 1);
    }

    #[test]
    fn snapshot_json_round_trips_byte_exactly() {
        let r = Registry::new();
        r.counter("store.bytes_fetched").add(512);
        r.counter("core.queries").inc();
        r.gauge("serve.inflight").set(-3);
        let h = r.histogram("serve.batch_size", BATCH_SIZE_BUCKETS);
        h.record(1);
        h.record(7);
        h.record(9999); // overflow
        let snap = r.snapshot();
        let json = snap.to_json();
        let parsed = MetricsSnapshot::parse_json(&json).expect("parses");
        assert_eq!(parsed, snap);
        // Determinism: rendering the parse re-produces the same bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn snapshot_json_shape_is_pinned() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.gauge("g").set(-1);
        r.histogram("h", &[1, 2]).record(2);
        assert_eq!(
            r.snapshot().to_json(),
            r#"{"counters":{"a":1,"b":2},"gauges":{"g":-1},"histograms":{"h":{"bounds":[1,2],"counts":[0,1,0],"sum":2}}}"#
        );
    }

    #[test]
    fn parse_rejects_malformed_snapshots() {
        assert!(MetricsSnapshot::parse_json("{}").is_err());
        assert!(MetricsSnapshot::parse_json("[]").is_err());
        assert!(MetricsSnapshot::parse_json(
            r#"{"counters":{},"gauges":{},"histograms":{},"extra":{}}"#
        )
        .is_err());
        assert!(MetricsSnapshot::parse_json(
            r#"{"counters":{"c":-1},"gauges":{},"histograms":{}}"#
        )
        .is_err());
        assert!(MetricsSnapshot::parse_json(
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1],"counts":[0],"sum":0}}}"#
        )
        .is_err());
        assert!(
            MetricsSnapshot::parse_json(r#"{"counters":{},"gauges":{},"histograms":{}}"#).is_ok()
        );
    }

    #[test]
    fn monotonicity_check() {
        let mut earlier = MetricsSnapshot::default();
        earlier.counters.insert("a".into(), 2);
        let mut later = earlier.clone();
        later.counters.insert("a".into(), 5);
        later.counters.insert("b".into(), 1);
        assert!(later.is_monotonic_since(&earlier));
        assert!(!earlier.is_monotonic_since(&later));
    }

    #[test]
    fn global_registry_is_one_per_process() {
        global().counter("test.global_registry_probe").add(7);
        assert!(global().snapshot().counter("test.global_registry_probe") >= 7);
    }
}

//! A deliberately tiny JSON reader/writer for the snapshot subset.
//!
//! The snapshot wire shape uses only objects, arrays, strings and
//! integers, so this module implements exactly that — no floats beyond
//! integer range, no external dependency, and a writer whose output is
//! deterministic (callers feed it ordered maps). Keeping the codec here
//! (instead of the serde shim) means a client can parse a server's `M`
//! frame with nothing but this crate.

use std::fmt::Write as _;

/// The JSON value subset snapshots use.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// An object, in source order.
    Object(Vec<(String, Value)>),
    /// An array.
    Array(Vec<Value>),
    /// A string.
    String(String),
    /// An integer (covers u64 and i64).
    Int(i128),
}

impl Value {
    pub(crate) fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it was noticed
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value (of the supported subset) covering the entire
/// input.
pub(crate) fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.int(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are sound).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("scalar boundaries"),
                    );
                }
            }
        }
    }

    fn int(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are outside the snapshot subset"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_subset() {
        let v = parse(r#"{"a":1,"b":[-2,3],"c":{"d":"x\n\"y\""},"e":[]}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_int(), Some(1));
        assert_eq!(
            v.field("b").unwrap().as_array().unwrap()[0].as_int(),
            Some(-2)
        );
        assert_eq!(
            v.field("c").unwrap().field("d"),
            Some(&Value::String("x\n\"y\"".into()))
        );
        assert_eq!(v.field("e").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn escapes_survive_a_write_parse_cycle() {
        let original = "quote \" slash \\ newline \n tab \t control \u{1}";
        let mut written = String::new();
        write_string(&mut written, original);
        match parse(&written).unwrap() {
            Value::String(s) => assert_eq!(s, original),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("true").is_err(), "booleans are outside the subset");
    }
}

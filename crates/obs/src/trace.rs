//! Per-query tracing: a thread-local span collector.
//!
//! Instrumented code calls [`span`] and [`add`] unconditionally; both
//! are near-free unless the calling thread is inside [`record`] — the
//! disabled [`span`] never even reads the clock. A frontend that wants a
//! trace (CLI `query --trace`, the REPL's `explain` prefix) wraps the
//! execution in [`record`] and receives a [`Trace`], **separate from the
//! result value**, so the traced and untraced result bytes are identical
//! by construction (the determinism matrix pins this).
//!
//! The collector is thread-local on purpose: the flat executor plans,
//! resolves the cache, and assembles on the *coordinating* thread, so
//! stage spans and planner counts land in the caller's collector without
//! any cross-thread machinery on the hot path. Worker-side events still
//! count globally through the [`crate::Registry`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::json::write_string;

#[derive(Default)]
struct Collector {
    spans: Vec<TraceSpan>,
    counters: BTreeMap<&'static str, u64>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// One timed span: a name and its monotonic-clock wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// The span name (`docs/observability.md` catalogues them).
    pub name: String,
    /// Elapsed wall time in nanoseconds.
    pub nanos: u64,
}

/// Everything one [`record`] call collected: spans in completion order
/// plus named event counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Completed spans, in completion order.
    pub spans: Vec<TraceSpan>,
    /// Event counts, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl Trace {
    /// The named count (zero when the event never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The total nanoseconds of every span with this name.
    pub fn span_nanos(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.nanos)
            .sum()
    }

    /// A single-line JSON rendering:
    ///
    /// ```text
    /// {"spans":[{"name":"expand","ns":1234},…],"counters":{"tasks":8,…}}
    /// ```
    ///
    /// Span timings vary run to run, so this string is diagnostic
    /// output, never part of the canonical result bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_string(&mut out, &s.name);
            let _ = write!(out, ",\"ns\":{}}}", s.nanos);
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}");
        out
    }
}

/// True while the calling thread is inside [`record`].
pub fn enabled() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Runs `f` with a collector installed on this thread and returns its
/// result together with the collected [`Trace`]. Nests: an inner
/// `record` shadows the outer collector for its extent, then restores
/// it.
pub fn record<T>(f: impl FnOnce() -> T) -> (T, Trace) {
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(Collector::default()));
    let out = f();
    let collector = COLLECTOR
        .with(|c| std::mem::replace(&mut *c.borrow_mut(), prev))
        .expect("collector installed above");
    (
        out,
        Trace {
            spans: collector.spans,
            counters: collector
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        },
    )
}

/// A live span; records its wall time into the thread's collector when
/// dropped. Inert (no clock read) when no collector is installed.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a span. Keep the guard alive for the region being timed:
///
/// ```
/// # fn expand_everything() {}
/// let _span = polygamy_obs::trace::span("expand");
/// expand_everything();
/// // timed region ends when `_span` drops
/// ```
#[must_use = "a span measures until the guard drops; binding it to `_` ends it immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.spans.push(TraceSpan {
                        name: self.name.to_string(),
                        nanos,
                    });
                }
            });
        }
    }
}

/// Adds `n` to the named event count in the thread's collector; a no-op
/// when no collector is installed.
pub fn add(name: &'static str, n: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            *col.counters.entry(name).or_insert(0) += n;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_collect_nothing() {
        assert!(!enabled());
        {
            let _s = span("ghost");
            add("ghost", 1);
        }
        let (_, t) = record(|| {});
        assert!(t.spans.is_empty());
        assert!(t.counters.is_empty());
    }

    #[test]
    fn record_collects_spans_and_counts() {
        let (value, t) = record(|| {
            {
                let _s = span("outer");
                let _inner = span("inner");
                add("events", 2);
            }
            add("events", 1);
            7
        });
        assert_eq!(value, 7);
        // Completion order: inner drops before outer.
        let names: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "outer"]);
        assert_eq!(t.counter("events"), 3);
        assert_eq!(t.counter("absent"), 0);
        // The outer span encloses the inner one, so it cannot be shorter.
        assert!(t.span_nanos("outer") >= t.spans[0].nanos);
    }

    #[test]
    fn nested_record_shadows_and_restores() {
        let (_, outer) = record(|| {
            add("outer-only", 1);
            let (_, inner) = record(|| add("inner-only", 5));
            assert_eq!(inner.counter("inner-only"), 5);
            assert_eq!(inner.counter("outer-only"), 0);
            add("outer-only", 1);
        });
        assert_eq!(outer.counter("outer-only"), 2);
        assert_eq!(outer.counter("inner-only"), 0);
    }

    #[test]
    fn trace_json_shape() {
        let t = Trace {
            spans: vec![TraceSpan {
                name: "expand".into(),
                nanos: 42,
            }],
            counters: vec![("tasks".into(), 8)],
        };
        assert_eq!(
            t.to_json(),
            r#"{"spans":[{"name":"expand","ns":42}],"counters":{"tasks":8}}"#
        );
        assert_eq!(Trace::default().to_json(), r#"{"spans":[],"counters":{}}"#);
    }
}

//! The instruments: lock-free counters, gauges and fixed-bucket
//! histograms.
//!
//! # Memory-ordering contract
//!
//! Every atomic access in this module is `Ordering::Relaxed`, on
//! purpose. The instruments are *statistical*: they promise that each
//! individual increment is atomic (no lost updates, no torn reads) and
//! that a snapshot taken after the process quiesces is exact — but a
//! snapshot taken mid-flight is only approximately simultaneous across
//! instruments, and an observer may see `serve.requests` advance before
//! the `serve.queries` increment from the same request. Nothing may use
//! a metric to *synchronise*: no happens-before edge is published by an
//! update or consumed by a read, so control flow must never branch on a
//! counter to decide whether some other write is visible. Cross-thread
//! publication belongs to the channels and mutexes that move the data
//! itself; keeping the instruments Relaxed keeps them free (one
//! uncontended atomic add) on the hot path. The project linter
//! (`polygamy-lint`, rule `atomic-ordering`) enforces the complement:
//! any non-Relaxed ordering *outside* this crate must justify itself
//! with an `// ordering:` contract comment.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Microsecond latency buckets (inclusive upper bounds), 50 µs – 5 s.
///
/// **Pinned**: client-side (`loadgen`) and server-side latency
/// distributions are only comparable because both record into these
/// exact boundaries, and committed benchmark snapshots are only
/// comparable across PRs for the same reason. Changing them is a
/// snapshot-schema event, not a tweak — the regression test
/// `bucket_boundaries_are_pinned` fails on any edit.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Batch-size buckets (inclusive upper bounds) for the coalescer's
/// queries-per-dispatch histogram. Power-of-two spaced; the default
/// admission cap (256 queries) is the last bound, so only a raised cap
/// can ever land in the overflow bucket. Pinned like
/// [`LATENCY_BUCKETS_US`].
pub const BATCH_SIZE_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depths, live connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: `bounds.len() + 1` atomic bins (the last is
/// the overflow bin for values above every bound), plus the sum of all
/// recorded values. Bounds are inclusive upper bounds and must be
/// strictly increasing.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given pinned bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &'static [u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// The pinned bucket bounds this histogram records into.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Records one value into its bucket (linear scan — the pinned bound
    /// lists are short) and into the running sum.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bins.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: `counts.len() ==
/// bounds.len() + 1` (the final bin counts values above every bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the extra last element is the overflow bin.
    pub counts: Vec<u64>,
    /// Sum of every recorded value.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// An upper bound on the `q`-quantile (0 < q ≤ 1): the bound of the
    /// bucket the quantile rank lands in. `None` when the histogram is
    /// empty or the rank lands in the overflow bin (the value exceeds
    /// every pinned bound).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_are_pinned() {
        // These exact boundaries are part of the cross-PR snapshot
        // contract (docs/observability.md); editing them must be a
        // deliberate, reviewed act that updates this test too.
        assert_eq!(
            LATENCY_BUCKETS_US,
            &[
                50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
                500_000, 1_000_000, 2_500_000, 5_000_000
            ]
        );
        assert_eq!(BATCH_SIZE_BUCKETS, &[1, 2, 4, 8, 16, 32, 64, 128, 256]);
    }

    #[test]
    fn histogram_buckets_values_inclusively() {
        let h = Histogram::new(&[10, 20, 30]);
        for v in [0, 10, 11, 20, 29, 30, 31, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        // ≤10: {0, 10}; ≤20: {11, 20}; ≤30: {29, 30}; overflow: {31, 1000}.
        assert_eq!(s.counts, vec![2, 2, 2, 2]);
        assert_eq!(s.sum, 1131);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new(&[1, 2, 4, 8]);
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(3);
        }
        h.record(100); // overflow
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(1));
        assert_eq!(s.quantile(0.95), Some(4));
        assert_eq!(s.quantile(1.0), None); // lands in the overflow bin
        assert_eq!(
            HistogramSnapshot {
                bounds: vec![1],
                counts: vec![0, 0],
                sum: 0
            }
            .quantile(0.5),
            None
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }
}

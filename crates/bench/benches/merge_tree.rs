//! Criterion micro-benchmark behind Figure 7: merge-tree construction time
//! vs domain size, for 1-D (city) and 3-D (neighborhood) domains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polygamy_topology::{DomainGraph, MergeTree};

fn taxi_like(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let hod = (i % 24) as f64;
            40.0 * (0.2 + (-((hod - 19.0) / 3.5).powi(2)).exp())
                + ((i as u64).wrapping_mul(0x9E37_79B9) % 997) as f64 / 100.0
        })
        .collect()
}

fn bench_merge_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_tree_build");
    for &steps in &[10_000usize, 40_000, 160_000] {
        // 1-D time series (city resolution).
        let g1 = DomainGraph::time_series(steps);
        let f1 = taxi_like(steps);
        group.throughput(Throughput::Elements(g1.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("city_1d", steps), &steps, |b, _| {
            b.iter(|| MergeTree::join(&g1, &f1))
        });
        // 3-D neighborhood grid (25 regions).
        let g2 = DomainGraph::grid(5, 5, steps / 25);
        let f2 = taxi_like(g2.vertex_count());
        group.throughput(Throughput::Elements(g2.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("neighborhood_3d", steps),
            &steps,
            |b, _| b.iter(|| MergeTree::join(&g2, &f2)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_merge_tree
}
criterion_main!(benches);

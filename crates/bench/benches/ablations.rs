//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. merge-tree-indexed level sets vs a naive full scan — the paper's
//!    output-sensitivity claim only pays off when the answer is small;
//! 2. restricted (rotation) vs naive (shuffle) Monte Carlo — comparable
//!    cost, so the statistical validity of the restricted test is free;
//! 3. persistence-derived thresholds vs fixed quantile thresholds —
//!    threshold computation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polygamy_stats::permutation::temporal_rotation;
use polygamy_stats::quantile;
use polygamy_topology::{super_level_set, BitVec, DomainGraph, MergeTree};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn spiky(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = ((i % 24) as f64 / 24.0).sin();
            if i % 997 == 0 {
                base + 50.0
            } else {
                base
            }
        })
        .collect()
}

fn bench_index_vs_scan(c: &mut Criterion) {
    let n = 500_000;
    let g = DomainGraph::time_series(n);
    let f = spiky(n);
    let tree = MergeTree::join(&g, &f);
    let mut group = c.benchmark_group("ablation_level_set");
    for &(label, q) in &[("sparse_0.1%", 0.999), ("dense_50%", 0.5)] {
        let theta = quantile(&f, q);
        group.bench_with_input(
            BenchmarkId::new("merge_tree_index", label),
            &theta,
            |b, &t| b.iter(|| super_level_set(&g, &f, &tree, t)),
        );
        group.bench_with_input(BenchmarkId::new("naive_scan", label), &theta, |b, &t| {
            b.iter(|| {
                let mut out = BitVec::zeros(n);
                for (i, &v) in f.iter().enumerate() {
                    if v >= t {
                        out.set(i);
                    }
                }
                out
            })
        });
    }
    group.finish();
}

fn bench_restricted_vs_naive_mc(c: &mut Criterion) {
    let n = 17_520;
    let mut group = c.benchmark_group("ablation_permutation");
    group.bench_function("restricted_rotation", |b| {
        b.iter(|| temporal_rotation(1, n, 4_321))
    });
    group.bench_function("naive_shuffle", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        b.iter(|| {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            perm.shuffle(&mut rng);
            perm
        })
    });
    group.finish();
}

fn bench_threshold_strategies(c: &mut Criterion) {
    let n = 200_000;
    let g = DomainGraph::time_series(n);
    let f = spiky(n);
    let join = MergeTree::join(&g, &f);
    let split = MergeTree::split(&g, &f);
    let mut group = c.benchmark_group("ablation_thresholds");
    group.bench_function("persistence_2means", |b| {
        b.iter(|| polygamy_topology::compute_thresholds(&join, &split))
    });
    group.bench_function("fixed_quantile", |b| {
        b.iter(|| (quantile(&f, 0.99), quantile(&f, 0.01)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index_vs_scan, bench_restricted_vs_naive_mc, bench_threshold_strategies
}
criterion_main!(benches);

//! Criterion micro-benchmark behind Figure 9: relationship evaluation and
//! the restricted Monte Carlo significance test (which the paper reports
//! as >90% of query time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polygamy_core::relationship::evaluate_features;
use polygamy_core::significance::{significance_test, PermutationScheme};
use polygamy_stats::permutation::MonteCarlo;
use polygamy_topology::{BitVec, FeatureSet};

fn sparse_features(n: usize, every: usize, offset: usize) -> FeatureSet {
    let mut pos = BitVec::zeros(n);
    let mut neg = BitVec::zeros(n);
    for i in (offset..n).step_by(every) {
        pos.set(i);
    }
    for i in (offset + every / 2..n).step_by(every * 3) {
        neg.set(i);
    }
    FeatureSet { pos, neg }
}

fn bench_relationship(c: &mut Criterion) {
    let n = 17_520; // two years of hourly steps at city scale
    let a = sparse_features(n, 37, 0);
    let b = sparse_features(n, 37, 3);

    c.bench_function("evaluate_features_17k", |bch| {
        bch.iter(|| evaluate_features(&a, &b))
    });

    let mut group = c.benchmark_group("significance_test");
    let observed = evaluate_features(&a, &b).score;
    for &perms in &[100usize, 1_000] {
        let mc = MonteCarlo {
            permutations: perms,
            ..MonteCarlo::default()
        };
        group.bench_with_input(BenchmarkId::new("temporal", perms), &perms, |bch, _| {
            bch.iter(|| {
                significance_test(
                    &a,
                    &b,
                    &[vec![]],
                    n,
                    observed,
                    &mc,
                    PermutationScheme::Paper,
                    7,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_relationship
}
criterion_main!(benches);

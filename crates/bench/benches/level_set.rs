//! Criterion micro-benchmark: output-sensitive level-set queries through
//! the merge-tree index at varying selectivity (the other half of
//! Figure 7's "querying" time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polygamy_stats::quantile;
use polygamy_topology::{super_level_set, DomainGraph, MergeTree};

fn bumpy(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            ((i as f64) / 13.0).sin() * 10.0
                + ((i as u64).wrapping_mul(0x9E37_79B9) % 101) as f64 / 10.0
        })
        .collect()
}

fn bench_level_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("super_level_set");
    let steps = 200_000usize;
    let g = DomainGraph::time_series(steps);
    let f = bumpy(steps);
    let tree = MergeTree::join(&g, &f);
    // Selectivity sweep: the fraction of the domain in the answer.
    for &q in &[0.99, 0.90, 0.50, 0.10] {
        let theta = quantile(&f, q);
        group.bench_with_input(
            BenchmarkId::new("selectivity", format!("{:.0}%", (1.0 - q) * 100.0)),
            &theta,
            |b, &theta| b.iter(|| super_level_set(&g, &f, &tree, theta)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_level_set
}
criterion_main!(benches);
